//! Workspace-level symbol indexing over the hand-rolled lexer.
//!
//! The index finds every `fn` item the walker reached (library context
//! only, test-exempt regions excluded), records which `impl` block it
//! lives in and whether it takes `self`, and keys everything by bare
//! name so the call-graph layer can resolve call sites with the same
//! convention rules the walker uses for files — no `syn`, no type
//! information, deliberately conservative.
//!
//! What a symbol knows:
//!
//! * its crate (directory name), module (file stem), and `impl` type,
//!   which together drive qualified-path resolution (`queries::waste`,
//!   `CellCache::get`, `dck_sim::run_sweep`);
//! * the token range of its body, so call sites and panic/source
//!   tokens can be attributed to the innermost enclosing function;
//! * whether it takes `self`, so `.name(...)` method calls only ever
//!   resolve to methods.

use crate::lexer::{Token, TokenKind};
use crate::walker::{Context, SourceFile, Workspace};
use std::collections::BTreeMap;

/// One indexed function item.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Index of the defining file in [`Workspace::files`].
    pub file: usize,
    /// Owning crate (directory name; `dck` for the root crate).
    pub crate_name: String,
    /// Module name: the file stem (`sweep` for `src/sweep.rs`), or the
    /// crate name for `lib.rs`/`main.rs`/`mod.rs` roots.
    pub module: String,
    /// Bare function name.
    pub name: String,
    /// `impl` block type when the fn is an associated item.
    pub impl_type: Option<String>,
    /// True when the signature's first parameter is (a borrow of)
    /// `self` — i.e. the fn is callable as a method.
    pub has_self: bool,
    /// 1-based line of the fn name token.
    pub line: u32,
    /// 1-based column of the fn name token.
    pub col: u32,
    /// Inclusive token-index range of the body braces; `None` for a
    /// bodyless declaration (trait method signature).
    pub body: Option<(usize, usize)>,
}

impl FnDef {
    /// Human-readable qualified name: `crate::Type::name` or
    /// `crate::name`.
    pub fn qual(&self) -> String {
        match &self.impl_type {
            Some(t) => format!("{}::{}::{}", self.crate_name, t, self.name),
            None => format!("{}::{}", self.crate_name, self.name),
        }
    }
}

/// The workspace symbol index: every reachable `fn`, keyed by name.
#[derive(Debug)]
pub struct SymbolIndex {
    /// All indexed functions, in file order then token order.
    pub fns: Vec<FnDef>,
    by_name: BTreeMap<String, Vec<usize>>,
    /// Per-file list of fn ids sorted by body start, for enclosing-fn
    /// lookup.
    per_file: Vec<Vec<usize>>,
}

impl SymbolIndex {
    /// Builds the index over every library-context file.
    pub fn build(ws: &Workspace) -> SymbolIndex {
        let mut fns = Vec::new();
        let mut per_file = vec![Vec::new(); ws.files.len()];
        for (fi, file) in ws.files.iter().enumerate() {
            if file.context != Context::Lib {
                continue;
            }
            for def in index_file(file, fi) {
                per_file[fi].push(fns.len());
                fns.push(def);
            }
        }
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (i, f) in fns.iter().enumerate() {
            by_name.entry(f.name.clone()).or_default().push(i);
        }
        SymbolIndex {
            fns,
            by_name,
            per_file,
        }
    }

    /// All fns sharing a bare name.
    pub fn candidates(&self, name: &str) -> &[usize] {
        self.by_name.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The innermost fn whose body contains token `tok` of file `file`
    /// (nested items resolve to the nested fn).
    pub fn enclosing_fn(&self, file: usize, tok: usize) -> Option<usize> {
        self.per_file
            .get(file)?
            .iter()
            .copied()
            .filter(|&id| self.fns[id].body.is_some_and(|(a, b)| a <= tok && tok <= b))
            .min_by_key(|&id| {
                let (a, b) = self.fns[id].body.unwrap_or((0, usize::MAX));
                b - a
            })
    }
}

/// True for tokens that carry code (not comments).
fn is_code(t: &Token) -> bool {
    !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment)
}

/// Scans one file for fn items, tracking `impl` blocks.
fn index_file(file: &SourceFile, fi: usize) -> Vec<FnDef> {
    let toks = &file.tokens;
    let mut out = Vec::new();
    // Stack of (body close index, impl type) for impl blocks we are in.
    let mut impls: Vec<(usize, String)> = Vec::new();
    let module = module_name(file);
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        if !is_code(t) {
            i += 1;
            continue;
        }
        while impls.last().is_some_and(|&(end, _)| i > end) {
            impls.pop();
        }
        if t.is_ident("impl") {
            if let Some((ty, body_open)) = parse_impl_header(toks, i) {
                if let Some(body_close) = matching_punct(toks, body_open, "{", "}") {
                    impls.push((body_close, ty));
                }
            }
            i += 1;
            continue;
        }
        if t.is_ident("fn") {
            // Keep scanning from the next token (not past the body) so
            // nested fns inside this body are indexed too.
            if let Some(def) = parse_fn(file, fi, toks, i, &impls, &module) {
                out.push(def);
            }
        }
        i += 1;
    }
    out
}

/// The module name a qualified call would use for this file.
fn module_name(file: &SourceFile) -> String {
    let stem = file
        .rel
        .rsplit('/')
        .next()
        .and_then(|f| f.strip_suffix(".rs"))
        .unwrap_or("");
    match stem {
        "lib" | "main" | "mod" => file.crate_name.clone(),
        other => other.to_string(),
    }
}

/// Parses `impl [<...>] Type {` / `impl [<...>] Trait for Type {`,
/// returning the implemented type name and the body-open brace index.
fn parse_impl_header(toks: &[Token], impl_idx: usize) -> Option<(String, usize)> {
    let mut angle = 0i32;
    let mut after_for: Option<String> = None;
    let mut first_ident: Option<String> = None;
    let mut saw_for = false;
    let mut j = impl_idx + 1;
    while j < toks.len() {
        let t = &toks[j];
        if !is_code(t) {
            j += 1;
            continue;
        }
        match t.kind {
            TokenKind::Punct => match t.text.as_str() {
                "<" => angle += 1,
                ">" => angle -= 1,
                "<<" => angle += 2,
                ">>" => angle -= 2,
                "{" if angle <= 0 => {
                    let ty = after_for.or(first_ident)?;
                    return Some((ty, j));
                }
                ";" => return None, // `impl Trait for Type;` — not a block
                _ => {}
            },
            TokenKind::Ident if angle <= 0 => {
                if t.text == "for" {
                    saw_for = true;
                } else if t.text != "dyn" && t.text != "where" {
                    if saw_for {
                        if after_for.is_none() {
                            after_for = Some(t.text.clone());
                        }
                    } else if first_ident.is_none() {
                        first_ident = Some(t.text.clone());
                    }
                }
            }
            _ => {}
        }
        j += 1;
    }
    None
}

/// Parses the fn item whose `fn` keyword sits at `fn_idx`.
fn parse_fn(
    file: &SourceFile,
    fi: usize,
    toks: &[Token],
    fn_idx: usize,
    impls: &[(usize, String)],
    module: &str,
) -> Option<FnDef> {
    let name_idx = next_code(toks, fn_idx + 1)?;
    let name_tok = &toks[name_idx];
    if name_tok.kind != TokenKind::Ident {
        return None; // `fn(...)` pointer type
    }
    if file.is_exempt(name_idx) {
        return None; // test-only item
    }
    // Signature parens (skip generics between name and `(`).
    let mut j = name_idx + 1;
    let mut angle = 0i32;
    let paren_open = loop {
        let t = toks.get(j)?;
        if is_code(t) && t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "<" => angle += 1,
                ">" => angle -= 1,
                "<<" => angle += 2,
                ">>" => angle -= 2,
                "(" if angle <= 0 => break j,
                ";" | "{" => return None, // malformed
                _ => {}
            }
        }
        j += 1;
    };
    let paren_close = matching_punct(toks, paren_open, "(", ")")?;
    // `self` before the first top-level comma marks a method.
    let mut has_self = false;
    let mut depth = 0i32;
    for t in toks[paren_open + 1..paren_close]
        .iter()
        .filter(|t| is_code(t))
    {
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "," if depth == 0 => break,
                _ => {}
            }
        } else if depth == 0 && t.is_ident("self") {
            has_self = true;
            break;
        }
    }
    // Body: the first `{` at paren/bracket depth 0 after the signature,
    // or `;` for a bodyless declaration.
    let mut body = None;
    let mut depth = 0i32;
    let mut k = paren_close + 1;
    while let Some(t) = toks.get(k) {
        if is_code(t) && t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 => {
                    let close = matching_punct(toks, k, "{", "}")?;
                    body = Some((k, close));
                    break;
                }
                ";" if depth == 0 => break,
                _ => {}
            }
        }
        k += 1;
    }
    let impl_type = impls
        .iter()
        .rev()
        .find(|&&(end, _)| fn_idx <= end)
        .map(|(_, ty)| ty.clone());
    Some(FnDef {
        file: fi,
        crate_name: file.crate_name.clone(),
        module: module.to_string(),
        name: name_tok.text.trim_start_matches("r#").to_string(),
        impl_type,
        has_self,
        line: name_tok.line,
        col: name_tok.col,
        body,
    })
}

fn next_code(toks: &[Token], from: usize) -> Option<usize> {
    (from..toks.len()).find(|&i| is_code(&toks[i]))
}

/// Matching closer for the opener at `open`, comment-aware.
pub(crate) fn matching_punct(toks: &[Token], open: usize, l: &str, r: &str) -> Option<usize> {
    let mut depth = 0usize;
    for (i, t) in toks.iter().enumerate().skip(open) {
        if !is_code(t) {
            continue;
        }
        if t.is_punct(l) {
            depth += 1;
        } else if t.is_punct(r) {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::walker::test_file;

    fn index_src(src: &str) -> Vec<FnDef> {
        let f = test_file(src, Context::Lib, false);
        index_file(&f, 0)
    }

    #[test]
    fn free_fns_and_methods_are_distinguished() {
        let src = "pub fn free(x: u8) -> u8 { x }\n\
                   struct S;\n\
                   impl S {\n  pub fn method(&self) -> u8 { 1 }\n  fn assoc() -> u8 { 2 }\n}\n";
        let fns = index_src(src);
        assert_eq!(fns.len(), 3);
        assert_eq!(fns[0].name, "free");
        assert!(!fns[0].has_self);
        assert_eq!(fns[1].name, "method");
        assert!(fns[1].has_self);
        assert_eq!(fns[1].impl_type.as_deref(), Some("S"));
        assert_eq!(fns[2].name, "assoc");
        assert!(!fns[2].has_self);
        assert_eq!(fns[2].impl_type.as_deref(), Some("S"));
    }

    #[test]
    fn trait_impls_attribute_to_the_type_not_the_trait() {
        let src = "impl Display for Waste {\n  fn fmt(&self, f: &mut F) -> R { todo_ }\n}";
        let fns = index_src(src);
        assert_eq!(fns[0].impl_type.as_deref(), Some("Waste"));
        assert!(fns[0].has_self);
    }

    #[test]
    fn generic_headers_and_where_clauses_survive() {
        let src = "impl<T: Clone> Runner<T> for Chunk<T> {\n\
                     fn drive<F>(&mut self, f: F) -> u8 where F: Fn(usize) -> u8 { f(0) }\n}\n\
                   pub fn run<A: Into<B>>(a: A) -> B { a.into() }";
        let fns = index_src(src);
        assert_eq!(fns[0].name, "drive");
        assert_eq!(fns[0].impl_type.as_deref(), Some("Chunk"));
        assert_eq!(fns[1].name, "run");
        assert!(fns[1].body.is_some());
    }

    #[test]
    fn bodyless_trait_signatures_have_no_body() {
        let fns = index_src("trait T {\n  fn sig(&self) -> u8;\n  fn with(&self) -> u8 { 1 }\n}");
        assert_eq!(fns.len(), 2);
        assert!(fns[0].body.is_none());
        assert!(fns[1].body.is_some());
    }

    #[test]
    fn test_exempt_fns_are_skipped() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n  fn helper() {}\n}";
        let fns = index_src(src);
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].name, "live");
    }

    #[test]
    fn enclosing_fn_picks_the_innermost() {
        let src = "fn outer() {\n  fn inner() { mark(); }\n  inner();\n}";
        let f = test_file(src, Context::Lib, false);
        let ws = Workspace {
            files: vec![f],
            crate_roots: vec![],
            unresolved_mods: vec![],
        };
        let idx = SymbolIndex::build(&ws);
        assert_eq!(idx.fns.len(), 2);
        let toks = lex(src);
        let mark = toks.iter().position(|t| t.is_ident("mark")).unwrap();
        let inner_call = toks.iter().rposition(|t| t.is_ident("inner")).unwrap();
        let mark_owner = idx.enclosing_fn(0, mark).unwrap();
        let call_owner = idx.enclosing_fn(0, inner_call).unwrap();
        assert_eq!(idx.fns[mark_owner].name, "inner");
        assert_eq!(idx.fns[call_owner].name, "outer");
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let fns = index_src("fn real(cb: fn(u8) -> u8) -> u8 { cb(1) }");
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].name, "real");
    }
}
