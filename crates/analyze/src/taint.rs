//! Determinism taint: does a nondeterministic source transitively
//! reach a fingerprinted output surface?
//!
//! The per-file `nondeterminism` lint flags *every* wall-clock or
//! hash-order token; this workspace lint asks the sharper question the
//! replay guarantee actually depends on: is the nondeterminism inside
//! a function that a **sink** — `run_sweep*`, the checkpoint snapshot
//! writers, serve's response encoders — can call? A sweep-engine
//! timing harness reading `Instant` is noise; the same read inside a
//! function `run_sweep` calls is a broken fingerprint.
//!
//! Sources (token-level, same conservatism as the per-file lint):
//! `Instant`, `SystemTime`, `HashMap`/`HashSet`, `thread::current`,
//! and OS entropy (`thread_rng`, `from_entropy`, `RandomState`,
//! `OsRng`, `getrandom`).
//!
//! The diagnostic carries the full sink→source call path so the
//! reader can audit every hop; one finding per source token, anchored
//! at the source, using the shortest path from the
//! alphabetically-first sink that reaches it.

use crate::callgraph::CallGraph;
use crate::diagnostics::{Finding, Severity};
use crate::lexer::TokenKind;
use crate::lints::{Explanation, WorkspaceLint};
use crate::symbols::{FnDef, SymbolIndex};
use crate::walker::Workspace;
use std::collections::BTreeMap;

/// The workspace determinism-taint lint.
pub struct DeterminismTaint;

/// One nondeterministic token inside a fn body.
struct SourceSite {
    fn_id: usize,
    file: usize,
    line: u32,
    col: u32,
    what: &'static str,
    token: String,
}

impl WorkspaceLint for DeterminismTaint {
    fn name(&self) -> &'static str {
        "determinism-taint"
    }
    fn description(&self) -> &'static str {
        "nondeterministic source reachable from a fingerprinted output surface (run_sweep*, snapshot writers, serve encoders)"
    }
    fn default_severity(&self) -> Severity {
        Severity::Deny
    }
    fn explanation(&self) -> Explanation {
        Explanation {
            rationale: "Every headline guarantee in this workspace — bit-identical sweeps \
                        across worker counts, checkpoint fingerprints that survive \
                        kill-and-resume, byte-stable serve responses — assumes the value a \
                        sink computes is a pure function of its seeded inputs. A wall-clock \
                        read, hash-order iteration, or OS-entropy draw anywhere in the call \
                        tree below run_sweep*, the snapshot writers, or the serve encoders \
                        silently voids that assumption; the per-file nondeterminism lint \
                        cannot see the call tree, so this lint walks the workspace call \
                        graph and reports the full source-to-sink path.",
            bad: "fn stamp() -> u64 { Instant::now().elapsed().as_nanos() as u64 } // called by run_sweep",
            good: "fn stamp(tick: u64) -> u64 { tick } // caller threads a seeded/logical clock through",
        }
    }
    fn check(
        &self,
        ws: &Workspace,
        index: &SymbolIndex,
        graph: &CallGraph,
        findings: &mut Vec<Finding>,
    ) {
        let sources = collect_sources(ws, index);
        if sources.is_empty() {
            return;
        }
        // fn id -> indices into `sources`.
        let mut by_fn: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (i, s) in sources.iter().enumerate() {
            by_fn.entry(s.fn_id).or_default().push(i);
        }
        // Per source site: the best (shortest, then first-sink) chain.
        let mut best: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        let mut sinks: Vec<usize> = (0..index.fns.len())
            .filter(|&id| sink_kind(ws, &index.fns[id]).is_some())
            .collect();
        sinks.sort_by_key(|&id| index.fns[id].qual());
        for &sink in &sinks {
            // BFS along callee edges, remembering the path.
            let mut parent: BTreeMap<usize, usize> = BTreeMap::new();
            let mut queue = std::collections::VecDeque::new();
            queue.push_back(sink);
            let mut seen = vec![false; index.fns.len()];
            seen[sink] = true;
            while let Some(f) = queue.pop_front() {
                if let Some(site_ids) = by_fn.get(&f) {
                    let chain = path_to(sink, f, &parent);
                    for &si in site_ids {
                        let cur = best.get(&si);
                        if cur.is_none_or(|c| chain.len() < c.len()) {
                            best.insert(si, chain.clone());
                        }
                    }
                }
                let mut next: Vec<usize> = graph
                    .callees(f)
                    .iter()
                    .map(|&ei| graph.edges[ei].callee)
                    .collect();
                next.sort_by_key(|&id| index.fns[id].qual());
                for n in next {
                    if !seen[n] {
                        seen[n] = true;
                        parent.insert(n, f);
                        queue.push_back(n);
                    }
                }
            }
        }
        let mut hits: Vec<(&SourceSite, Vec<usize>)> = best
            .iter()
            .map(|(&si, chain)| (&sources[si], chain.clone()))
            .collect();
        hits.sort_by_key(|(s, _)| (ws.files[s.file].rel.clone(), s.line, s.col));
        for (site, chain) in hits {
            let sink = chain[0];
            let kind = sink_kind(ws, &index.fns[sink]).unwrap_or("output surface");
            let path_str: Vec<String> = chain.iter().map(|&f| index.fns[f].qual()).collect();
            findings.push(Finding {
                lint: self.name().to_string(),
                severity: self.default_severity(),
                path: ws.files[site.file].rel.clone(),
                line: site.line,
                col: site.col,
                message: format!(
                    "{} `{}` in `{}` is reachable from {} `{}`; call path: {}",
                    site.what,
                    site.token,
                    index.fns[site.fn_id].qual(),
                    kind,
                    index.fns[sink].qual(),
                    path_str.join(" -> "),
                ),
                snippet: ws.files[site.file].snippet(site.line).to_string(),
            });
        }
    }
}

/// Reconstructs sink→fn as a fn-id chain (sink first).
fn path_to(sink: usize, f: usize, parent: &BTreeMap<usize, usize>) -> Vec<usize> {
    let mut chain = vec![f];
    let mut cur = f;
    while cur != sink {
        match parent.get(&cur) {
            Some(&p) => {
                chain.push(p);
                cur = p;
            }
            None => break,
        }
    }
    chain.reverse();
    chain
}

/// What makes `f` a fingerprinted output surface, if anything.
fn sink_kind(ws: &Workspace, f: &FnDef) -> Option<&'static str> {
    if f.name.starts_with("run_sweep") {
        return Some("sweep engine");
    }
    let rel = ws.files[f.file].rel.as_str();
    if rel.ends_with("checkpoint.rs") && (f.name.contains("snapshot") || f.name == "encode") {
        return Some("checkpoint snapshot writer");
    }
    if f.crate_name == "serve"
        && (f.name == "dispatch" || f.name == "answer_line" || f.name.ends_with("_payload"))
    {
        return Some("serve response encoder");
    }
    None
}

/// Nondeterministic tokens inside each indexed fn body.
fn collect_sources(ws: &Workspace, index: &SymbolIndex) -> Vec<SourceSite> {
    let mut out = Vec::new();
    for (fn_id, f) in index.fns.iter().enumerate() {
        let Some((a, b)) = f.body else { continue };
        let file = &ws.files[f.file];
        let toks = &file.tokens;
        for i in a..=b.min(toks.len().saturating_sub(1)) {
            let t = &toks[i];
            if t.kind != TokenKind::Ident || file.is_exempt(i) {
                continue;
            }
            let what: Option<(&'static str, String)> = match t.text.as_str() {
                "Instant" | "SystemTime" => Some(("wall-clock read", t.text.clone())),
                "HashMap" | "HashSet" => Some(("hash-order iteration", t.text.clone())),
                "thread_rng" | "from_entropy" | "RandomState" | "OsRng" | "getrandom" => {
                    Some(("OS entropy", t.text.clone()))
                }
                "current" => {
                    // `thread::current()` — thread identity.
                    let prev2 = (0..i)
                        .rev()
                        .filter(|&p| {
                            !matches!(
                                toks[p].kind,
                                TokenKind::LineComment | TokenKind::BlockComment
                            )
                        })
                        .take(2)
                        .collect::<Vec<_>>();
                    if prev2.len() == 2
                        && toks[prev2[0]].is_punct("::")
                        && toks[prev2[1]].is_ident("thread")
                    {
                        Some(("thread identity", "thread::current".into()))
                    } else {
                        None
                    }
                }
                _ => None,
            };
            if let Some((what, token)) = what {
                out.push(SourceSite {
                    fn_id,
                    file: f.file,
                    line: t.line,
                    col: t.col,
                    what,
                    token,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::walker::{test_file, Context};

    fn run(src: &str) -> Vec<Finding> {
        let ws = Workspace {
            files: vec![test_file(src, Context::Lib, false)],
            crate_roots: vec![],
            unresolved_mods: vec![],
        };
        let index = SymbolIndex::build(&ws);
        let graph = CallGraph::build(&ws, &index);
        let mut out = Vec::new();
        DeterminismTaint.check(&ws, &index, &graph, &mut out);
        out
    }

    #[test]
    fn source_reachable_from_sink_is_reported_with_path() {
        let src = "fn stamp() -> u64 { let t = Instant::now(); 0 }\n\
                   fn middle() -> u64 { stamp() }\n\
                   pub fn run_sweep_x() -> u64 { middle() }";
        let hits = run(src);
        assert_eq!(hits.len(), 1);
        assert!(hits[0].message.contains("run_sweep_x"));
        assert!(hits[0]
            .message
            .contains("x::run_sweep_x -> x::middle -> x::stamp"));
        assert_eq!(hits[0].severity, Severity::Deny);
    }

    #[test]
    fn source_not_reachable_from_any_sink_is_quiet() {
        let src = "fn harness() { let t = Instant::now(); run_sweep_x(); }\n\
                   pub fn run_sweep_x() -> u64 { 0 }";
        assert!(run(src).is_empty(), "caller-side timing is not taint");
    }

    #[test]
    fn source_inside_the_sink_itself_fires() {
        let hits = run("pub fn run_sweep_x() -> u64 { let m = HashMap::new(); 0 }");
        assert_eq!(hits.len(), 1);
        assert!(hits[0].message.contains("hash-order"));
    }

    #[test]
    fn thread_identity_needs_the_qualified_path() {
        let src = "fn current() -> u8 { 1 }\n\
                   pub fn run_sweep_x() -> u8 { current() }";
        assert!(
            run(src).is_empty(),
            "a local fn named current is not thread::current"
        );
        let hits = run("pub fn run_sweep_x() -> u64 { let id = thread::current().id(); 0 }");
        assert_eq!(hits.len(), 1);
        assert!(hits[0].message.contains("thread identity"));
    }
}
