//! Workspace discovery and module walking.
//!
//! The walker finds crates by filesystem convention — the workspace
//! root (if it has a `src/`) plus every `crates/*` directory with a
//! `src/` — so it needs no manifest parser and never wanders into
//! `vendor/`, `target/` or `results/`. From each crate it collects the
//! compilation roots (`src/lib.rs`, `src/main.rs`, `tests/*.rs`,
//! `benches/*.rs`, `examples/*.rs`) and follows `mod name;`
//! declarations to reach every file the compiler would, classifying
//! each by [`Context`] so lints can exempt test code.

use crate::lexer::{lex, Token, TokenKind};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// How a file is compiled, which decides which lints apply to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
#[serde(rename_all = "lowercase")]
pub enum Context {
    /// Library or binary code: ships to users, all lints apply.
    Lib,
    /// Integration test (`tests/*.rs` and its modules).
    Test,
    /// Benchmark target.
    Bench,
    /// Example target.
    Example,
}

/// One lexed source file plus everything a lint needs to know about it.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path, `/`-separated (stable across hosts).
    pub rel: String,
    /// Name of the owning crate (directory name; `dck` for the root).
    pub crate_name: String,
    /// Compilation context.
    pub context: Context,
    /// True for `src/lib.rs` / `src/main.rs` of a crate.
    pub is_crate_root: bool,
    /// The full source text.
    pub text: String,
    /// The token stream.
    pub tokens: Vec<Token>,
    /// Token-index ranges (half-open) covered by `#[cfg(test)]` items
    /// or `#[test]` functions; most lints skip findings inside them.
    exempt: Vec<(usize, usize)>,
}

impl SourceFile {
    /// True when token `i` lies inside a test-exempt region.
    pub fn is_exempt(&self, i: usize) -> bool {
        self.exempt.iter().any(|&(a, b)| a <= i && i < b)
    }

    /// The trimmed source line `line` (1-based), for diagnostics.
    pub fn snippet(&self, line: u32) -> &str {
        self.text
            .lines()
            .nth(line.saturating_sub(1) as usize)
            .unwrap_or("")
            .trim()
    }
}

/// The scanned workspace: every reachable source file.
#[derive(Debug)]
pub struct Workspace {
    /// All files, sorted by relative path.
    pub files: Vec<SourceFile>,
    /// Crate names with their root file (`lib.rs` preferred), used by
    /// whole-crate lints such as `forbid-unsafe`.
    pub crate_roots: Vec<(String, String)>,
    /// `mod` declarations whose file could not be found (often
    /// `cfg`-gated); surfaced so a broken walker is visible.
    pub unresolved_mods: Vec<String>,
}

/// Walks the workspace under `root`.
///
/// # Errors
/// An I/O failure reading a discovered file, with its path.
pub fn walk_workspace(root: &Path) -> Result<Workspace, String> {
    let mut crate_dirs: Vec<(String, PathBuf)> = Vec::new();
    if root.join("src").is_dir() {
        crate_dirs.push((root_crate_name(root), root.to_path_buf()));
    }
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut subdirs: Vec<PathBuf> = read_dir_sorted(&crates_dir)?;
        subdirs.retain(|d| d.join("src").is_dir());
        for d in subdirs {
            let name = d
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            crate_dirs.push((name, d));
        }
    }

    let mut files = Vec::new();
    let mut crate_roots = Vec::new();
    let mut unresolved = Vec::new();
    let mut visited: BTreeSet<PathBuf> = BTreeSet::new();
    for (crate_name, dir) in &crate_dirs {
        let mut roots: Vec<(PathBuf, Context, bool)> = Vec::new();
        for (file, is_lib_root) in [("src/lib.rs", true), ("src/main.rs", true)] {
            let p = dir.join(file);
            if p.is_file() {
                roots.push((p, Context::Lib, is_lib_root));
            }
        }
        for (subdir, ctx) in [
            ("tests", Context::Test),
            ("benches", Context::Bench),
            ("examples", Context::Example),
        ] {
            let d = dir.join(subdir);
            if d.is_dir() {
                for p in read_dir_sorted(&d)? {
                    if p.extension().is_some_and(|e| e == "rs") {
                        roots.push((p, ctx, false));
                    }
                }
            }
        }
        let mut registered_root = false;
        for (path, ctx, is_root) in roots {
            let is_crate_root = is_root && !registered_root;
            if is_crate_root {
                registered_root = true;
                crate_roots.push((crate_name.clone(), rel_path(root, &path)));
            }
            walk_module_tree(
                root,
                crate_name,
                &path,
                ctx,
                is_crate_root,
                &mut files,
                &mut visited,
                &mut unresolved,
            )?;
        }
    }
    files.sort_by(|a, b| a.rel.cmp(&b.rel));
    Ok(Workspace {
        files,
        crate_roots,
        unresolved_mods: unresolved,
    })
}

/// The root crate's name from its `Cargo.toml` (first `name = "..."`),
/// falling back to the directory name.
fn root_crate_name(root: &Path) -> String {
    if let Ok(manifest) = std::fs::read_to_string(root.join("Cargo.toml")) {
        for line in manifest.lines() {
            let line = line.trim();
            if let Some(rest) = line.strip_prefix("name") {
                let rest = rest.trim_start();
                if let Some(v) = rest.strip_prefix('=') {
                    let v = v.trim().trim_matches('"');
                    if !v.is_empty() {
                        return v.to_string();
                    }
                }
            }
        }
    }
    root.file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "root".to_string())
}

fn read_dir_sorted(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let rd = std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    let mut out = Vec::new();
    for entry in rd {
        let entry = entry.map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
        out.push(entry.path());
    }
    out.sort();
    Ok(out)
}

fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

#[allow(clippy::too_many_arguments)]
fn walk_module_tree(
    root: &Path,
    crate_name: &str,
    path: &Path,
    ctx: Context,
    is_crate_root: bool,
    files: &mut Vec<SourceFile>,
    visited: &mut BTreeSet<PathBuf>,
    unresolved: &mut Vec<String>,
) -> Result<(), String> {
    if !visited.insert(path.to_path_buf()) {
        return Ok(());
    }
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let tokens = lex(&text);
    let exempt = test_exempt_regions(&tokens);
    let children = child_modules(&tokens);
    let file = SourceFile {
        rel: rel_path(root, path),
        crate_name: crate_name.to_string(),
        context: ctx,
        is_crate_root,
        text,
        tokens,
        exempt,
    };
    files.push(file);

    // `mod m;` in `lib.rs` / `main.rs` / `mod.rs` resolves next to the
    // file; in `name.rs` it resolves under `name/`.
    let file_name = path.file_name().map(|n| n.to_string_lossy().into_owned());
    let base = if matches!(file_name.as_deref(), Some("lib.rs" | "main.rs" | "mod.rs")) {
        path.parent().map(Path::to_path_buf)
    } else {
        path.parent()
            .zip(path.file_stem())
            .map(|(p, stem)| p.join(stem))
    };
    let Some(base) = base else { return Ok(()) };
    for m in children {
        let flat = base.join(format!("{m}.rs"));
        let nested = base.join(&m).join("mod.rs");
        let child = if flat.is_file() {
            flat
        } else if nested.is_file() {
            nested
        } else {
            unresolved.push(format!("{}: mod {m}", rel_path(root, path)));
            continue;
        };
        walk_module_tree(
            root, crate_name, &child, ctx, false, files, visited, unresolved,
        )?;
    }
    Ok(())
}

/// Out-of-line child modules: every `mod name ;` token triple.
fn child_modules(tokens: &[Token]) -> Vec<String> {
    let code: Vec<&Token> = tokens
        .iter()
        .filter(|t| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
        .collect();
    let mut out = Vec::new();
    for w in code.windows(3) {
        if w[0].is_ident("mod") && w[1].kind == TokenKind::Ident && w[2].is_punct(";") {
            out.push(w[1].text.trim_start_matches("r#").to_string());
        }
    }
    out
}

/// Token ranges covered by `#[cfg(test)]` items and `#[test]`-style
/// functions (any attribute whose last path segment is `test`,
/// covering `#[test]` and `#[proptest]`-like wrappers).
fn test_exempt_regions(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut out: Vec<(usize, usize)> = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if !(tokens[i].is_punct("#") && tokens.get(i + 1).is_some_and(|t| t.is_punct("["))) {
            i += 1;
            continue;
        }
        let attr_start = i;
        let Some(attr_end) = matching_bracket(tokens, i + 1) else {
            break;
        };
        if attribute_is_test(&tokens[i + 2..attr_end]) {
            // Skip any further attributes, then the item itself.
            let mut j = attr_end + 1;
            while j < tokens.len()
                && tokens[j].is_punct("#")
                && tokens.get(j + 1).is_some_and(|t| t.is_punct("["))
            {
                match matching_bracket(tokens, j + 1) {
                    Some(e) => j = e + 1,
                    None => break,
                }
            }
            let item_end = item_extent(tokens, j);
            if out.last().is_some_and(|&(_, b)| attr_start < b) {
                // Nested inside an already-exempt region; extend it.
                if let Some(last) = out.last_mut() {
                    last.1 = last.1.max(item_end);
                }
            } else {
                out.push((attr_start, item_end));
            }
            i = item_end;
        } else {
            i = attr_end + 1;
        }
    }
    out
}

/// Does the attribute body mark test-only code? Matches `cfg(test)`
/// (any `cfg(...)` mentioning `test`) and `...test]` paths.
fn attribute_is_test(body: &[Token]) -> bool {
    if body.first().is_some_and(|t| t.is_ident("cfg")) {
        // `cfg(not(test))` gates *live* code; anything else naming
        // `test` (plain, `any`, `all`) gates test-only code.
        return body.iter().any(|t| t.is_ident("test")) && !body.iter().any(|t| t.is_ident("not"));
    }
    body.last().is_some_and(|t| t.is_ident("test"))
}

/// Index just past the item starting at `start`: through the matching
/// `}` of its first body brace, or past the terminating `;`.
fn item_extent(tokens: &[Token], start: usize) -> usize {
    let mut depth = 0usize;
    let mut i = start;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "{" => {
                    if let Some(end) = matching_brace(tokens, i) {
                        return end + 1;
                    }
                    return tokens.len();
                }
                ";" if depth == 0 => return i + 1,
                "(" | "[" => depth += 1,
                ")" | "]" => depth = depth.saturating_sub(1),
                _ => {}
            }
        }
        i += 1;
    }
    tokens.len()
}

/// Matching `]` for the `[` at `open`.
fn matching_bracket(tokens: &[Token], open: usize) -> Option<usize> {
    matching_delim(tokens, open, "[", "]")
}

/// Matching `}` for the `{` at `open`.
fn matching_brace(tokens: &[Token], open: usize) -> Option<usize> {
    matching_delim(tokens, open, "{", "}")
}

fn matching_delim(tokens: &[Token], open: usize, l: &str, r: &str) -> Option<usize> {
    let mut depth = 0usize;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct(l) {
            depth += 1;
        } else if t.is_punct(r) {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

/// Test-only constructor: a lexed in-memory file with exempt regions
/// computed, used by the lint unit tests.
#[cfg(test)]
pub(crate) fn test_file(src: &str, context: Context, is_crate_root: bool) -> SourceFile {
    let tokens = lex(src);
    let exempt = test_exempt_regions(&tokens);
    SourceFile {
        rel: "crates/x/src/lib.rs".into(),
        crate_name: "x".into(),
        context,
        is_crate_root,
        text: src.into(),
        tokens,
        exempt,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file_from(src: &str) -> SourceFile {
        test_file(src, Context::Lib, false)
    }

    #[test]
    fn cfg_test_module_is_exempt() {
        let src = "fn a() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n fn b() { y.unwrap(); }\n}\nfn c() {}";
        let f = file_from(src);
        let unwraps: Vec<usize> = f
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_ident("unwrap"))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(unwraps.len(), 2);
        assert!(!f.is_exempt(unwraps[0]), "library unwrap is live");
        assert!(f.is_exempt(unwraps[1]), "test-module unwrap is exempt");
        let c = f.tokens.iter().position(|t| t.is_ident("c")).unwrap();
        assert!(!f.is_exempt(c), "code after the test module is live");
    }

    #[test]
    fn test_fn_attribute_is_exempt() {
        let src = "#[test]\nfn t() { x.unwrap(); }\nfn live() { y.unwrap(); }";
        let f = file_from(src);
        let unwraps: Vec<usize> = f
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_ident("unwrap"))
            .map(|(i, _)| i)
            .collect();
        assert!(f.is_exempt(unwraps[0]));
        assert!(!f.is_exempt(unwraps[1]));
    }

    #[test]
    fn cfg_test_use_item_is_exempt_to_semicolon() {
        let src = "#[cfg(test)]\nuse proptest::prelude::*;\nfn live() {}";
        let f = file_from(src);
        let live = f.tokens.iter().position(|t| t.is_ident("live")).unwrap();
        assert!(!f.is_exempt(live));
    }

    #[test]
    fn other_attributes_are_not_exempt() {
        let src = "#[derive(Debug)]\nstruct S { x: u8 }\nfn live() { v.unwrap(); }";
        let f = file_from(src);
        let u = f.tokens.iter().position(|t| t.is_ident("unwrap")).unwrap();
        assert!(!f.is_exempt(u));
    }

    #[test]
    fn child_modules_found() {
        let mods = child_modules(&lex(
            "pub mod alpha;\nmod beta;\nmod inline { }\n// mod nope;",
        ));
        assert_eq!(mods, vec!["alpha".to_string(), "beta".to_string()]);
    }
}
