//! A hand-rolled Rust lexer: good enough to drive token-pattern lints.
//!
//! The lexer understands everything a lint must never be confused by —
//! nested block comments, raw/byte strings, char literals vs
//! lifetimes, raw identifiers, float vs integer literals, multi-char
//! operators — and deliberately nothing more. It has no notion of
//! syntax trees; the lints pattern-match over the token stream.

/// The coarse classification a lint needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (including raw identifiers, `r#match`).
    Ident,
    /// Lifetime (`'a`, `'_`, `'static`).
    Lifetime,
    /// Integer literal (`42`, `0xFF`, `1_000u64`).
    Int,
    /// Float literal (`1.0`, `1e-9`, `2.5f32`).
    Float,
    /// String, raw-string, byte-string or C-string literal.
    Str,
    /// Character or byte literal (`'x'`, `b'\n'`).
    Char,
    /// `// ...` comment, including doc comments (`///`, `//!`).
    LineComment,
    /// `/* ... */` comment, nesting-aware.
    BlockComment,
    /// Operator or delimiter; multi-char operators are one token.
    Punct,
}

/// One lexed token with its 1-based source position.
#[derive(Debug, Clone)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// The exact source text of the token.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column (in characters) of the token's first character.
    pub col: u32,
}

impl Token {
    /// True when this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// True when this token is the punctuation `s`.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == s
    }
}

/// Multi-character operators, longest first so maximal munch works.
const OPERATORS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "==", "!=", "<=", ">=", "&&", "||", "->", "=>", "..", "+=",
    "-=", "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>",
];

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.src.get(self.pos).copied()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else if b & 0xC0 != 0x80 {
            // Count characters, not UTF-8 continuation bytes.
            self.col += 1;
        }
        Some(b)
    }

    fn starts_with(&self, s: &str) -> bool {
        self.src[self.pos..].starts_with(s.as_bytes())
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lexes `src` into tokens. Whitespace is dropped; comments are kept
/// (the todo-marker lint reads them). Unterminated constructs are
/// tolerated: the rest of the file becomes one token, so a lint pass
/// never aborts on malformed input.
pub fn lex(src: &str) -> Vec<Token> {
    let mut c = Cursor {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut out = Vec::new();
    while let Some(b) = c.peek(0) {
        let (line, col, start) = (c.line, c.col, c.pos);
        let kind = if b.is_ascii_whitespace() {
            c.bump();
            continue;
        } else if c.starts_with("//") {
            while let Some(b) = c.peek(0) {
                if b == b'\n' {
                    break;
                }
                c.bump();
            }
            TokenKind::LineComment
        } else if c.starts_with("/*") {
            c.bump();
            c.bump();
            let mut depth = 1usize;
            while depth > 0 && c.peek(0).is_some() {
                if c.starts_with("/*") {
                    depth += 1;
                    c.bump();
                    c.bump();
                } else if c.starts_with("*/") {
                    depth -= 1;
                    c.bump();
                    c.bump();
                } else {
                    c.bump();
                }
            }
            TokenKind::BlockComment
        } else if is_raw_string_start(&c) {
            lex_raw_string(&mut c);
            TokenKind::Str
        } else if b == b'r' && c.peek(1) == Some(b'#') && c.peek(2).is_some_and(is_ident_start) {
            // Raw identifier r#name.
            c.bump();
            c.bump();
            while c.peek(0).is_some_and(is_ident_continue) {
                c.bump();
            }
            TokenKind::Ident
        } else if b == b'b' && c.peek(1) == Some(b'\'') {
            c.bump();
            lex_char(&mut c);
            TokenKind::Char
        } else if b == b'b' && c.peek(1) == Some(b'"') {
            c.bump();
            lex_string(&mut c);
            TokenKind::Str
        } else if is_ident_start(b) {
            while c.peek(0).is_some_and(is_ident_continue) {
                c.bump();
            }
            TokenKind::Ident
        } else if b == b'\'' {
            // Lifetime or char literal. A lifetime is `'` followed by an
            // identifier *not* closed by another `'`.
            let mut i = 1;
            while c.peek(i).is_some_and(is_ident_continue) {
                i += 1;
            }
            if i > 1 && c.peek(i) != Some(b'\'') {
                c.bump();
                while c.peek(0).is_some_and(is_ident_continue) {
                    c.bump();
                }
                TokenKind::Lifetime
            } else {
                lex_char(&mut c);
                TokenKind::Char
            }
        } else if b == b'"' {
            lex_string(&mut c);
            TokenKind::Str
        } else if b.is_ascii_digit() {
            lex_number(&mut c)
        } else {
            let mut matched = false;
            for op in OPERATORS {
                if c.starts_with(op) {
                    for _ in 0..op.len() {
                        c.bump();
                    }
                    matched = true;
                    break;
                }
            }
            if !matched {
                c.bump();
            }
            TokenKind::Punct
        };
        out.push(Token {
            kind,
            text: src[start..c.pos].to_string(),
            line,
            col,
        });
    }
    out
}

/// `r"`, `r#"`, `br"`, `br#"`, `c"` ... — raw and prefixed strings.
fn is_raw_string_start(c: &Cursor<'_>) -> bool {
    let mut i = 0;
    if matches!(c.peek(0), Some(b'b' | b'c')) {
        i = 1;
    }
    if c.peek(i) != Some(b'r') {
        return false;
    }
    i += 1;
    while c.peek(i) == Some(b'#') {
        i += 1;
    }
    c.peek(i) == Some(b'"')
}

fn lex_raw_string(c: &mut Cursor<'_>) {
    while c.peek(0).is_some_and(|b| b != b'"') {
        c.bump();
    }
    // Count the opening hashes just consumed.
    let hashes = {
        let mut n = 0;
        let mut back = c.pos;
        while back > 0 && c.src[back - 1] == b'#' {
            n += 1;
            back -= 1;
        }
        n
    };
    c.bump(); // opening quote
    loop {
        match c.bump() {
            None => return,
            Some(b'"') => {
                let mut seen = 0;
                while seen < hashes && c.peek(0) == Some(b'#') {
                    c.bump();
                    seen += 1;
                }
                if seen == hashes {
                    return;
                }
            }
            Some(_) => {}
        }
    }
}

fn lex_string(c: &mut Cursor<'_>) {
    c.bump(); // opening quote
    loop {
        match c.bump() {
            None | Some(b'"') => return,
            Some(b'\\') => {
                c.bump();
            }
            Some(_) => {}
        }
    }
}

fn lex_char(c: &mut Cursor<'_>) {
    c.bump(); // opening quote
    loop {
        match c.bump() {
            None | Some(b'\'') => return,
            Some(b'\\') => {
                c.bump();
            }
            Some(_) => {}
        }
    }
}

fn lex_number(c: &mut Cursor<'_>) -> TokenKind {
    let mut float = false;
    // Radix prefixes never start a float.
    if c.peek(0) == Some(b'0') && matches!(c.peek(1), Some(b'x' | b'o' | b'b')) {
        c.bump();
        c.bump();
        while c.peek(0).is_some_and(is_ident_continue) {
            c.bump();
        }
        return TokenKind::Int;
    }
    while c.peek(0).is_some_and(|b| b.is_ascii_digit() || b == b'_') {
        c.bump();
    }
    // A `.` continues the number only when not `..` (range) and not a
    // method call on a literal (`1.max(2)`).
    if c.peek(0) == Some(b'.') && c.peek(1) != Some(b'.') && !c.peek(1).is_some_and(is_ident_start)
    {
        float = true;
        c.bump();
        while c.peek(0).is_some_and(|b| b.is_ascii_digit() || b == b'_') {
            c.bump();
        }
    }
    // Exponent.
    if matches!(c.peek(0), Some(b'e' | b'E')) {
        let sign = usize::from(matches!(c.peek(1), Some(b'+' | b'-')));
        if c.peek(1 + sign).is_some_and(|b| b.is_ascii_digit()) {
            float = true;
            c.bump();
            if sign == 1 {
                c.bump();
            }
            while c.peek(0).is_some_and(|b| b.is_ascii_digit() || b == b'_') {
                c.bump();
            }
        }
    }
    // Type suffix (`u64`, `f32`, ...).
    let suffix_start = c.pos;
    while c.peek(0).is_some_and(is_ident_continue) {
        c.bump();
    }
    let suffix = &c.src[suffix_start..c.pos];
    if suffix == b"f32" || suffix == b"f64" {
        float = true;
    }
    if float {
        TokenKind::Float
    } else {
        TokenKind::Int
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_keywords_and_raw_idents() {
        let k = kinds("fn r#match _x");
        assert_eq!(k[0], (TokenKind::Ident, "fn".into()));
        assert_eq!(k[1], (TokenKind::Ident, "r#match".into()));
        assert_eq!(k[2], (TokenKind::Ident, "_x".into()));
    }

    #[test]
    fn numbers_int_vs_float() {
        assert_eq!(kinds("42")[0].0, TokenKind::Int);
        assert_eq!(kinds("0xFF_u64")[0].0, TokenKind::Int);
        assert_eq!(kinds("1.0")[0].0, TokenKind::Float);
        assert_eq!(kinds("1e-9")[0].0, TokenKind::Float);
        assert_eq!(kinds("2f64")[0].0, TokenKind::Float);
        // `1..3` is int, dot-dot, int — not a float.
        let k = kinds("1..3");
        assert_eq!(k[0].0, TokenKind::Int);
        assert_eq!(k[1], (TokenKind::Punct, "..".into()));
        // Method call on a literal stays an int.
        assert_eq!(kinds("1.max(2)")[0], (TokenKind::Int, "1".into()));
        assert_eq!(kinds("1.5e3f32")[0].0, TokenKind::Float);
    }

    #[test]
    fn strings_and_chars_hide_their_contents() {
        let k = kinds(r#"let s = "a.unwrap() // not code";"#);
        assert_eq!(k[3].0, TokenKind::Str);
        assert_eq!(kinds("'\\n'")[0].0, TokenKind::Char);
        assert_eq!(kinds("b'x'")[0].0, TokenKind::Char);
        let k = kinds("r#\"raw \" inner\"# x");
        assert_eq!(k[0].0, TokenKind::Str);
        assert_eq!(k[1], (TokenKind::Ident, "x".into()));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let k = kinds("&'a str");
        assert_eq!(k[1], (TokenKind::Lifetime, "'a".into()));
        assert_eq!(kinds("'x'")[0].0, TokenKind::Char);
        assert_eq!(kinds("'_")[0].0, TokenKind::Lifetime);
    }

    #[test]
    fn comments_nest_and_keep_text() {
        let k = kinds("/* outer /* inner */ still */ x // tail");
        assert_eq!(k[0].0, TokenKind::BlockComment);
        assert_eq!(k[1], (TokenKind::Ident, "x".into()));
        assert_eq!(k[2].0, TokenKind::LineComment);
    }

    #[test]
    fn multi_char_operators_are_single_tokens() {
        let k = kinds("a::b == c != d ..= e");
        assert_eq!(k[1], (TokenKind::Punct, "::".into()));
        assert_eq!(k[3], (TokenKind::Punct, "==".into()));
        assert_eq!(k[5], (TokenKind::Punct, "!=".into()));
        assert_eq!(k[7], (TokenKind::Punct, "..=".into()));
    }

    #[test]
    fn positions_are_one_based_lines_and_cols() {
        let t = lex("ab\n  cd");
        assert_eq!((t[0].line, t[0].col), (1, 1));
        assert_eq!((t[1].line, t[1].col), (2, 3));
    }

    #[test]
    fn unterminated_input_does_not_hang() {
        assert!(!lex("\"open").is_empty());
        assert!(!lex("/* open").is_empty());
        assert!(!lex("r#\"open").is_empty());
    }
}
