//! `analyze.toml`: severity overrides and the justified baseline.
//!
//! The build environment has no registry access, so this module
//! includes a deliberately small TOML-subset parser covering exactly
//! what the config needs: `[section]` tables, `[[section]]` arrays of
//! tables, `key = "string" | integer | true | false`, and `#`
//! comments. Unknown keys and sections are rejected loudly — a typo in
//! a lint name must not silently disable enforcement.

use crate::diagnostics::{Finding, Severity};
use std::collections::BTreeMap;

/// How far a `snippet_hash`-keyed entry's `line` anchor may drift from
/// the finding before the entry stops matching. Unrelated edits that
/// shift code by up to this many lines never re-key the baseline.
pub const LINE_FUZZ: u32 = 10;

/// One baseline entry: a justified suppression of current findings.
///
/// The durable key is `(path, lint, snippet_hash)` with `line` as a
/// ±[`LINE_FUZZ`] anchor; an entry with `line` but no `snippet_hash`
/// is the deprecated exact-line format, which still matches but is
/// reported so it can be migrated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// Lint name the entry applies to.
    pub lint: String,
    /// Workspace-relative path; a trailing `*` makes it a prefix match
    /// (`crates/experiments/*`).
    pub path: String,
    /// Line anchor. With `snippet_hash`: fuzzy (±[`LINE_FUZZ`] lines).
    /// Without: deprecated exact match. Absent: whole file.
    pub line: Option<u32>,
    /// FNV-1a hash (16 hex digits) of the whitespace-normalized source
    /// line the finding sits on — the content key that survives
    /// unrelated edits shifting line numbers.
    pub snippet_hash: Option<String>,
    /// Why this finding is acceptable. Required: an empty
    /// justification fails the scan.
    pub justification: String,
}

impl AllowEntry {
    /// Does this entry suppress `f`?
    pub fn matches(&self, f: &Finding) -> bool {
        if self.lint != f.lint {
            return false;
        }
        let path_ok = match self.path.strip_suffix('*') {
            Some(prefix) => f.path.starts_with(prefix),
            None => f.path == self.path,
        };
        if !path_ok {
            return false;
        }
        match (&self.snippet_hash, self.line) {
            // Content key: hash must match, the line anchor (if any)
            // only has to be within the fuzz window.
            (Some(h), anchor) => {
                *h == snippet_hash(&f.snippet)
                    && anchor.is_none_or(|l| l.abs_diff(f.line) <= LINE_FUZZ)
            }
            // Deprecated exact-line key.
            (None, Some(l)) => l == f.line,
            // Whole file.
            (None, None) => true,
        }
    }

    /// True for the deprecated exact-line key format (line without a
    /// snippet hash).
    pub fn is_deprecated_exact_line(&self) -> bool {
        self.line.is_some() && self.snippet_hash.is_none()
    }

    /// Short description for stale/unjustified messages.
    pub fn describe(&self) -> String {
        match self.line {
            Some(l) => format!("[{}] {}:{l}", self.lint, self.path),
            None => format!("[{}] {}", self.lint, self.path),
        }
    }
}

/// FNV-1a (64-bit) over the whitespace-normalized snippet — the same
/// hash the checkpoint fingerprints use, rendered as 16 hex digits.
/// Normalization trims the line and collapses internal whitespace
/// runs, so re-indentation does not re-key the baseline either.
pub fn snippet_hash(snippet: &str) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut pending_space = false;
    for part in snippet.split_whitespace() {
        if pending_space {
            h ^= u64::from(b' ');
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        for &b in part.as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        pending_space = true;
    }
    format!("{h:016x}")
}

/// Parsed `analyze.toml`.
#[derive(Debug, Default)]
pub struct AnalyzeConfig {
    /// Per-lint severity overrides from `[severity]`.
    pub severity: BTreeMap<String, Severity>,
    /// Baseline entries from `[[allow]]`.
    pub allow: Vec<AllowEntry>,
}

impl AnalyzeConfig {
    /// Parses the config text.
    ///
    /// # Errors
    /// A `line N: ...` message for the first malformed construct.
    pub fn from_toml(text: &str) -> Result<AnalyzeConfig, String> {
        let mut cfg = AnalyzeConfig::default();
        let mut section = String::new();
        for (idx, raw) in text.lines().enumerate() {
            let n = idx + 1;
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix("[[").and_then(|s| s.strip_suffix("]]")) {
                let name = name.trim();
                if name != "allow" {
                    return Err(format!("line {n}: unknown array of tables [[{name}]]"));
                }
                cfg.allow.push(AllowEntry {
                    lint: String::new(),
                    path: String::new(),
                    line: None,
                    snippet_hash: None,
                    justification: String::new(),
                });
                section = "allow".into();
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
                let name = name.trim();
                if name != "severity" {
                    return Err(format!("line {n}: unknown section [{name}]"));
                }
                section = name.into();
                continue;
            }
            let (key, value) = split_key_value(line)
                .ok_or_else(|| format!("line {n}: expected `key = value`, got `{line}`"))?;
            match section.as_str() {
                "severity" => {
                    let sev = value
                        .as_str()
                        .and_then(Severity::parse)
                        .ok_or_else(|| format!("line {n}: severity must be allow|warn|deny"))?;
                    cfg.severity.insert(key.to_string(), sev);
                }
                "allow" => {
                    let entry = cfg
                        .allow
                        .last_mut()
                        .ok_or_else(|| format!("line {n}: key outside [[allow]]"))?;
                    match key {
                        "lint" => {
                            entry.lint = value
                                .as_str()
                                .ok_or_else(|| format!("line {n}: lint must be a string"))?
                                .to_string();
                        }
                        "path" => {
                            entry.path = value
                                .as_str()
                                .ok_or_else(|| format!("line {n}: path must be a string"))?
                                .to_string();
                        }
                        "line" => {
                            entry.line = Some(
                                value
                                    .as_int()
                                    .ok_or_else(|| format!("line {n}: line must be an integer"))?,
                            );
                        }
                        "snippet_hash" => {
                            let h = value.as_str().ok_or_else(|| {
                                format!("line {n}: snippet_hash must be a string")
                            })?;
                            if h.len() != 16 || !h.bytes().all(|b| b.is_ascii_hexdigit()) {
                                return Err(format!(
                                    "line {n}: snippet_hash must be 16 hex digits"
                                ));
                            }
                            entry.snippet_hash = Some(h.to_ascii_lowercase());
                        }
                        "justification" => {
                            entry.justification = value
                                .as_str()
                                .ok_or_else(|| format!("line {n}: justification must be a string"))?
                                .to_string();
                        }
                        other => {
                            return Err(format!("line {n}: unknown [[allow]] key `{other}`"));
                        }
                    }
                }
                _ => return Err(format!("line {n}: key `{key}` outside any section")),
            }
        }
        for e in &cfg.allow {
            if e.lint.is_empty() || e.path.is_empty() {
                return Err(format!(
                    "[[allow]] entry needs both `lint` and `path` (got {})",
                    e.describe()
                ));
            }
        }
        Ok(cfg)
    }

    /// Renders `[[allow]]` entries for `findings` — the starting point
    /// for a new baseline, keyed by content hash with the line as a
    /// fuzzy anchor. Justifications are left empty on purpose: the
    /// scan refuses them until a human writes the reason down.
    pub fn baseline_toml(findings: &[Finding]) -> String {
        let mut out = String::new();
        for f in findings {
            out.push_str("[[allow]]\n");
            out.push_str(&format!("lint = \"{}\"\n", f.lint));
            out.push_str(&format!("path = \"{}\"\n", f.path));
            out.push_str(&format!("line = {}\n", f.line));
            out.push_str(&format!(
                "snippet_hash = \"{}\"\n",
                snippet_hash(&f.snippet)
            ));
            out.push_str("justification = \"\"\n\n");
        }
        out
    }
}

/// A parsed scalar value.
enum Value {
    Str(String),
    Int(i64),
    Bool(#[allow(dead_code)] bool),
}

impl Value {
    fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_int(&self) -> Option<u32> {
        match self {
            Value::Int(i) => u32::try_from(*i).ok(),
            _ => None,
        }
    }
}

/// Strips a `#` comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Splits `key = value`, parsing the value as string/int/bool.
fn split_key_value(line: &str) -> Option<(&str, Value)> {
    let eq = line.find('=')?;
    let key = line[..eq].trim();
    let raw = line[eq + 1..].trim();
    if key.is_empty() || raw.is_empty() {
        return None;
    }
    let value = if let Some(stripped) = raw.strip_prefix('"') {
        let body = stripped.strip_suffix('"')?;
        let mut s = String::with_capacity(body.len());
        let mut escaped = false;
        for c in body.chars() {
            if escaped {
                s.push(match c {
                    'n' => '\n',
                    't' => '\t',
                    other => other,
                });
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else {
                s.push(c);
            }
        }
        Value::Str(s)
    } else if raw == "true" {
        Value::Bool(true)
    } else if raw == "false" {
        Value::Bool(false)
    } else {
        Value::Int(raw.parse().ok()?)
    };
    Some((key, value))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# severity overrides
[severity]
slice-index = "allow"   # trailing comment
float-eq = "deny"

[[allow]]
lint = "panic-safety"
path = "crates/simcore/src/par.rs"
justification = "worker panics must propagate"

[[allow]]
lint = "sentinel-value"
path = "crates/core/src/opt.rs"
line = 91
justification = "minimizer-internal +inf, never escapes"
"#;

    #[test]
    fn parses_sections_and_arrays() {
        let cfg = AnalyzeConfig::from_toml(SAMPLE).unwrap();
        assert_eq!(cfg.severity["slice-index"], Severity::Allow);
        assert_eq!(cfg.severity["float-eq"], Severity::Deny);
        assert_eq!(cfg.allow.len(), 2);
        assert_eq!(cfg.allow[0].line, None);
        assert_eq!(cfg.allow[1].line, Some(91));
        assert!(cfg.allow[1].justification.contains("minimizer"));
    }

    #[test]
    fn entry_matching_exact_prefix_and_line() {
        let f = Finding {
            lint: "panic-safety".into(),
            severity: Severity::Deny,
            path: "crates/experiments/src/validate.rs".into(),
            line: 10,
            col: 1,
            message: String::new(),
            snippet: String::new(),
        };
        let mut e = AllowEntry {
            lint: "panic-safety".into(),
            path: "crates/experiments/*".into(),
            line: None,
            snippet_hash: None,
            justification: "x".into(),
        };
        assert!(e.matches(&f));
        e.path = "crates/experiments/src/validate.rs".into();
        assert!(e.matches(&f));
        e.line = Some(11);
        assert!(!e.matches(&f));
        e.line = Some(10);
        e.lint = "float-eq".into();
        assert!(!e.matches(&f));
    }

    #[test]
    fn rejects_unknown_constructs() {
        assert!(AnalyzeConfig::from_toml("[lints]\nx = \"deny\"").is_err());
        assert!(AnalyzeConfig::from_toml("[severity]\nx = \"fatal\"").is_err());
        assert!(AnalyzeConfig::from_toml("[[allow]]\nbogus = 1").is_err());
        assert!(AnalyzeConfig::from_toml("loose = 1").is_err());
        assert!(
            AnalyzeConfig::from_toml("[[allow]]\nlint = \"x\"").is_err(),
            "path required"
        );
    }

    #[test]
    fn baseline_emission_round_trips() {
        let f = Finding {
            lint: "panic-safety".into(),
            severity: Severity::Deny,
            path: "crates/x/src/a.rs".into(),
            line: 7,
            col: 2,
            message: String::new(),
            snippet: String::new(),
        };
        let toml = AnalyzeConfig::baseline_toml(std::slice::from_ref(&f));
        let cfg = AnalyzeConfig::from_toml(&toml).unwrap();
        assert_eq!(cfg.allow.len(), 1);
        assert!(cfg.allow[0].matches(&f));
        assert!(cfg.allow[0].justification.is_empty(), "human must fill it");
    }

    #[test]
    fn snippet_hash_normalizes_whitespace() {
        assert_eq!(
            snippet_hash("  x .unwrap( ) ; "),
            snippet_hash("x .unwrap( ) ;"),
            "leading/trailing whitespace is ignored"
        );
        assert_eq!(
            snippet_hash("let a\t=  b;"),
            snippet_hash("let a = b;"),
            "internal runs collapse to one space"
        );
        assert_ne!(snippet_hash("let a = b;"), snippet_hash("let a = c;"));
        assert_eq!(snippet_hash("x").len(), 16);
    }

    #[test]
    fn hash_keyed_entry_matches_fuzzily_by_content() {
        let f = |line: u32, snippet: &str| Finding {
            lint: "panic-safety".into(),
            severity: Severity::Deny,
            path: "crates/x/src/a.rs".into(),
            line,
            col: 1,
            message: String::new(),
            snippet: snippet.into(),
        };
        let e = AllowEntry {
            lint: "panic-safety".into(),
            path: "crates/x/src/a.rs".into(),
            line: Some(100),
            snippet_hash: Some(snippet_hash("cfg.build().expect(\"validated\");")),
            justification: "x".into(),
        };
        // Same content, shifted by < LINE_FUZZ: still suppressed.
        assert!(e.matches(&f(100, "cfg.build().expect(\"validated\");")));
        assert!(e.matches(&f(109, "  cfg.build().expect(\"validated\");")));
        assert!(e.matches(&f(91, "cfg.build().expect(\"validated\");")));
        // Outside the window, or different content: not suppressed.
        assert!(!e.matches(&f(111, "cfg.build().expect(\"validated\");")));
        assert!(!e.matches(&f(100, "other.unwrap();")));
        assert!(!e.is_deprecated_exact_line());
    }

    #[test]
    fn hash_without_anchor_matches_anywhere_in_file() {
        let e = AllowEntry {
            lint: "panic-safety".into(),
            path: "crates/x/src/a.rs".into(),
            line: None,
            snippet_hash: Some(snippet_hash("boom.unwrap();")),
            justification: "x".into(),
        };
        let f = Finding {
            lint: "panic-safety".into(),
            severity: Severity::Deny,
            path: "crates/x/src/a.rs".into(),
            line: 4242,
            col: 1,
            message: String::new(),
            snippet: "boom.unwrap();".into(),
        };
        assert!(e.matches(&f));
    }

    #[test]
    fn exact_line_without_hash_is_deprecated_but_still_matches() {
        let cfg = AnalyzeConfig::from_toml(
            "[[allow]]\nlint = \"x\"\npath = \"y\"\nline = 7\njustification = \"j\"",
        )
        .unwrap();
        assert!(cfg.allow[0].is_deprecated_exact_line());
        let with_hash = AnalyzeConfig::from_toml(
            "[[allow]]\nlint = \"x\"\npath = \"y\"\nline = 7\nsnippet_hash = \"0123456789abcDEF\"\njustification = \"j\"",
        )
        .unwrap();
        assert!(!with_hash.allow[0].is_deprecated_exact_line());
        assert_eq!(
            with_hash.allow[0].snippet_hash.as_deref(),
            Some("0123456789abcdef"),
            "hash is case-normalized"
        );
        assert!(AnalyzeConfig::from_toml(
            "[[allow]]\nlint = \"x\"\npath = \"y\"\nsnippet_hash = \"xyz\"\njustification = \"j\"",
        )
        .is_err());
    }

    #[test]
    fn baseline_emission_uses_the_hash_key() {
        let f = Finding {
            lint: "panic-safety".into(),
            severity: Severity::Deny,
            path: "crates/x/src/a.rs".into(),
            line: 7,
            col: 2,
            message: String::new(),
            snippet: "v.unwrap();".into(),
        };
        let toml = AnalyzeConfig::baseline_toml(std::slice::from_ref(&f));
        assert!(toml.contains(&format!(
            "snippet_hash = \"{}\"",
            snippet_hash("v.unwrap();")
        )));
        let cfg = AnalyzeConfig::from_toml(&toml).unwrap();
        assert!(!cfg.allow[0].is_deprecated_exact_line());
        assert!(cfg.allow[0].matches(&f));
    }

    #[test]
    fn comments_inside_strings_survive() {
        let cfg = AnalyzeConfig::from_toml(
            "[[allow]]\nlint = \"x\"\npath = \"y\"\njustification = \"uses # inside\"",
        )
        .unwrap();
        assert_eq!(cfg.allow[0].justification, "uses # inside");
    }
}
