//! Baseline exactness: the repo's own `analyze.toml` must match the
//! current scan exactly — no live deny findings, no stale entries, no
//! entry without a written justification. This is the same check `dck
//! lint` and the CI `analyze` job enforce, run here so `cargo test`
//! alone catches drift.

use dck_analyze::scan_with_config_file;
use std::path::Path;

#[test]
fn repo_scan_is_clean_against_checked_in_baseline() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/analyze sits two levels under the workspace root");
    assert!(
        root.join("analyze.toml").is_file(),
        "workspace baseline missing at {}",
        root.display()
    );
    let report = scan_with_config_file(root).unwrap();
    assert!(
        report.is_clean(),
        "workspace lint drifted from analyze.toml:\n{}",
        report.to_human()
    );
    assert_eq!(report.deny_count(), 0);
    assert!(report.stale_allows.is_empty(), "{:?}", report.stale_allows);
    assert!(
        report.unjustified_allows.is_empty(),
        "{:?}",
        report.unjustified_allows
    );
    // The repo baseline is fully migrated to the content-hash key; a
    // new entry added with bare `line = N` (no `snippet_hash`) would
    // silently rot as the file drifts, so it is rejected here.
    assert!(
        report.deprecated_allows.is_empty(),
        "analyze.toml entries still on the deprecated exact-line key \
         (add snippet_hash, see `dck lint baseline`): {:?}",
        report.deprecated_allows
    );
}
