//! The point of the content-hash baseline key: editing *elsewhere* in
//! a file must not invalidate its `[[allow]]` entries. An entry is
//! keyed by (path, lint, normalized snippet hash) with the `line` as a
//! fuzzy anchor (±[`dck_analyze::LINE_FUZZ`]), so a small shift keeps
//! matching while a large one goes honestly stale.

use dck_analyze::{scan, snippet_hash, AnalyzeConfig, LINE_FUZZ};
use std::path::PathBuf;

/// A throwaway workspace with one crate whose lib.rs carries one
/// deliberate `unwrap()` preceded by `pad` filler lines.
struct TempWs {
    root: PathBuf,
}

impl TempWs {
    fn new(name: &str, pad: usize) -> TempWs {
        let root = std::env::temp_dir().join(format!("dck-rekey-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let src = root.join("crates/x/src");
        std::fs::create_dir_all(&src).unwrap();
        let mut text = String::from("//! Temp fixture.\n#![forbid(unsafe_code)]\n");
        for i in 0..pad {
            text.push_str(&format!("/// Filler {i}.\npub fn filler_{i}() {{}}\n"));
        }
        text.push_str("/// The baselined violation.\npub fn boom(x: Option<u64>) -> u64 {\n    x.unwrap()\n}\n");
        std::fs::write(src.join("lib.rs"), text).unwrap();
        TempWs { root }
    }
}

impl Drop for TempWs {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

/// The entry as `dck lint baseline` would emit it for the unpadded
/// layout: hash of the offending line, anchored where it first lived.
fn entry(anchor_line: u32) -> AnalyzeConfig {
    AnalyzeConfig::from_toml(&format!(
        "[[allow]]\n\
         lint = \"panic-safety\"\n\
         path = \"crates/x/src/lib.rs\"\n\
         line = {anchor_line}\n\
         snippet_hash = \"{}\"\n\
         justification = \"temp fixture exercises the fuzzy key\"\n",
        snippet_hash("x.unwrap()")
    ))
    .unwrap()
}

#[test]
fn small_shifts_keep_the_baseline_entry_alive() {
    // Unpadded, the unwrap sits on line 5; each pad entry adds 2 lines.
    let anchor = 5;
    for pad in [0usize, 1, 4] {
        let ws = TempWs::new(&format!("small-{pad}"), pad);
        let shift = 2 * pad as u32;
        assert!(shift <= LINE_FUZZ, "test premise");
        let report = scan(&ws.root, &entry(anchor)).unwrap();
        assert!(
            report.is_clean(),
            "a {shift}-line shift must not re-key the entry:\n{}",
            report.to_human()
        );
        assert_eq!(report.suppressed, 1);
    }
}

#[test]
fn large_shifts_go_stale_instead_of_matching_blindly() {
    // 6 pad entries shift the line by 12 > LINE_FUZZ: the entry stops
    // matching, the finding comes back live, and the entry reports
    // stale — both sides of the drift are surfaced.
    let ws = TempWs::new("large", 6);
    let report = scan(&ws.root, &entry(5)).unwrap();
    assert!(!report.is_clean());
    assert_eq!(report.deny_count(), 1);
    assert_eq!(report.stale_allows.len(), 1);
}

#[test]
fn content_change_rekeys_even_on_the_same_line() {
    // Same line number, different content: the hash no longer matches,
    // so the entry cannot silently bless a new violation.
    let ws = TempWs::new("content", 0);
    let cfg = AnalyzeConfig::from_toml(&format!(
        "[[allow]]\n\
         lint = \"panic-safety\"\n\
         path = \"crates/x/src/lib.rs\"\n\
         line = 5\n\
         snippet_hash = \"{}\"\n\
         justification = \"hash of content that is not on line 5\"\n",
        snippet_hash("y.expect(\"other\")")
    ))
    .unwrap();
    let report = scan(&ws.root, &cfg).unwrap();
    assert_eq!(report.deny_count(), 1);
    assert_eq!(report.stale_allows.len(), 1);
}
