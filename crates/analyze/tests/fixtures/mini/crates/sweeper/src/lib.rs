//! Fixture sink crate: `run_sweep_mini` is a determinism sink by
//! naming convention, and it reaches `clock::stamp`'s `Instant` read
//! one crate away — the cross-crate taint case.

#![forbid(unsafe_code)]

/// A sweep engine whose accumulator quietly folds in wall-clock bits.
pub fn run_sweep_mini(cells: usize) -> u64 {
    let mut acc = 0u64;
    for i in 0..cells {
        acc = acc.wrapping_add(clock::stamp(i as u64));
    }
    acc
}
