//! Fixture helper crate: the nondeterministic *source* of the
//! cross-crate taint case. Nothing in this crate is a sink — the
//! violation only exists because `sweeper` calls into it.

#![forbid(unsafe_code)]

/// Reads the wall clock. Harmless on its own; poisonous once a sweep
/// engine depends on it.
pub fn stamp(tick: u64) -> u64 {
    let t = std::time::Instant::now();
    tick ^ (t.elapsed().as_nanos() as u64)
}
