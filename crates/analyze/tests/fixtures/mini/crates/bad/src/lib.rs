//! Fixture crate: one deliberate violation per applicable lint. The
//! golden tests pin the exact diagnostics this file produces, so keep
//! every line where it is.

use std::collections::HashMap;

mod util;

/// Takes the first element, the panicking way.
pub fn first(xs: &[u64]) -> u64 {
    let head = xs.first().copied().unwrap();
    head + xs[0]
}

/// Counts distinct keys through a hash-ordered map.
pub fn count(m: &HashMap<u64, u64>) -> usize {
    m.len()
}

#[cfg(test)]
mod tests {
    #[test]
    fn exempt_region_can_panic() {
        assert_eq!(super::first(&[7]), 14);
        let _ = Option::<u8>::None.is_none().then(|| ()).unwrap();
    }
}
