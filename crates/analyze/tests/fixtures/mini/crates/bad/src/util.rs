//! Module reached through `mod util;` — proves the walker follows
//! module declarations, not just compilation roots.

// TODO: handle NaN inputs
/// Exact float comparison, the wrong way.
pub fn is_zero(a: f64) -> bool {
    a == 0.0
}

/// Exact float inequality, equally wrong.
pub fn is_nonzero(a: f64) -> bool {
    a != 0.0
}

/// Exact-bit float assertion, wrong in macro clothing.
pub fn check_zero(a: f64) {
    assert_eq!(a, 0.0);
}

/// Bit-pattern assertion — the accepted spelling; carries no float
/// token, so the lint stays quiet.
pub fn check_zero_bits(a: f64) {
    assert_eq!(a.to_bits(), 0);
}
