//! Module reached through `mod util;` — proves the walker follows
//! module declarations, not just compilation roots.

// TODO: handle NaN inputs
/// Exact float comparison, the wrong way.
pub fn is_zero(a: f64) -> bool {
    a == 0.0
}
