//! Test-context file: panicking assertions here are idiomatic and must
//! produce no findings.

#[test]
fn unwrap_in_tests_is_fine() {
    let xs = [1u64, 2, 3];
    assert_eq!(*xs.first().unwrap(), 1);
}
