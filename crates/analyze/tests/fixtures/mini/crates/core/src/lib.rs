#![forbid(unsafe_code)]
//! Fixture model crate: the `sentinel-value` lint applies only under
//! `crates/core/`, so the sentinel lives here.

/// Returns the waste of an infeasible period the sentinel way.
pub fn infeasible_waste() -> f64 {
    f64::INFINITY
}
