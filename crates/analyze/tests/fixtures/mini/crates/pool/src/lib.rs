//! Fixture panic-reachability cases: a panicking helper reached from a
//! bare `thread::spawn` (escaping), and a second helper reached only
//! from a pool work unit and a `catch_unwind`-wrapped spawn (both
//! contained). Two sites, because reachability reports the *strongest*
//! verdict per site — a shared site would collapse to escaping.

#![forbid(unsafe_code)]

/// Panics on zero; reached only from the unguarded spawn.
pub fn fragile(x: u64) -> u64 {
    x.checked_sub(1).unwrap()
}

/// Panics on zero; reached only from contained roots. The body is
/// spelled differently from `fragile` on purpose: identical snippets
/// within the fuzzy-match window would share a baseline key.
pub fn fragile_pooled(x: u64) -> u64 {
    x.checked_sub(1).expect("fixture underflow")
}

/// Work units are contained by construction: the pool wraps each one
/// in `catch_unwind`.
pub fn pooled(xs: &[u64]) -> u64 {
    parallel_map_indexed(xs.len(), |i| fragile_pooled(xs[i]))
}

/// A bare spawn: a panic here tears the thread down.
pub fn spawned() -> std::thread::JoinHandle<u64> {
    std::thread::spawn(|| fragile(0))
}

/// A spawn that guards its body: the panic is contained.
pub fn spawned_guarded() -> std::thread::JoinHandle<u64> {
    std::thread::spawn(|| std::panic::catch_unwind(|| fragile_pooled(0)).unwrap_or(0))
}

/// Stand-in for the simcore pool entry point; only the *name* matters
/// to the analyzer's closure-root scan.
pub fn parallel_map_indexed(n: usize, f: impl Fn(usize) -> u64) -> u64 {
    (0..n).map(f).sum()
}
