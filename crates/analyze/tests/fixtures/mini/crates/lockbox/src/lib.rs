//! Fixture lock-discipline cases: a cache lookup that computes a sweep
//! cell while the cache's MutexGuard is still live (the bad shape
//! PR-7 removed from serve), next to the accepted probe/compute/insert
//! shape.

#![forbid(unsafe_code)]

use std::sync::Mutex;

/// A one-slot cache in front of the fixture sweep engine.
pub struct Cache {
    /// The last computed cell value.
    pub last: u64,
}

/// BAD: the guard is bound for the whole block, so the sweep runs
/// while every other caller is blocked on the lock.
pub fn lookup_holding_lock(cache: &Mutex<Cache>, cells: usize) -> u64 {
    let mut g = cache.lock().unwrap();
    g.last = sweeper::run_sweep_mini(cells);
    g.last
}

/// GOOD: probe under the lock, compute outside it, re-lock to insert.
pub fn lookup_probe_then_compute(cache: &Mutex<Cache>, cells: usize) -> u64 {
    let hit = cache.lock().ok().map(|g| g.last);
    match hit {
        Some(v) if v != 0 => v,
        _ => {
            let v = sweeper::run_sweep_mini(cells);
            if let Ok(mut g) = cache.lock() {
                g.last = v;
            }
            v
        }
    }
}
