//! Fixture-driven golden tests for the full scan pipeline: workspace
//! walking, every lint, config severity overrides, and the justified
//! baseline — pinned against checked-in golden renderings.
//!
//! Regenerate the goldens with `UPDATE_GOLDEN=1 cargo test -p
//! dck-analyze --test fixture_scan` after an intentional change, and
//! review the diff like any other code change.

use dck_analyze::{scan, AnalyzeConfig, Severity};
use std::path::{Path, PathBuf};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/mini")
}

fn golden_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); run with UPDATE_GOLDEN=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "golden {name} drifted; rerun with UPDATE_GOLDEN=1 and review the diff"
    );
}

#[test]
fn human_rendering_matches_golden() {
    let report = scan(&fixture_root(), &AnalyzeConfig::default()).unwrap();
    check_golden("mini.human.txt", &report.to_human());
}

#[test]
fn json_rendering_matches_golden() {
    let report = scan(&fixture_root(), &AnalyzeConfig::default()).unwrap();
    check_golden("mini.json", &report.to_json().unwrap());
}

#[test]
fn sarif_rendering_matches_golden() {
    let report = scan(&fixture_root(), &AnalyzeConfig::default()).unwrap();
    let rendered = dck_analyze::sarif::render(&report).unwrap();
    // Structural sanity before the byte-level pin: the document parses
    // back, carries the right version, and has one result per finding.
    let v: serde_json::Value = serde_json::from_str(&rendered).unwrap();
    assert_eq!(v["version"].as_str(), Some("2.1.0"));
    assert_eq!(
        v["runs"][0]["results"].as_array().unwrap().len(),
        report.findings.len()
    );
    check_golden("mini.sarif.json", &rendered);
}

#[test]
fn fixture_violation_inventory() {
    let report = scan(&fixture_root(), &AnalyzeConfig::default()).unwrap();
    assert_eq!(
        report.files_scanned, 8,
        "bad (lib, util, integration test), core, clock, sweeper, pool, lockbox"
    );
    assert!(
        report.unresolved_mods.is_empty(),
        "{:?}",
        report.unresolved_mods
    );
    assert!(!report.is_clean());

    let by_lint = |lint: &str| {
        report
            .findings
            .iter()
            .filter(|f| f.lint == lint)
            .collect::<Vec<_>>()
    };
    // `use HashMap` + the `count` signature, `Instant` in clock, and
    // the two raw `thread::spawn`s in pool.
    assert_eq!(by_lint("nondeterminism").len(), 5);
    // bad's `unwrap()` (the `#[cfg(test)]` module's is exempt), both
    // pool helpers, and lockbox's `.lock().unwrap()`.
    assert_eq!(by_lint("panic-safety").len(), 4);
    assert_eq!(by_lint("slice-index").len(), 2);
    // `==`, `!=`, and `assert_eq!` with float operands; the
    // `to_bits()` assertion stays clean.
    assert_eq!(by_lint("float-eq").len(), 3);
    assert_eq!(by_lint("sentinel-value").len(), 1);
    // `bad` lacks the attribute; every other crate carries it.
    let fu = by_lint("forbid-unsafe");
    assert_eq!(fu.len(), 1);
    assert!(fu[0].path.ends_with("bad/src/lib.rs"));
    assert_eq!(by_lint("todo-markers").len(), 1);
    // Nothing leaked out of the test-context file.
    assert!(report
        .findings
        .iter()
        .all(|f| !f.path.contains("tests/integration.rs")));
}

#[test]
fn cross_crate_taint_reports_the_full_call_path() {
    let report = scan(&fixture_root(), &AnalyzeConfig::default()).unwrap();
    let taint: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.lint == "determinism-taint")
        .collect();
    assert_eq!(taint.len(), 1, "{taint:?}");
    let f = taint[0];
    assert_eq!(f.severity, Severity::Deny);
    // The source is anchored in the crate that *reads* the clock…
    assert!(f.path.ends_with("clock/src/lib.rs"));
    // …and the message walks the chain from the sink crate into it.
    assert!(
        f.message
            .contains("call path: sweeper::run_sweep_mini -> clock::stamp"),
        "{}",
        f.message
    );
}

#[test]
fn panic_reachability_separates_contained_from_escaping() {
    let report = scan(&fixture_root(), &AnalyzeConfig::default()).unwrap();
    let reach: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.lint == "panic-reachability")
        .collect();
    assert_eq!(reach.len(), 2, "{reach:?}");
    let escaping = reach.iter().find(|f| f.severity == Severity::Deny).unwrap();
    assert!(escaping.message.contains("pool::spawned"));
    assert!(escaping.message.contains("no catch_unwind on the path"));
    let contained = reach.iter().find(|f| f.severity == Severity::Warn).unwrap();
    assert!(contained.message.contains("contained by catch_unwind"));
}

#[test]
fn lock_discipline_flags_compute_under_guard_only() {
    let report = scan(&fixture_root(), &AnalyzeConfig::default()).unwrap();
    let lock: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.lint == "lock-discipline")
        .collect();
    // The probe/compute/insert shape next door stays clean.
    assert_eq!(lock.len(), 1, "{lock:?}");
    assert!(lock[0].path.ends_with("lockbox/src/lib.rs"));
    assert!(lock[0].message.contains("sweeper::run_sweep_mini"));
}

#[test]
fn severity_overrides_apply() {
    let cfg = AnalyzeConfig::from_toml(
        "[severity]\nslice-index = \"deny\"\nnondeterminism = \"allow\"\n",
    )
    .unwrap();
    let report = scan(&fixture_root(), &cfg).unwrap();
    assert!(report.findings.iter().all(|f| f.lint != "nondeterminism"));
    let idx = report
        .findings
        .iter()
        .find(|f| f.lint == "slice-index")
        .unwrap();
    assert_eq!(idx.severity, Severity::Deny);
}

#[test]
fn justified_baseline_suppresses_and_polices_itself() {
    let base = "[[allow]]\nlint = \"panic-safety\"\npath = \"crates/bad/src/lib.rs\"\n";
    // A justified entry suppresses its finding.
    let cfg =
        AnalyzeConfig::from_toml(&format!("{base}justification = \"fixture exercises it\"\n"))
            .unwrap();
    let report = scan(&fixture_root(), &cfg).unwrap();
    assert_eq!(report.suppressed, 1);
    // Only the entry's own file is suppressed; the other crates'
    // panic-safety findings survive.
    assert!(report
        .findings
        .iter()
        .all(|f| !(f.lint == "panic-safety" && f.path.contains("bad/"))));
    assert!(report.stale_allows.is_empty());
    assert!(report.unjustified_allows.is_empty());

    // The same entry without a justification fails the scan.
    let cfg = AnalyzeConfig::from_toml(base).unwrap();
    let report = scan(&fixture_root(), &cfg).unwrap();
    assert_eq!(report.unjustified_allows.len(), 1);
    assert!(!report.is_clean());

    // An entry matching nothing is stale and fails the scan.
    let cfg = AnalyzeConfig::from_toml(
        "[[allow]]\nlint = \"panic-safety\"\npath = \"crates/gone/src/lib.rs\"\njustification = \"was fixed\"\n",
    )
    .unwrap();
    let report = scan(&fixture_root(), &cfg).unwrap();
    assert_eq!(report.stale_allows.len(), 1);
    assert!(!report.is_clean());
}

#[test]
fn emitted_baseline_covers_every_deny() {
    let report = scan(&fixture_root(), &AnalyzeConfig::default()).unwrap();
    let denies: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.severity == Severity::Deny)
        .cloned()
        .collect();
    assert!(!denies.is_empty());
    let toml = AnalyzeConfig::baseline_toml(&denies);
    // Emitted entries have empty justifications; fill them in.
    let toml = toml.replace("justification = \"\"", "justification = \"fixture\"");
    let cfg = AnalyzeConfig::from_toml(&toml).unwrap();
    let report = scan(&fixture_root(), &cfg).unwrap();
    assert_eq!(report.deny_count(), 0);
    assert!(report.stale_allows.is_empty());
    assert!(report.is_clean());
    assert_eq!(report.suppressed, denies.len());
}
