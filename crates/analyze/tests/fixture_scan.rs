//! Fixture-driven golden tests for the full scan pipeline: workspace
//! walking, every lint, config severity overrides, and the justified
//! baseline — pinned against checked-in golden renderings.
//!
//! Regenerate the goldens with `UPDATE_GOLDEN=1 cargo test -p
//! dck-analyze --test fixture_scan` after an intentional change, and
//! review the diff like any other code change.

use dck_analyze::{scan, AnalyzeConfig, Severity};
use std::path::{Path, PathBuf};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/mini")
}

fn golden_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); run with UPDATE_GOLDEN=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "golden {name} drifted; rerun with UPDATE_GOLDEN=1 and review the diff"
    );
}

#[test]
fn human_rendering_matches_golden() {
    let report = scan(&fixture_root(), &AnalyzeConfig::default()).unwrap();
    check_golden("mini.human.txt", &report.to_human());
}

#[test]
fn json_rendering_matches_golden() {
    let report = scan(&fixture_root(), &AnalyzeConfig::default()).unwrap();
    check_golden("mini.json", &report.to_json().unwrap());
}

#[test]
fn fixture_violation_inventory() {
    let report = scan(&fixture_root(), &AnalyzeConfig::default()).unwrap();
    assert_eq!(report.files_scanned, 4, "lib, util, integration test, core");
    assert!(
        report.unresolved_mods.is_empty(),
        "{:?}",
        report.unresolved_mods
    );
    assert!(!report.is_clean());

    let by_lint = |lint: &str| {
        report
            .findings
            .iter()
            .filter(|f| f.lint == lint)
            .collect::<Vec<_>>()
    };
    // `use HashMap` + the `count` signature.
    assert_eq!(by_lint("nondeterminism").len(), 2);
    // The live `unwrap()`; the `#[cfg(test)]` module's is exempt.
    assert_eq!(by_lint("panic-safety").len(), 1);
    assert_eq!(by_lint("slice-index").len(), 1);
    assert_eq!(by_lint("float-eq").len(), 1);
    assert_eq!(by_lint("sentinel-value").len(), 1);
    // `bad` lacks the attribute; `core` carries it.
    let fu = by_lint("forbid-unsafe");
    assert_eq!(fu.len(), 1);
    assert!(fu[0].path.ends_with("bad/src/lib.rs"));
    assert_eq!(by_lint("todo-markers").len(), 1);
    // Nothing leaked out of the test-context file.
    assert!(report
        .findings
        .iter()
        .all(|f| !f.path.contains("tests/integration.rs")));
}

#[test]
fn severity_overrides_apply() {
    let cfg = AnalyzeConfig::from_toml(
        "[severity]\nslice-index = \"deny\"\nnondeterminism = \"allow\"\n",
    )
    .unwrap();
    let report = scan(&fixture_root(), &cfg).unwrap();
    assert!(report.findings.iter().all(|f| f.lint != "nondeterminism"));
    let idx = report
        .findings
        .iter()
        .find(|f| f.lint == "slice-index")
        .unwrap();
    assert_eq!(idx.severity, Severity::Deny);
}

#[test]
fn justified_baseline_suppresses_and_polices_itself() {
    let base = "[[allow]]\nlint = \"panic-safety\"\npath = \"crates/bad/src/lib.rs\"\n";
    // A justified entry suppresses its finding.
    let cfg =
        AnalyzeConfig::from_toml(&format!("{base}justification = \"fixture exercises it\"\n"))
            .unwrap();
    let report = scan(&fixture_root(), &cfg).unwrap();
    assert_eq!(report.suppressed, 1);
    assert!(report.findings.iter().all(|f| f.lint != "panic-safety"));
    assert!(report.stale_allows.is_empty());
    assert!(report.unjustified_allows.is_empty());

    // The same entry without a justification fails the scan.
    let cfg = AnalyzeConfig::from_toml(base).unwrap();
    let report = scan(&fixture_root(), &cfg).unwrap();
    assert_eq!(report.unjustified_allows.len(), 1);
    assert!(!report.is_clean());

    // An entry matching nothing is stale and fails the scan.
    let cfg = AnalyzeConfig::from_toml(
        "[[allow]]\nlint = \"panic-safety\"\npath = \"crates/gone/src/lib.rs\"\njustification = \"was fixed\"\n",
    )
    .unwrap();
    let report = scan(&fixture_root(), &cfg).unwrap();
    assert_eq!(report.stale_allows.len(), 1);
    assert!(!report.is_clean());
}

#[test]
fn emitted_baseline_covers_every_deny() {
    let report = scan(&fixture_root(), &AnalyzeConfig::default()).unwrap();
    let denies: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.severity == Severity::Deny)
        .cloned()
        .collect();
    assert!(!denies.is_empty());
    let toml = AnalyzeConfig::baseline_toml(&denies);
    // Emitted entries have empty justifications; fill them in.
    let toml = toml.replace("justification = \"\"", "justification = \"fixture\"");
    let cfg = AnalyzeConfig::from_toml(&toml).unwrap();
    let report = scan(&fixture_root(), &cfg).unwrap();
    assert_eq!(report.deny_count(), 0);
    assert!(report.stale_allows.is_empty());
    assert!(report.is_clean());
    assert_eq!(report.suppressed, denies.len());
}
