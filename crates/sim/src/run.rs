//! Single-run protocol simulation.
//!
//! The simulator advances in O(1) per failure event: between failures
//! the platform follows the deterministic period schedule, so nothing
//! needs to happen per period. State is three scalars — wall-clock
//! time `t`, schedule position `v` (seconds of schedule successfully
//! executed; work is `schedule.work_at(v)`), and an optional in-flight
//! outage `(end, off)`.
//!
//! Failure handling: a failure at schedule offset `off` freezes `v` and
//! opens an outage of `D + blocking + RE(off)` (§III/§V case analysis).
//! A failure during an outage rolls the platform back again: the outage
//! restarts in full from the same schedule position — the recovery and
//! partially re-executed work are lost, exactly as they would be on a
//! real machine where no new checkpoint exists until the schedule
//! resumes. Every failure also opens a fixed-length risk window for the
//! victim's group; a failure that closes the last redundant copy of a
//! group (buddy within an open window / all three triple members) is
//! **fatal** and ends the run.

use crate::config::RunConfig;
use dck_core::ModelError;
use dck_failures::FailureSource;
use serde::{Deserialize, Serialize};

/// Why a run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StopReason {
    /// The configured amount of useful work was completed.
    WorkComplete,
    /// The exploitation horizon was reached (risk-mode runs).
    HorizonReached,
    /// A fatal failure destroyed a group's checkpoint data.
    Fatal,
    /// The failure-count safety cap was hit before completion.
    FailureCapReached,
    /// The schedule delivers no work at all (`W ≤ 0`): the operating
    /// point cannot make progress regardless of failures.
    NoProgress,
}

/// The measured outcome of one simulated run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunOutcome {
    /// Why the run stopped.
    pub reason: StopReason,
    /// Wall-clock duration of the run (seconds).
    pub total_time: f64,
    /// Useful work completed (work units = seconds at unit speed).
    pub useful_work: f64,
    /// Failures processed.
    pub failures: u64,
    /// Wall-clock time spent in outages (downtime + blocking +
    /// re-execution).
    pub outage_time: f64,
    /// Time of the fatal failure, if one occurred.
    pub fatal_at: Option<f64>,
}

impl RunOutcome {
    /// Empirical waste: the fraction of wall-clock time not converted
    /// into useful work (0 for an empty run).
    ///
    /// `useful_work > total_time` is impossible for a real run (work
    /// accrues at unit speed); an outcome in that state is corrupted
    /// upstream. Clamping silently would launder it into a legal-looking
    /// waste of 0, so this records the always-on defect counter
    /// `run.waste_clamped` and debug-panics before clamping. A small
    /// negative tolerance absorbs float rounding at run boundaries.
    pub fn waste(&self) -> f64 {
        if self.total_time <= 0.0 {
            return 0.0;
        }
        let raw = 1.0 - self.useful_work / self.total_time;
        if raw < -1e-9 {
            // Count before asserting so release builds still record the
            // defect that debug builds would panic on.
            dck_obs::incr("run.waste_clamped");
            debug_assert!(
                false,
                "corrupt RunOutcome: useful_work {} exceeds total_time {} (raw waste {raw})",
                self.useful_work, self.total_time
            );
        }
        raw.clamp(0.0, 1.0)
    }

    /// True if the run saw no fatal failure.
    pub fn survived(&self) -> bool {
        self.fatal_at.is_none()
    }
}

/// When a run stops: after a fixed amount of useful work (waste mode)
/// or at a wall-clock horizon (risk mode). Crate-internal; the public
/// entry points pick the variant.
pub(crate) enum Stop {
    Work(f64),
    Horizon(f64),
}

/// One event in a simulated run's timeline (see
/// [`run_to_completion_traced`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TimelineEvent {
    /// A failure struck.
    Failure {
        /// Wall-clock time.
        at: f64,
        /// Victim node.
        node: u64,
        /// Offset into the checkpoint period at which it struck.
        offset: f64,
        /// Planned outage (downtime + blocking + re-execution).
        outage: f64,
        /// Whether this failure was fatal.
        fatal: bool,
        /// Whether it struck during an already-running outage
        /// (restarting it).
        during_outage: bool,
    },
    /// An outage completed and the schedule resumed.
    OutageEnd {
        /// Wall-clock time.
        at: f64,
    },
    /// The adaptive controller committed a new period, applied at a
    /// period boundary (see `dck-sim`'s adaptive executor). Never
    /// emitted by the static machine.
    Retune {
        /// Wall-clock time at which the new schedule took effect.
        at: f64,
        /// Period before the retune (seconds).
        old_period: f64,
        /// Period after the retune (seconds).
        new_period: f64,
        /// The MTBF estimate that drove the decision (seconds).
        mtbf_estimate: f64,
    },
    /// The run ended. Emitted on **every** stop path — a traced
    /// timeline always carries exactly one terminal `Finished` event,
    /// whose `reason` equals [`RunOutcome::reason`].
    Finished {
        /// Wall-clock time.
        at: f64,
        /// Why it ended.
        reason: StopReason,
    },
}

/// Runs until `t_base` units of useful work are complete (waste
/// measurement mode).
///
/// # Errors
/// Propagates configuration errors, and fails when the failure
/// `source` does not cover exactly [`RunConfig::usable_nodes`] nodes.
pub fn run_to_completion(
    cfg: &RunConfig,
    t_base: f64,
    source: &mut dyn FailureSource,
) -> Result<RunOutcome, ModelError> {
    drive(cfg, Stop::Work(t_base), source).map(|(out, _)| out)
}

/// Like [`run_to_completion`], but also returns the failure event the
/// simulator had drawn from the source without handling (its timestamp
/// lies beyond the run's end). Drivers that continue the same failure
/// stream across multiple runs (e.g. the hierarchical wrapper) must
/// re-inject it, or the stream would be thinned at every boundary.
///
/// # Errors
/// Propagates configuration errors.
pub fn run_to_completion_with_pending(
    cfg: &RunConfig,
    t_base: f64,
    source: &mut dyn FailureSource,
) -> Result<(RunOutcome, Option<dck_failures::FailureEvent>), ModelError> {
    drive(cfg, Stop::Work(t_base), source)
}

/// Runs for a fixed exploitation horizon (risk measurement mode): the
/// application streams work indefinitely; the question is whether a
/// fatal failure strikes before `horizon`.
///
/// # Errors
/// Propagates configuration errors.
pub fn run_until(
    cfg: &RunConfig,
    horizon: f64,
    source: &mut dyn FailureSource,
) -> Result<RunOutcome, ModelError> {
    drive(cfg, Stop::Horizon(horizon), source).map(|(out, _)| out)
}

/// Like [`run_to_completion`], but records every failure, outage end
/// and completion into a timeline — the observability surface for
/// debugging protocol behaviour and for visualization tooling.
///
/// # Errors
/// Propagates configuration errors.
pub fn run_to_completion_traced(
    cfg: &RunConfig,
    t_base: f64,
    source: &mut dyn FailureSource,
) -> Result<(RunOutcome, Vec<TimelineEvent>), ModelError> {
    let mut sink = dck_obs::VecSink::new();
    let out = run_to_completion_sinked(cfg, t_base, source, &mut sink)?;
    Ok((out, sink.into_events()))
}

/// Like [`run_to_completion`], but streams every [`TimelineEvent`] into
/// an [`EventSink`](dck_obs::EventSink) as it happens — no intermediate
/// `Vec`, so a long run can trace straight to a JSONL file. The sink is
/// flushed before returning.
///
/// # Errors
/// Propagates configuration errors.
pub fn run_to_completion_sinked(
    cfg: &RunConfig,
    t_base: f64,
    source: &mut dyn FailureSource,
    sink: &mut dyn dck_obs::EventSink<TimelineEvent>,
) -> Result<RunOutcome, ModelError> {
    let (out, _) = RunMachine::new(cfg)?.drive(Stop::Work(t_base), source, |e| sink.emit(&e))?;
    sink.flush();
    Ok(out)
}

/// Like [`run_until`], but records the full timeline (see
/// [`run_to_completion_traced`]).
///
/// # Errors
/// Propagates configuration errors.
pub fn run_until_traced(
    cfg: &RunConfig,
    horizon: f64,
    source: &mut dyn FailureSource,
) -> Result<(RunOutcome, Vec<TimelineEvent>), ModelError> {
    let mut sink = dck_obs::VecSink::new();
    let out = run_until_sinked(cfg, horizon, source, &mut sink)?;
    Ok((out, sink.into_events()))
}

/// Like [`run_until`], but streams every [`TimelineEvent`] into an
/// [`EventSink`](dck_obs::EventSink) as it happens. The sink is flushed
/// before returning.
///
/// # Errors
/// Propagates configuration errors.
pub fn run_until_sinked(
    cfg: &RunConfig,
    horizon: f64,
    source: &mut dyn FailureSource,
    sink: &mut dyn dck_obs::EventSink<TimelineEvent>,
) -> Result<RunOutcome, ModelError> {
    let (out, _) =
        RunMachine::new(cfg)?.drive(Stop::Horizon(horizon), source, |e| sink.emit(&e))?;
    sink.flush();
    Ok(out)
}

type DriveResult = Result<(RunOutcome, Option<dck_failures::FailureEvent>), ModelError>;

fn drive(cfg: &RunConfig, stop: Stop, source: &mut dyn FailureSource) -> DriveResult {
    RunMachine::new(cfg)?.drive(stop, source, |_| {})
}

/// Reusable simulation machinery for one run configuration.
///
/// Building a [`RunConfig`] resolves the checkpoint period (possibly
/// solving for the optimal one), derives the failure response and
/// allocates a risk tracker — work identical for every replication of
/// a Monte-Carlo estimate. `RunMachine` performs it once and drives
/// many runs against the same machinery: [`RunMachine::drive`] resets
/// the risk tracker on entry and is generic over the failure source,
/// so the Monte-Carlo fast path is monomorphized over the concrete
/// source type (no per-event dyn dispatch) while the public single-run
/// entry points keep their `&mut dyn FailureSource` signatures.
pub(crate) struct RunMachine {
    sched: dck_protocols::PeriodSchedule,
    resp: dck_protocols::FailureResponse,
    tracker: dck_protocols::RiskTracker,
    usable: u64,
    max_failures: u64,
}

impl RunMachine {
    /// Builds the machinery for `cfg`, resolving the period once.
    ///
    /// # Errors
    /// Propagates configuration errors.
    pub(crate) fn new(cfg: &RunConfig) -> Result<Self, ModelError> {
        let (sched, resp, tracker) = cfg.build()?;
        Ok(RunMachine {
            sched,
            resp,
            tracker,
            usable: cfg.usable_nodes(),
            max_failures: cfg.max_failures,
        })
    }

    /// Drives one run to its stop condition. Every return path emits a
    /// terminal [`TimelineEvent::Finished`] before building the
    /// outcome, so traced timelines are never missing their end marker.
    ///
    /// # Errors
    /// Fails when the failure source does not cover exactly the
    /// configuration's usable nodes.
    pub(crate) fn drive<S, O>(&mut self, stop: Stop, source: &mut S, mut observe: O) -> DriveResult
    where
        S: FailureSource + ?Sized,
        O: FnMut(TimelineEvent),
    {
        if source.nodes() != self.usable {
            return Err(ModelError::invalid(
                "failure_source",
                format!(
                    "failure source covers {} nodes but the configuration simulates {} usable nodes",
                    source.nodes(),
                    self.usable
                ),
            ));
        }
        self.tracker.reset();
        let sched = &self.sched;
        let resp = &self.resp;
        let tracker = &mut self.tracker;

        if sched.work_per_period() <= 0.0 {
            // The operating point makes no progress: zero work ever
            // completes, so waste() = 1 by convention. In work mode the
            // requested work is unreachable and total_time is +∞; the
            // terminal event is stamped at 0.0 because no wall-clock
            // usefully elapsed and JSON cannot carry an infinite
            // timestamp. In horizon mode the platform idles out the
            // horizon, so both stamps are the horizon itself.
            let (total_time, finished_at) = match stop {
                Stop::Work(_) => (f64::INFINITY, 0.0),
                Stop::Horizon(h) => (h, h),
            };
            observe(TimelineEvent::Finished {
                at: finished_at,
                reason: StopReason::NoProgress,
            });
            return Ok((
                RunOutcome {
                    reason: StopReason::NoProgress,
                    total_time,
                    useful_work: 0.0,
                    failures: 0,
                    outage_time: 0.0,
                    fatal_at: None,
                },
                None,
            ));
        }

        let v_end = match stop {
            Stop::Work(w) => Some(sched.time_to_reach_work(w)),
            Stop::Horizon(_) => None,
        };
        let horizon = match stop {
            Stop::Work(_) => f64::INFINITY,
            Stop::Horizon(h) => h,
        };

        let mut t = 0.0_f64; // wall clock
        let mut v = 0.0_f64; // schedule position (frozen during outages)
        let mut outage: Option<(f64, f64)> = None; // (end time, period offset)
        let mut failures = 0u64;
        let mut outage_time = 0.0_f64;
        let mut next = source.next_failure();

        let finish = |reason, t: f64, v: f64, failures, outage_time, fatal_at| RunOutcome {
            reason,
            total_time: t,
            useful_work: sched.work_at(v),
            failures,
            outage_time,
            fatal_at,
        };

        loop {
            let next_at = next.at.as_secs();
            let in_outage_at_event = outage.is_some();
            match outage {
                None => {
                    // Completion by work?
                    if let Some(ve) = v_end {
                        let t_complete = t + (ve - v);
                        if next_at >= t_complete && t_complete <= horizon {
                            observe(TimelineEvent::Finished {
                                at: t_complete,
                                reason: StopReason::WorkComplete,
                            });
                            return Ok((
                                finish(
                                    StopReason::WorkComplete,
                                    t_complete,
                                    ve,
                                    failures,
                                    outage_time,
                                    None,
                                ),
                                Some(next),
                            ));
                        }
                    }
                    // Completion by horizon?
                    if next_at >= horizon {
                        let dv = horizon - t;
                        observe(TimelineEvent::Finished {
                            at: horizon,
                            reason: StopReason::HorizonReached,
                        });
                        return Ok((
                            finish(
                                StopReason::HorizonReached,
                                horizon,
                                v + dv,
                                failures,
                                outage_time,
                                None,
                            ),
                            Some(next),
                        ));
                    }
                    // A failure strikes while the schedule is running.
                    v += next_at - t;
                    t = next_at;
                }
                Some((end, _)) => {
                    if next_at >= end && end <= horizon {
                        // Outage completes; schedule resumes.
                        observe(TimelineEvent::OutageEnd { at: end });
                        t = end;
                        outage = None;
                        continue;
                    }
                    if next_at >= horizon {
                        // Horizon falls inside the outage.
                        observe(TimelineEvent::Finished {
                            at: horizon,
                            reason: StopReason::HorizonReached,
                        });
                        return Ok((
                            finish(
                                StopReason::HorizonReached,
                                horizon,
                                v,
                                failures,
                                outage_time,
                                None,
                            ),
                            Some(next),
                        ));
                    }
                    // A failure strikes during the outage: the platform
                    // rolls back again. The remaining planned outage is
                    // discarded (its elapsed part already counted via t)
                    // and `outage` is re-armed below with the new recovery.
                    outage_time -= end - next_at; // un-count the unspent tail
                    t = next_at;
                }
            }

            failures += 1;
            let outcome = tracker.record_failure(next.node, t);
            let off = v % sched.period();
            let o = resp.outage(off);
            observe(TimelineEvent::Failure {
                at: t,
                node: next.node,
                offset: off,
                outage: o.total(),
                fatal: outcome.fatal,
                during_outage: in_outage_at_event,
            });
            if outcome.fatal {
                observe(TimelineEvent::Finished {
                    at: t,
                    reason: StopReason::Fatal,
                });
                return Ok((
                    finish(StopReason::Fatal, t, v, failures, outage_time, Some(t)),
                    None,
                ));
            }
            outage = Some((t + o.total(), off));
            outage_time += o.total();

            if failures >= self.max_failures {
                observe(TimelineEvent::Finished {
                    at: t,
                    reason: StopReason::FailureCapReached,
                });
                return Ok((
                    finish(
                        StopReason::FailureCapReached,
                        t,
                        v,
                        failures,
                        outage_time,
                        None,
                    ),
                    None,
                ));
            }
            next = source.next_failure();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PeriodChoice;
    use dck_core::{PlatformParams, Protocol};
    use dck_failures::{FailureEvent, FailureTrace};
    use dck_simcore::SimTime;

    fn base_params(nodes: u64) -> PlatformParams {
        PlatformParams::new(0.0, 2.0, 4.0, 10.0, nodes).unwrap()
    }

    fn cfg(protocol: Protocol, nodes: u64, phi: f64, period: f64) -> RunConfig {
        let mut c = RunConfig::new(protocol, base_params(nodes), phi, 7.0 * 3600.0);
        c.period = PeriodChoice::Explicit(period);
        c
    }

    fn trace(nodes: u64, events: &[(f64, u64)]) -> FailureTrace {
        FailureTrace::new(
            nodes,
            events
                .iter()
                .map(|&(at, node)| FailureEvent {
                    at: SimTime::seconds(at),
                    node,
                })
                .collect(),
        )
    }

    #[test]
    fn failure_free_run_is_exact() {
        // φ=1 ⇒ θ=34, P=100, W=97. t_base = 970 ⇒ exactly 10 periods.
        let c = cfg(Protocol::DoubleNbl, 8, 1.0, 100.0);
        let empty = trace(8, &[]);
        let out = run_to_completion(&c, 970.0, &mut empty.replay()).unwrap();
        assert_eq!(out.reason, StopReason::WorkComplete);
        assert!((out.total_time - 1000.0).abs() < 1e-9);
        assert!((out.useful_work - 970.0).abs() < 1e-9);
        assert_eq!(out.failures, 0);
        // Waste = fault-free waste = (δ+φ)/P = 3%.
        assert!((out.waste() - 0.03).abs() < 1e-12);
    }

    #[test]
    fn single_failure_costs_exactly_the_outage() {
        // Failure at t = 250 (schedule position 250, offset 50 into the
        // 3rd period — compute phase). Outage = D+R + RE(50) with
        // RE(off≥δ+θ) = off−δ = 48 ⇒ outage = 4 + 48 = 52.
        let c = cfg(Protocol::DoubleNbl, 8, 1.0, 100.0);
        let tr = trace(8, &[(250.0, 3)]);
        let out = run_to_completion(&c, 970.0, &mut tr.replay()).unwrap();
        assert_eq!(out.failures, 1);
        assert!((out.outage_time - 52.0).abs() < 1e-9);
        assert!((out.total_time - 1052.0).abs() < 1e-9);
        assert_eq!(out.reason, StopReason::WorkComplete);
    }

    #[test]
    fn failure_during_outage_restarts_it() {
        // First failure at 250 opens outage until 302; second failure at
        // 300 (same offset) restarts: new end 300 + 52 = 352.
        let c = cfg(Protocol::DoubleNbl, 8, 1.0, 100.0);
        // Use distant nodes so nothing is fatal (groups (0,1),(2,3),…).
        let tr = trace(8, &[(250.0, 0), (300.0, 2)]);
        let out = run_to_completion(&c, 970.0, &mut tr.replay()).unwrap();
        assert_eq!(out.failures, 2);
        // Outage time = (300−250 spent) + 52 = 102; completion at
        // 352 + (1000 − 250) remaining schedule = 1102.
        assert!(
            (out.outage_time - 102.0).abs() < 1e-9,
            "{}",
            out.outage_time
        );
        assert!((out.total_time - 1102.0).abs() < 1e-9, "{}", out.total_time);
    }

    #[test]
    fn buddy_failure_in_risk_window_is_fatal() {
        // Risk window (NBL, φ=1): D+R+θ = 38. Buddy fails 10 s later.
        let c = cfg(Protocol::DoubleNbl, 8, 1.0, 100.0);
        let tr = trace(8, &[(250.0, 0), (260.0, 1)]);
        let out = run_to_completion(&c, 970.0, &mut tr.replay()).unwrap();
        assert_eq!(out.reason, StopReason::Fatal);
        assert_eq!(out.fatal_at, Some(260.0));
        assert!(!out.survived());
    }

    #[test]
    fn buddy_failure_after_risk_window_is_survivable() {
        let c = cfg(Protocol::DoubleNbl, 8, 1.0, 100.0);
        // 38 s window; buddy fails 40 s later.
        let tr = trace(8, &[(250.0, 0), (290.1, 1)]);
        let out = run_to_completion(&c, 970.0, &mut tr.replay()).unwrap();
        assert_eq!(out.reason, StopReason::WorkComplete);
        assert!(out.survived());
    }

    #[test]
    fn triple_survives_double_failure() {
        let c = cfg(Protocol::Triple, 9, 1.0, 100.0);
        let tr = trace(9, &[(250.0, 0), (251.0, 1)]);
        let out = run_to_completion(&c, 960.0, &mut tr.replay()).unwrap();
        assert_eq!(out.reason, StopReason::WorkComplete);
        // …but a third member within the windows kills it.
        let tr = trace(9, &[(250.0, 0), (251.0, 1), (252.0, 2)]);
        let out = run_to_completion(&c, 960.0, &mut tr.replay()).unwrap();
        assert_eq!(out.reason, StopReason::Fatal);
    }

    #[test]
    fn horizon_mode_reports_work_done() {
        let c = cfg(Protocol::DoubleNbl, 8, 1.0, 100.0);
        let empty = trace(8, &[]);
        let out = run_until(&c, 1000.0, &mut empty.replay()).unwrap();
        assert_eq!(out.reason, StopReason::HorizonReached);
        assert!((out.useful_work - 970.0).abs() < 1e-9);
        assert!((out.waste() - 0.03).abs() < 1e-12);
    }

    #[test]
    fn horizon_inside_outage() {
        let c = cfg(Protocol::DoubleNbl, 8, 1.0, 100.0);
        let tr = trace(8, &[(250.0, 0)]);
        // Outage runs 250→302; horizon at 275 lands inside it.
        let out = run_until(&c, 275.0, &mut tr.replay()).unwrap();
        assert_eq!(out.reason, StopReason::HorizonReached);
        // Work frozen at the failure position: work_at(250) =
        // 2·97 + (33 + 14) = 241.
        assert!(
            (out.useful_work - 241.0).abs() < 1e-9,
            "{}",
            out.useful_work
        );
        assert_eq!(out.total_time, 275.0);
    }

    #[test]
    fn no_progress_configuration_detected() {
        // DoubleBlocking at the minimum period: W = P − δ − θmin = 0.
        let c = cfg(Protocol::DoubleBlocking, 8, 0.0, 6.0);
        let empty = trace(8, &[]);
        let out = run_to_completion(&c, 100.0, &mut empty.replay()).unwrap();
        assert_eq!(out.reason, StopReason::NoProgress);
        assert_eq!(out.useful_work, 0.0);
    }

    #[test]
    fn failure_cap_stops_runaway_runs() {
        let mut c = cfg(Protocol::DoubleNbl, 8, 1.0, 100.0);
        c.max_failures = 3;
        // Failures every 10 s starve the run (outage ≥ 38 s each).
        let events: Vec<(f64, u64)> = (1..100)
            .map(|i| (i as f64 * 1000.0, (2 * (i % 4)) as u64))
            .collect();
        let tr = trace(8, &events);
        let out = run_to_completion(&c, 1e9, &mut tr.replay()).unwrap();
        assert_eq!(out.reason, StopReason::FailureCapReached);
        assert_eq!(out.failures, 3);
    }

    #[test]
    fn timeline_records_failures_and_outages() {
        let c = cfg(Protocol::DoubleNbl, 8, 1.0, 100.0);
        let tr = trace(8, &[(250.0, 0), (300.0, 2)]);
        let (out, timeline) = run_to_completion_traced(&c, 970.0, &mut tr.replay()).unwrap();
        assert_eq!(out.reason, StopReason::WorkComplete);
        // Two failures, one outage end, one completion.
        let failures: Vec<_> = timeline
            .iter()
            .filter(|e| matches!(e, TimelineEvent::Failure { .. }))
            .collect();
        assert_eq!(failures.len(), 2);
        match failures[0] {
            TimelineEvent::Failure {
                at,
                node,
                during_outage,
                fatal,
                ..
            } => {
                assert_eq!(*at, 250.0);
                assert_eq!(*node, 0);
                assert!(!during_outage);
                assert!(!fatal);
            }
            _ => unreachable!(),
        }
        match failures[1] {
            TimelineEvent::Failure { during_outage, .. } => assert!(during_outage),
            _ => unreachable!(),
        }
        assert!(matches!(
            timeline.last(),
            Some(TimelineEvent::Finished {
                reason: StopReason::WorkComplete,
                ..
            })
        ));
        // Exactly one outage completed (the restarted one).
        let outage_ends = timeline
            .iter()
            .filter(|e| matches!(e, TimelineEvent::OutageEnd { .. }))
            .count();
        assert_eq!(outage_ends, 1);
    }

    #[test]
    fn timeline_marks_fatal() {
        let c = cfg(Protocol::DoubleNbl, 8, 1.0, 100.0);
        let tr = trace(8, &[(250.0, 0), (260.0, 1)]);
        let (out, timeline) = run_to_completion_traced(&c, 970.0, &mut tr.replay()).unwrap();
        assert_eq!(out.reason, StopReason::Fatal);
        assert!(timeline
            .iter()
            .any(|e| matches!(e, TimelineEvent::Failure { fatal: true, .. })));
        assert!(matches!(
            timeline.last(),
            Some(TimelineEvent::Finished {
                reason: StopReason::Fatal,
                ..
            })
        ));
    }

    #[test]
    fn traced_and_untraced_agree() {
        let c = cfg(Protocol::Triple, 9, 1.0, 100.0);
        let tr = trace(9, &[(250.0, 0), (700.0, 5)]);
        let plain = run_to_completion(&c, 960.0, &mut tr.replay()).unwrap();
        let (traced, _) = run_to_completion_traced(&c, 960.0, &mut tr.replay()).unwrap();
        assert_eq!(plain, traced);
    }

    #[test]
    fn waste_definition_sane() {
        let out = RunOutcome {
            reason: StopReason::WorkComplete,
            total_time: 200.0,
            useful_work: 150.0,
            failures: 0,
            outage_time: 0.0,
            fatal_at: None,
        };
        assert!((out.waste() - 0.25).abs() < 1e-15);
    }

    #[test]
    fn waste_tolerates_float_rounding_without_counting() {
        let _guard = dck_obs::exclusive_session();
        dck_obs::reset();
        let out = RunOutcome {
            reason: StopReason::WorkComplete,
            total_time: 200.0,
            // One ulp over total_time: boundary rounding, not corruption.
            useful_work: 200.0 * (1.0 + 1e-15),
            failures: 0,
            outage_time: 0.0,
            fatal_at: None,
        };
        assert_eq!(out.waste(), 0.0);
        assert_eq!(dck_obs::snapshot().counter("run.waste_clamped"), 0);
    }

    #[test]
    fn corrupt_waste_is_counted_not_laundered() {
        let _guard = dck_obs::exclusive_session();
        dck_obs::reset();
        let out = RunOutcome {
            reason: StopReason::WorkComplete,
            total_time: 200.0,
            useful_work: 300.0, // impossible: work outran the clock
            failures: 0,
            outage_time: 0.0,
            fatal_at: None,
        };
        let waste = std::panic::catch_unwind(|| out.waste());
        if cfg!(debug_assertions) {
            assert!(waste.is_err(), "debug builds must panic on corruption");
        } else {
            assert_eq!(waste.unwrap(), 0.0);
        }
        // The defect counter records it either way — always-on, no
        // enabled() gate.
        assert_eq!(dck_obs::snapshot().counter("run.waste_clamped"), 1);
    }

    #[test]
    fn horizon_trace_ends_with_finished() {
        let c = cfg(Protocol::DoubleNbl, 8, 1.0, 100.0);
        let tr = trace(8, &[(250.0, 0)]);
        let (out, timeline) = run_until_traced(&c, 1000.0, &mut tr.replay()).unwrap();
        assert_eq!(out.reason, StopReason::HorizonReached);
        assert_eq!(
            timeline.last(),
            Some(&TimelineEvent::Finished {
                at: 1000.0,
                reason: StopReason::HorizonReached,
            })
        );
        // Horizon landing inside the outage also gets its end marker.
        let (out, timeline) = run_until_traced(&c, 275.0, &mut tr.replay()).unwrap();
        assert_eq!(out.reason, StopReason::HorizonReached);
        assert_eq!(
            timeline.last(),
            Some(&TimelineEvent::Finished {
                at: 275.0,
                reason: StopReason::HorizonReached,
            })
        );
    }

    #[test]
    fn failure_cap_trace_ends_with_finished() {
        let mut c = cfg(Protocol::DoubleNbl, 8, 1.0, 100.0);
        c.max_failures = 3;
        let events: Vec<(f64, u64)> = (1..100)
            .map(|i| (i as f64 * 1000.0, (2 * (i % 4)) as u64))
            .collect();
        let tr = trace(8, &events);
        let (out, timeline) = run_to_completion_traced(&c, 1e9, &mut tr.replay()).unwrap();
        assert_eq!(out.reason, StopReason::FailureCapReached);
        assert_eq!(
            timeline.last(),
            Some(&TimelineEvent::Finished {
                at: out.total_time,
                reason: StopReason::FailureCapReached,
            })
        );
    }

    #[test]
    fn no_progress_trace_and_waste_convention_work_mode() {
        // W = 0: the run can never reach the requested work, so
        // total_time is +∞ and waste() = 1 by convention. The terminal
        // event is stamped at 0.0 (JSON cannot carry ∞).
        let c = cfg(Protocol::DoubleBlocking, 8, 0.0, 6.0);
        let empty = trace(8, &[]);
        let (out, timeline) = run_to_completion_traced(&c, 100.0, &mut empty.replay()).unwrap();
        assert_eq!(out.reason, StopReason::NoProgress);
        assert!(out.total_time.is_infinite());
        assert_eq!(out.useful_work, 0.0);
        assert_eq!(out.waste(), 1.0);
        assert_eq!(
            timeline,
            vec![TimelineEvent::Finished {
                at: 0.0,
                reason: StopReason::NoProgress,
            }]
        );
        // The lone event must survive a JSON round-trip (the reason the
        // timestamp is finite).
        let json = serde_json::to_string(&timeline[0]).unwrap();
        let back: TimelineEvent = serde_json::from_str(&json).unwrap();
        assert_eq!(back, timeline[0]);
    }

    #[test]
    fn no_progress_waste_convention_horizon_mode() {
        // Horizon mode: the platform idles out the horizon with zero
        // work, so total_time = horizon and waste() = 1 as well.
        let c = cfg(Protocol::DoubleBlocking, 8, 0.0, 6.0);
        let empty = trace(8, &[]);
        let (out, timeline) = run_until_traced(&c, 500.0, &mut empty.replay()).unwrap();
        assert_eq!(out.reason, StopReason::NoProgress);
        assert_eq!(out.total_time, 500.0);
        assert_eq!(out.useful_work, 0.0);
        assert_eq!(out.waste(), 1.0);
        assert_eq!(
            timeline,
            vec![TimelineEvent::Finished {
                at: 500.0,
                reason: StopReason::NoProgress,
            }]
        );
    }

    #[test]
    fn mismatched_source_is_a_typed_error() {
        // A source covering the wrong node count must surface as a
        // ModelError, not abort a pool worker.
        let c = cfg(Protocol::DoubleNbl, 8, 1.0, 100.0);
        let wrong = trace(4, &[]);
        let err = run_to_completion(&c, 970.0, &mut wrong.replay()).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("4") && msg.contains("8"), "message: {msg}");
    }

    #[test]
    fn sinked_run_matches_traced_and_serializes() {
        let c = cfg(Protocol::DoubleNbl, 8, 1.0, 100.0);
        let tr = trace(8, &[(250.0, 0), (300.0, 2)]);
        let (out, timeline) = run_to_completion_traced(&c, 970.0, &mut tr.replay()).unwrap();
        let mut buf = Vec::new();
        let mut jsonl = dck_obs::JsonlSink::new(&mut buf);
        let sinked = run_to_completion_sinked(&c, 970.0, &mut tr.replay(), &mut jsonl).unwrap();
        let lines = jsonl.finish().unwrap();
        assert_eq!(sinked, out);
        assert_eq!(lines as usize, timeline.len());
        let parsed: Vec<TimelineEvent> = String::from_utf8(buf)
            .unwrap()
            .lines()
            .map(|l| serde_json::from_str(l).unwrap())
            .collect();
        assert_eq!(parsed, timeline);
    }
}
