//! Simulation run configuration.

use dck_core::{ModelError, PlatformParams, Protocol, RiskModel};
use dck_protocols::{FailureResponse, GroupLayout, PeriodSchedule, RiskTracker};
use serde::{Deserialize, Serialize};

/// How the checkpointing period is chosen for a run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PeriodChoice {
    /// Use the model-optimal period (Eqs. 9/10/15, clamped) for the
    /// configured MTBF.
    Optimal,
    /// Use an explicit period (seconds).
    Explicit(f64),
}

/// Configuration of a single protocol simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunConfig {
    /// Protocol to simulate.
    pub protocol: Protocol,
    /// Platform parameters (Table I shape).
    pub params: PlatformParams,
    /// Overhead `φ ∈ [0, θmin]`.
    pub phi: f64,
    /// Platform MTBF `M` (seconds) — used for period optimization and
    /// as the calibration target for failure sources.
    pub mtbf: f64,
    /// Period selection.
    pub period: PeriodChoice,
    /// Safety cap on processed failures per run (guards against
    /// pathological configurations that cannot make progress).
    pub max_failures: u64,
}

impl RunConfig {
    /// A config with the optimal period and a generous failure cap.
    pub fn new(protocol: Protocol, params: PlatformParams, phi: f64, mtbf: f64) -> Self {
        RunConfig {
            protocol,
            params,
            phi,
            mtbf,
            period: PeriodChoice::Optimal,
            max_failures: 50_000_000,
        }
    }

    /// The node count actually simulated: the platform size rounded
    /// down to a multiple of the group size.
    pub fn usable_nodes(&self) -> u64 {
        GroupLayout::usable_nodes(self.protocol, self.params.nodes)
    }

    /// Resolves the period per [`PeriodChoice`].
    pub fn resolve_period(&self) -> Result<f64, ModelError> {
        match self.period {
            PeriodChoice::Explicit(p) => Ok(p),
            PeriodChoice::Optimal => {
                Ok(
                    dck_core::optimal_period(self.protocol, &self.params, self.phi, self.mtbf)?
                        .period,
                )
            }
        }
    }

    /// Builds the executable machinery for a run: schedule, failure
    /// response, and risk tracker.
    pub fn build(&self) -> Result<(PeriodSchedule, FailureResponse, RiskTracker), ModelError> {
        let period = self.resolve_period()?;
        let schedule = PeriodSchedule::new(self.protocol, &self.params, self.phi, period)?;
        let response = FailureResponse::for_schedule(&self.params, &schedule)?;
        let mut layout_params = self.params;
        layout_params.nodes = self.usable_nodes();
        let layout = GroupLayout::new(self.protocol, layout_params.nodes)?;
        let risk = RiskModel::new(self.protocol, &self.params, self.phi)?;
        let tracker = RiskTracker::new(layout, risk.risk_window())?;
        Ok((schedule, response, tracker))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> PlatformParams {
        PlatformParams::new(0.0, 2.0, 4.0, 10.0, 324 * 32).unwrap()
    }

    #[test]
    fn optimal_period_resolves() {
        let cfg = RunConfig::new(Protocol::DoubleNbl, base(), 1.0, 7.0 * 3600.0);
        let p = cfg.resolve_period().unwrap();
        let expected = dck_core::optimal_period(Protocol::DoubleNbl, &base(), 1.0, 7.0 * 3600.0)
            .unwrap()
            .period;
        assert_eq!(p, expected);
    }

    #[test]
    fn explicit_period_passes_through() {
        let mut cfg = RunConfig::new(Protocol::Triple, base(), 1.0, 3600.0);
        cfg.period = PeriodChoice::Explicit(500.0);
        assert_eq!(cfg.resolve_period().unwrap(), 500.0);
    }

    #[test]
    fn build_produces_consistent_machinery() {
        let cfg = RunConfig::new(Protocol::Triple, base(), 1.0, 3600.0);
        let (sched, _resp, tracker) = cfg.build().unwrap();
        assert_eq!(sched.protocol(), Protocol::Triple);
        // Risk window: D + R + 2θ with θ = 34.
        assert!((tracker.risk_window() - (0.0 + 4.0 + 68.0)).abs() < 1e-12);
    }

    #[test]
    fn usable_nodes_rounds_down_for_triples() {
        let mut p = base();
        p.nodes = 10_368; // multiple of 2 and 3
        let cfg = RunConfig::new(Protocol::Triple, p, 1.0, 3600.0);
        assert_eq!(cfg.usable_nodes(), 10_368);
        p.nodes = 10_369;
        let cfg = RunConfig::new(Protocol::Triple, p, 1.0, 3600.0);
        assert_eq!(cfg.usable_nodes(), 10_368);
    }

    #[test]
    fn infeasible_explicit_period_fails_at_build() {
        let mut cfg = RunConfig::new(Protocol::DoubleNbl, base(), 0.0, 3600.0);
        cfg.period = PeriodChoice::Explicit(10.0); // < δ + θmax
        assert!(cfg.build().is_err());
    }
}
