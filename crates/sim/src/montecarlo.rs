//! Parallel Monte-Carlo replication of protocol simulations.
//!
//! Replications are embarrassingly parallel and fully reproducible:
//! replication `i` derives its RNG stream from `(seed, i)` regardless
//! of which worker thread executes it, so results are bit-identical
//! across worker counts.

use crate::config::RunConfig;
use crate::run::{run_to_completion, RunMachine, RunOutcome, Stop, StopReason};
use dck_core::ModelError;
use dck_failures::{AggregatedExponential, DistributionSpec, MtbfSpec, PerNodeRenewal};
use dck_simcore::par::{default_workers, parallel_map_fold};
use dck_simcore::{ConfidenceInterval, OnlineStats, RngFactory, SimTime};
use serde::{Deserialize, Serialize};

/// Replications folded sequentially per work-stealing unit. Shared by
/// [`estimate_waste`] and the sweep engines in [`crate::sweep`]: as
/// long as every execution path cuts a cell's replication range into
/// `REP_CHUNK`-sized chunks and merges the chunk accumulators in
/// ascending order, results are bit-identical across engines and
/// worker counts.
pub(crate) const REP_CHUNK: usize = 8;

/// Which failure process drives the replications.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SourceKind {
    /// The paper's assumption: Exponential failures, simulated by the
    /// O(1)-per-event aggregated Poisson process.
    Exponential,
    /// Per-node renewal process with the given inter-arrival shape; the
    /// distribution's mean is re-targeted to the individual-node MTBF.
    /// Starts fresh at t = 0 (all nodes brand-new: infant-mortality
    /// shapes front-load failures).
    Renewal(DistributionSpec),
    /// Like [`SourceKind::Renewal`] but warmed up for ten individual
    /// MTBFs before t = 0, approximating the stationary regime.
    RenewalWarmed(DistributionSpec),
}

/// Monte-Carlo harness configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MonteCarloConfig {
    /// Number of independent replications.
    pub replications: usize,
    /// Master seed; replication `i` uses stream `(seed, i)`.
    pub seed: u64,
    /// Worker threads (0 = all available cores).
    pub workers: usize,
    /// Failure process.
    pub source: SourceKind,
}

impl MonteCarloConfig {
    /// A sensible default: `replications` runs, all cores, Exponential.
    pub fn new(replications: usize, seed: u64) -> Self {
        MonteCarloConfig {
            replications,
            seed,
            workers: 0,
            source: SourceKind::Exponential,
        }
    }

    fn resolved_workers(&self) -> usize {
        if self.workers == 0 {
            default_workers(0)
        } else {
            self.workers
        }
    }
}

/// Builds the failure source for one replication. The platform MTBF is
/// calibrated so the *per-node* rate matches `run_cfg.params` even when
/// the node count is rounded down to a group multiple.
///
/// Public so single-run tooling (e.g. `dck run --trace`) can replay
/// exactly the stream that replication `i` of a Monte-Carlo estimate
/// would see.
pub fn replication_source(
    run_cfg: &RunConfig,
    mc: &MonteCarloConfig,
    replication: u64,
) -> Box<dyn dck_failures::FailureSource> {
    let usable = run_cfg.usable_nodes();
    let n_cfg = run_cfg.params.nodes as f64;
    // Per-node MTBF is n·M; keep it fixed under rounding.
    let individual = SimTime::seconds(run_cfg.mtbf * n_cfg);
    let mtbf = MtbfSpec::Individual {
        mtbf: individual,
        nodes: usable,
    };
    let rng = RngFactory::new(mc.seed).component_stream("failures", replication);
    match mc.source {
        SourceKind::Exponential => Box::new(AggregatedExponential::new(mtbf, rng)),
        SourceKind::Renewal(spec) => {
            Box::new(PerNodeRenewal::new(spec.with_mean(individual), usable, rng))
        }
        SourceKind::RenewalWarmed(spec) => Box::new(PerNodeRenewal::with_warmup(
            spec.with_mean(individual),
            usable,
            rng,
            individual * 10.0,
        )),
    }
}

/// Aggregated waste estimate across replications.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WasteEstimate {
    /// Per-run waste statistics (completed runs only).
    pub waste: OnlineStats,
    /// 95% Student-t interval on the mean waste, or `None` when **no**
    /// replication completed — the estimate is degenerate and there is
    /// no mean to put an interval around (previously this surfaced as
    /// a meaningless 0-width interval at 0).
    pub ci95: Option<ConfidenceInterval>,
    /// Per-run failure-count statistics.
    pub failures: OnlineStats,
    /// Replications that completed their work.
    pub completed: usize,
    /// Replications ended by a fatal failure.
    pub fatal: usize,
    /// Replications stopped by the failure cap or no-progress guard.
    pub truncated: usize,
}

impl WasteEstimate {
    /// True when no replication completed, so [`WasteEstimate::ci95`]
    /// is `None` and the waste statistics are empty.
    pub fn is_degenerate(&self) -> bool {
        self.completed == 0
    }
}

/// Streaming per-chunk accumulator for waste estimation: Welford
/// statistics plus outcome counters, mergeable in fixed chunk order.
#[derive(Debug, Clone, Default)]
pub(crate) struct WasteAccum {
    pub waste: OnlineStats,
    pub failures: OnlineStats,
    pub completed: usize,
    pub fatal: usize,
    pub truncated: usize,
}

impl WasteAccum {
    /// Folds one run outcome into the accumulator.
    pub fn absorb(&mut self, outcome: &RunOutcome) {
        match outcome.reason {
            StopReason::WorkComplete => {
                self.completed += 1;
                self.waste.push(outcome.waste());
                self.failures.push(outcome.failures as f64);
            }
            StopReason::Fatal => self.fatal += 1,
            // HorizonReached cannot occur in completion mode; count it
            // as truncated rather than panicking a sweep worker.
            StopReason::FailureCapReached | StopReason::NoProgress | StopReason::HorizonReached => {
                self.truncated += 1
            }
        }
    }

    /// Merges `other` into `self` (chunk order is the caller's
    /// responsibility; merging in a fixed order keeps floats
    /// reproducible).
    pub fn merge_in_place(&mut self, other: &WasteAccum) {
        self.waste.merge(&other.waste);
        self.failures.merge(&other.failures);
        self.completed += other.completed;
        self.fatal += other.fatal;
        self.truncated += other.truncated;
    }

    /// By-value merge for fold-style reduction.
    pub fn merge(mut self, other: WasteAccum) -> WasteAccum {
        self.merge_in_place(&other);
        self
    }

    /// Finishes the accumulator into a public estimate.
    pub fn into_estimate(self) -> WasteEstimate {
        let ci95 = if self.completed > 0 {
            Some(ConfidenceInterval::from_stats(&self.waste, 0.95))
        } else {
            None
        };
        WasteEstimate {
            waste: self.waste,
            ci95,
            failures: self.failures,
            completed: self.completed,
            fatal: self.fatal,
            truncated: self.truncated,
        }
    }
}

/// Runs one replication of `run_cfg` to completion of `t_base` work
/// through the boxed [`replication_source`] path. Replication `i`
/// derives its RNG stream from `(mc.seed, i)` only, so the outcome is
/// independent of which thread executes it.
///
/// This is the *reference* path: it rebuilds the configuration and
/// boxes the source per replication. The hot Monte-Carlo loops use
/// [`ChunkRunner`] instead, which amortizes the build and monomorphizes
/// the source; [`estimate_waste_reference`] and the parity tests keep
/// the two pinned to identical streams.
pub(crate) fn run_replication(
    run_cfg: &RunConfig,
    mc: &MonteCarloConfig,
    t_base: f64,
    replication: u64,
) -> RunOutcome {
    let mut source = replication_source(run_cfg, mc, replication);
    run_to_completion(run_cfg, t_base, source.as_mut())
        .expect("validated configuration cannot fail")
}

/// Reusable per-chunk replication driver: one [`RunMachine`] (the
/// resolved schedule, failure response and risk tracker) plus the RNG
/// factory, constructed once per work unit and driven for every
/// replication in it. The failure source is built on the stack per
/// replication — for the Exponential source the whole inner loop is
/// monomorphized, with no `Box<dyn FailureSource>` allocation and no
/// per-event dyn dispatch.
///
/// Stream identity: replication `i` consumes exactly the RNG stream of
/// [`replication_source`]`(run_cfg, mc, i)`, so results are
/// bit-identical to the boxed reference path (and `dck run --rep i`
/// replays precisely what the estimator simulated).
pub(crate) struct ChunkRunner {
    machine: RunMachine,
    factory: RngFactory,
    source: SourceKind,
    usable: u64,
    individual: SimTime,
}

impl ChunkRunner {
    /// Builds the machinery for one chunk of replications.
    ///
    /// # Errors
    /// Propagates configuration errors.
    pub(crate) fn new(run_cfg: &RunConfig, mc: &MonteCarloConfig) -> Result<Self, ModelError> {
        let usable = run_cfg.usable_nodes();
        // Per-node MTBF is n·M; keep it fixed under rounding (same
        // calibration as `replication_source`).
        let individual = SimTime::seconds(run_cfg.mtbf * run_cfg.params.nodes as f64);
        Ok(ChunkRunner {
            machine: RunMachine::new(run_cfg)?,
            factory: RngFactory::new(mc.seed),
            source: mc.source,
            usable,
            individual,
        })
    }

    fn drive(&mut self, stop: Stop, replication: u64) -> RunOutcome {
        let rng = self.factory.component_stream("failures", replication);
        let result = match self.source {
            SourceKind::Exponential => {
                let mtbf = MtbfSpec::Individual {
                    mtbf: self.individual,
                    nodes: self.usable,
                };
                let mut src = AggregatedExponential::new(mtbf, rng);
                self.machine.drive(stop, &mut src, |_| {})
            }
            SourceKind::Renewal(spec) => {
                let mut src =
                    PerNodeRenewal::new(spec.with_mean(self.individual), self.usable, rng);
                self.machine.drive(stop, &mut src, |_| {})
            }
            SourceKind::RenewalWarmed(spec) => {
                let mut src = PerNodeRenewal::with_warmup(
                    spec.with_mean(self.individual),
                    self.usable,
                    rng,
                    self.individual * 10.0,
                );
                self.machine.drive(stop, &mut src, |_| {})
            }
        };
        result.expect("validated configuration cannot fail").0
    }

    /// Runs replication `replication` to completion of `t_base` work.
    pub(crate) fn run_waste(&mut self, t_base: f64, replication: u64) -> RunOutcome {
        self.drive(Stop::Work(t_base), replication)
    }

    /// Runs replication `replication` over a fixed horizon; true if it
    /// survived (no fatal failure).
    pub(crate) fn run_success(&mut self, horizon: f64, replication: u64) -> bool {
        self.drive(Stop::Horizon(horizon), replication).survived()
    }
}

/// Structure-of-arrays staging for one chunk of run outcomes: the
/// per-replication scalars land in flat arrays and are folded into the
/// Welford accumulators once per chunk, keeping the hot loop free of
/// accumulator bookkeeping. Folding happens in index order into an
/// empty [`WasteAccum`], so the result is bit-identical to absorbing
/// each outcome as it happened.
#[derive(Debug, Clone, Default)]
pub(crate) struct ChunkOutcomes {
    wastes: [f64; REP_CHUNK],
    failure_counts: [f64; REP_CHUNK],
    completed: usize,
    fatal: usize,
    truncated: usize,
}

impl ChunkOutcomes {
    /// Stages one run outcome. At most [`REP_CHUNK`] completed runs fit
    /// (callers cut work into `REP_CHUNK`-sized chunks).
    pub(crate) fn record(&mut self, outcome: &RunOutcome) {
        match outcome.reason {
            StopReason::WorkComplete => {
                debug_assert!(self.completed < REP_CHUNK, "chunk overflow");
                self.wastes[self.completed] = outcome.waste();
                self.failure_counts[self.completed] = outcome.failures as f64;
                self.completed += 1;
            }
            StopReason::Fatal => self.fatal += 1,
            // HorizonReached cannot occur in completion mode; count it
            // as truncated rather than panicking a sweep worker.
            StopReason::FailureCapReached | StopReason::NoProgress | StopReason::HorizonReached => {
                self.truncated += 1
            }
        }
    }

    /// Folds the staged outcomes into `acc` in recorded order.
    pub(crate) fn fold_into(&self, acc: &mut WasteAccum) {
        for i in 0..self.completed {
            acc.waste.push(self.wastes[i]);
            acc.failures.push(self.failure_counts[i]);
        }
        acc.completed += self.completed;
        acc.fatal += self.fatal;
        acc.truncated += self.truncated;
    }
}

/// Per-work-unit state for the waste estimator: the lazily built chunk
/// machinery, the SoA staging area and the running accumulator for
/// already-flushed chunks.
struct WasteChunkState {
    runner: Option<ChunkRunner>,
    staged: ChunkOutcomes,
    acc: WasteAccum,
}

impl WasteChunkState {
    fn empty() -> Self {
        WasteChunkState {
            runner: None,
            staged: ChunkOutcomes::default(),
            acc: WasteAccum::default(),
        }
    }

    fn flush(&mut self) {
        let staged = std::mem::take(&mut self.staged);
        staged.fold_into(&mut self.acc);
    }

    fn merge(mut self, mut other: WasteChunkState) -> WasteChunkState {
        self.flush();
        other.flush();
        self.acc.merge_in_place(&other.acc);
        self.runner = None;
        self
    }
}

/// Aggregated success-probability estimate across replications.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SuccessEstimate {
    /// Total replications.
    pub runs: usize,
    /// Replications with no fatal failure before the horizon.
    pub survived: usize,
    /// Point estimate `survived / runs`.
    pub p_hat: f64,
    /// 95% Wilson score interval `(lo, hi)`.
    pub wilson95: (f64, f64),
}

/// Estimates the waste of an operating point by running `t_base` work
/// to completion across replications.
///
/// # Errors
/// Propagates configuration errors from the first replication.
pub fn estimate_waste(
    run_cfg: &RunConfig,
    t_base: f64,
    mc: &MonteCarloConfig,
) -> Result<WasteEstimate, ModelError> {
    // Validate once up front so worker panics can't hide config errors.
    run_cfg.build()?;
    // Each REP_CHUNK-sized work unit lazily builds one ChunkRunner —
    // the schedule resolution and risk-tracker allocation are paid once
    // per chunk instead of once per replication — and stages outcomes
    // in structure-of-arrays form, folded into a per-chunk accumulator
    // at merge time. Merging in fixed ascending chunk order keeps the
    // floats bit-identical across worker counts (and identical to the
    // boxed per-replication reference path).
    let state = parallel_map_fold(
        mc.replications,
        mc.resolved_workers(),
        REP_CHUNK,
        WasteChunkState::empty,
        |state, i| {
            let runner = state.runner.get_or_insert_with(|| {
                ChunkRunner::new(run_cfg, mc).expect("validated configuration cannot fail")
            });
            state.staged.record(&runner.run_waste(t_base, i as u64));
        },
        WasteChunkState::merge,
    )
    .map_err(|e| ModelError::execution(e.to_string()))?;
    let mut state = state;
    state.flush();
    Ok(state.acc.into_estimate())
}

/// Reference implementation of [`estimate_waste`] over the boxed
/// per-replication path (`run_replication`): rebuilds the
/// configuration and allocates a `Box<dyn FailureSource>` for every
/// replication. Bit-identical to [`estimate_waste`] by construction —
/// the parity tests enforce it — and kept as the baseline the
/// `dck-bench` harness measures the monomorphized fast path against.
///
/// # Errors
/// Propagates configuration errors.
pub fn estimate_waste_reference(
    run_cfg: &RunConfig,
    t_base: f64,
    mc: &MonteCarloConfig,
) -> Result<WasteEstimate, ModelError> {
    run_cfg.build()?;
    let acc = parallel_map_fold(
        mc.replications,
        mc.resolved_workers(),
        REP_CHUNK,
        WasteAccum::default,
        |acc, i| acc.absorb(&run_replication(run_cfg, mc, t_base, i as u64)),
        WasteAccum::merge,
    )
    .map_err(|e| ModelError::execution(e.to_string()))?;
    Ok(acc.into_estimate())
}

/// Estimates the success probability over an exploitation horizon.
///
/// # Errors
/// Propagates configuration errors.
pub fn estimate_success(
    run_cfg: &RunConfig,
    horizon: f64,
    mc: &MonteCarloConfig,
) -> Result<SuccessEstimate, ModelError> {
    run_cfg.build()?;
    let survived = parallel_map_fold(
        mc.replications,
        mc.resolved_workers(),
        REP_CHUNK,
        || (None::<ChunkRunner>, 0usize),
        |state, i| {
            let runner = state.0.get_or_insert_with(|| {
                ChunkRunner::new(run_cfg, mc).expect("validated configuration cannot fail")
            });
            state.1 += usize::from(runner.run_success(horizon, i as u64));
        },
        |a, b| (None, a.1 + b.1),
    )
    .map_err(|e| ModelError::execution(e.to_string()))?
    .1;
    let runs = mc.replications;
    let p_hat = if runs == 0 {
        0.0
    } else {
        survived as f64 / runs as f64
    };
    Ok(SuccessEstimate {
        runs,
        survived,
        p_hat,
        wilson95: wilson_interval(survived, runs, 1.96),
    })
}

/// Wilson score interval for a binomial proportion at normal quantile
/// `z` (1.96 for 95%).
pub fn wilson_interval(successes: usize, trials: usize, z: f64) -> (f64, f64) {
    if trials == 0 {
        return (0.0, 1.0);
    }
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = (z / denom) * ((p * (1.0 - p) / n) + z2 / (4.0 * n * n)).sqrt();
    ((center - half).max(0.0), (center + half).min(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PeriodChoice;
    use dck_core::{PlatformParams, Protocol, RiskModel, WasteModel};

    fn params(nodes: u64) -> PlatformParams {
        PlatformParams::new(0.0, 2.0, 4.0, 10.0, nodes).unwrap()
    }

    #[test]
    fn wilson_interval_reference() {
        let (lo, hi) = wilson_interval(8, 10, 1.96);
        // Known value: 8/10 → approx (0.49, 0.94).
        assert!((lo - 0.49).abs() < 0.01, "lo {lo}");
        assert!((hi - 0.943).abs() < 0.01, "hi {hi}");
        assert_eq!(wilson_interval(0, 0, 1.96), (0.0, 1.0));
        let (lo, hi) = wilson_interval(0, 50, 1.96);
        assert_eq!(lo, 0.0);
        assert!(hi < 0.1);
        let (lo, hi) = wilson_interval(50, 50, 1.96);
        assert!(lo > 0.9);
        assert_eq!(hi, 1.0);
    }

    #[test]
    fn waste_estimate_matches_model_at_moderate_mtbf() {
        // Base-like platform, M = 1 h, 64 nodes, φ = 1. The model's
        // first-order waste should sit within the Monte-Carlo CI
        // (with slack: the model is first-order).
        let m = 3600.0;
        let run_cfg = RunConfig::new(Protocol::DoubleNbl, params(64), 1.0, m);
        let mc = MonteCarloConfig::new(60, 0xDC0FFEE);
        let t_base = 40.0 * 3600.0; // 40 h of work per run
        let est = estimate_waste(&run_cfg, t_base, &mc).unwrap();
        assert_eq!(est.completed + est.fatal + est.truncated, 60);
        assert!(est.completed > 50, "completed {}", est.completed);

        let opt = dck_core::optimal_period(Protocol::DoubleNbl, &params(64), 1.0, m).unwrap();
        let model_waste = opt.waste.total;
        let ci95 = est.ci95.expect("completed runs produce an interval");
        assert!(
            ci95.contains_with_slack(model_waste, 4.0),
            "model {model_waste} vs sim {} ± {}",
            ci95.mean,
            ci95.half_width
        );
    }

    #[test]
    fn degenerate_estimate_is_marked_not_nan() {
        // Unsurvivable regime: MTBF far below the rework cost, so no
        // replication ever completes. The estimate must say so
        // explicitly rather than reporting a 0 ± 0 interval.
        let m = 30.0;
        let mut run_cfg = RunConfig::new(Protocol::DoubleNbl, params(64), 0.0, m);
        run_cfg.period = PeriodChoice::Explicit(3600.0);
        let mc = MonteCarloConfig::new(6, 11);
        let est = estimate_waste(&run_cfg, 1e7, &mc).unwrap();
        assert_eq!(est.completed, 0, "regime unexpectedly survivable");
        assert!(est.is_degenerate());
        assert!(est.ci95.is_none());
        assert_eq!(est.fatal + est.truncated, 6);
        assert_eq!(est.waste.count(), 0);
    }

    #[test]
    fn success_estimate_matches_eq11_order_of_magnitude() {
        // Harsh regime so fatal failures actually occur: M = 60 s,
        // 64 nodes, horizon 12 h.
        let m = 60.0;
        let mut run_cfg = RunConfig::new(Protocol::DoubleNbl, params(64), 0.0, m);
        run_cfg.period = PeriodChoice::Explicit(200.0);
        let horizon = 12.0 * 3600.0;
        let mc = MonteCarloConfig::new(300, 42);
        let est = estimate_success(&run_cfg, horizon, &mc).unwrap();

        let model = RiskModel::new(Protocol::DoubleNbl, &params(64), 0.0)
            .unwrap()
            .success_probability(m, horizon)
            .unwrap()
            .probability;
        let (lo, hi) = est.wilson95;
        // CI-aware tolerance: the Wilson interval already scales with
        // the 300-replication sample, widened by a fixed model-bias
        // allowance because Eq. 11 is first-order in λ·Risk. With the
        // seeded RNG the whole check is deterministic; the slack keeps
        // it green across reasonable RNG/engine changes.
        let slack = 0.05;
        assert!(
            model >= lo - slack && model <= hi + slack,
            "model {model} outside sim [{lo}, {hi}] ± {slack}"
        );
        // This regime must be genuinely risky, or the test is vacuous.
        assert!(est.p_hat < 0.999, "p_hat {}", est.p_hat);
    }

    #[test]
    fn replications_are_reproducible_across_worker_counts() {
        let run_cfg = RunConfig::new(Protocol::Triple, params(9), 1.0, 1800.0);
        let mut mc1 = MonteCarloConfig::new(16, 7);
        mc1.workers = 1;
        let mut mc8 = mc1;
        mc8.workers = 8;
        let a = estimate_waste(&run_cfg, 20_000.0, &mc1).unwrap();
        let b = estimate_waste(&run_cfg, 20_000.0, &mc8).unwrap();
        assert_eq!(a.waste.mean(), b.waste.mean());
        assert_eq!(a.completed, b.completed);
    }

    #[test]
    fn renewal_source_supported() {
        let run_cfg = RunConfig::new(Protocol::DoubleNbl, params(8), 1.0, 1800.0);
        let mut mc = MonteCarloConfig::new(8, 3);
        mc.source = SourceKind::Renewal(DistributionSpec::Weibull {
            mean: SimTime::seconds(1.0), // retargeted internally
            shape: 0.7,
        });
        let est = estimate_waste(&run_cfg, 10_000.0, &mc).unwrap();
        assert_eq!(est.completed + est.fatal + est.truncated, 8);
    }

    #[test]
    fn fault_free_limit_recovers_waste_ff() {
        // Enormous MTBF: almost no failures, waste → WASTEff at the
        // chosen period.
        let m = 1e12;
        let mut run_cfg = RunConfig::new(Protocol::DoubleNbl, params(8), 1.0, m);
        run_cfg.period = PeriodChoice::Explicit(100.0);
        let mc = MonteCarloConfig::new(4, 1);
        let est = estimate_waste(&run_cfg, 97_000.0, &mc).unwrap();
        let wff = WasteModel::new(Protocol::DoubleNbl, &params(8), 1.0)
            .unwrap()
            .waste(100.0, m)
            .unwrap()
            .fault_free;
        assert!((est.waste.mean() - wff).abs() < 1e-9);
    }

    fn assert_estimates_bit_identical(a: &WasteEstimate, b: &WasteEstimate) {
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.fatal, b.fatal);
        assert_eq!(a.truncated, b.truncated);
        assert_eq!(a.waste.count(), b.waste.count());
        assert_eq!(a.waste.mean().to_bits(), b.waste.mean().to_bits());
        assert_eq!(a.waste.variance().to_bits(), b.waste.variance().to_bits());
        assert_eq!(a.failures.mean().to_bits(), b.failures.mean().to_bits());
    }

    #[test]
    fn fast_path_matches_boxed_reference_bitwise() {
        // The monomorphized ChunkRunner path must reproduce the boxed
        // per-replication reference exactly — same streams, same
        // outcomes, same accumulation order — for every source kind.
        let exp_cfg = RunConfig::new(Protocol::DoubleNbl, params(64), 1.0, 3600.0);
        let mut mc = MonteCarloConfig::new(24, 0xFA57);
        mc.workers = 2;
        let t_base = 20.0 * 3600.0;
        assert_estimates_bit_identical(
            &estimate_waste(&exp_cfg, t_base, &mc).unwrap(),
            &estimate_waste_reference(&exp_cfg, t_base, &mc).unwrap(),
        );

        let ren_cfg = RunConfig::new(Protocol::DoubleNbl, params(8), 1.0, 1800.0);
        let spec = DistributionSpec::Weibull {
            mean: SimTime::seconds(1.0), // retargeted internally
            shape: 0.7,
        };
        for source in [SourceKind::Renewal(spec), SourceKind::RenewalWarmed(spec)] {
            let mut mc = MonteCarloConfig::new(8, 3);
            mc.source = source;
            assert_estimates_bit_identical(
                &estimate_waste(&ren_cfg, 10_000.0, &mc).unwrap(),
                &estimate_waste_reference(&ren_cfg, 10_000.0, &mc).unwrap(),
            );
        }
    }

    #[test]
    fn success_fast_path_matches_boxed_loop() {
        // The horizon-mode fast path must agree with driving the boxed
        // replication_source through run_until one replication at a
        // time.
        let m = 60.0;
        let mut run_cfg = RunConfig::new(Protocol::DoubleNbl, params(64), 0.0, m);
        run_cfg.period = PeriodChoice::Explicit(200.0);
        let horizon = 6.0 * 3600.0;
        let mc = MonteCarloConfig::new(64, 77);
        let est = estimate_success(&run_cfg, horizon, &mc).unwrap();
        let mut survived = 0usize;
        for i in 0..mc.replications {
            let mut source = replication_source(&run_cfg, &mc, i as u64);
            let out = crate::run::run_until(&run_cfg, horizon, source.as_mut()).unwrap();
            survived += usize::from(out.survived());
        }
        assert_eq!(est.survived, survived);
    }

    #[test]
    fn invalid_config_surfaces_as_error() {
        let mut run_cfg = RunConfig::new(Protocol::DoubleNbl, params(8), 1.0, 3600.0);
        run_cfg.period = PeriodChoice::Explicit(1.0);
        let mc = MonteCarloConfig::new(4, 1);
        assert!(estimate_waste(&run_cfg, 1000.0, &mc).is_err());
        assert!(estimate_success(&run_cfg, 1000.0, &mc).is_err());
    }
}
