//! Mechanistic simulation of the fault-prediction scenario.
//!
//! Independent re-implementation of the physics behind
//! [`dck_core::predict`]: failures stream from the usual aggregated
//! Poisson source; each is flagged *predicted* with probability `r`
//! (the predictor's recall) and announces itself `w` seconds early;
//! false alarms arrive as their own Poisson process at rate
//! `r(1 − p)/(pM)`. Every alarm freezes the platform for a proactive
//! checkpoint `C_p = δ + R`; a predicted failure then rolls back only
//! to that fresh image (outage `D + R` plus re-execution of the short
//! stretch since the proactive checkpoint), while an unpredicted one
//! pays the full §III/§V case-analysis outage.
//!
//! The loop keeps the base simulator's accounting convention: the
//! schedule position `v` only moves forward, and all loss — downtime,
//! blocking transfers, re-execution — is charged to the outage clock.
//! Double events (an alarm or failure landing inside an outage) are
//! serialized rather than restarted; at the benign operating points the
//! conformance grid probes (`M` far above every outage) the difference
//! is far below the CI95 tolerance.

use crate::config::RunConfig;
use crate::montecarlo::{replication_source, MonteCarloConfig, WasteEstimate};
use crate::run::{RunOutcome, StopReason};
use dck_core::{predict::proactive_cost, ModelError, PredictorSpec};
use dck_failures::FailureSource;
use dck_simcore::{ConfidenceInterval, OnlineStats, RngFactory};
use rand::rngs::StdRng;
use rand::Rng;

/// Outcome of one predicted run: the base outcome plus predictor
/// bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredictedOutcome {
    /// The base measurements (waste, failures, outage time, …).
    pub run: RunOutcome,
    /// Alarms raised (true and false).
    pub alarms: u64,
    /// Failures that were successfully predicted.
    pub predicted_hits: u64,
}

/// Runs one predicted replication until `t_base` units of useful work
/// complete. `rng` drives the predictor (recall coin flips and the
/// false-alarm process) and must be independent of the failure stream.
///
/// # Errors
/// Propagates configuration/predictor validation; the failure source
/// must cover exactly the configuration's usable nodes.
pub fn run_predicted_to_completion(
    cfg: &RunConfig,
    predictor: &PredictorSpec,
    t_base: f64,
    source: &mut dyn FailureSource,
    rng: &mut StdRng,
) -> Result<PredictedOutcome, ModelError> {
    predictor.validate()?;
    let cp = proactive_cost(&cfg.params);
    if predictor.recall > 0.0 && predictor.window < cp {
        return Err(ModelError::invalid(
            "window",
            format!(
                "lead window {} shorter than the proactive checkpoint {cp}",
                predictor.window
            ),
        ));
    }
    let (sched, resp, mut tracker) = cfg.build()?;
    if source.nodes() != cfg.usable_nodes() {
        return Err(ModelError::invalid(
            "failure_source",
            format!(
                "failure source covers {} nodes but the configuration simulates {} usable nodes",
                source.nodes(),
                cfg.usable_nodes()
            ),
        ));
    }
    tracker.reset();
    if sched.work_per_period() <= 0.0 {
        return Ok(PredictedOutcome {
            run: RunOutcome {
                reason: StopReason::NoProgress,
                total_time: f64::INFINITY,
                useful_work: 0.0,
                failures: 0,
                outage_time: 0.0,
                fatal_at: None,
            },
            alarms: 0,
            predicted_hits: 0,
        });
    }

    let d = cfg.params.downtime;
    let rec = cfg.params.recovery();
    let w = predictor.window;
    let far = predictor.false_alarm_rate(cfg.mtbf);
    let exp_gap = |rng: &mut StdRng| -> f64 {
        let u: f64 = rng.gen();
        -(1.0 - u).ln() / far
    };

    let ve = sched.time_to_reach_work(t_base);
    let mut t = 0.0_f64; // wall clock
    let mut v = 0.0_f64; // schedule position (monotone)
    let mut outage_time = 0.0_f64;
    let mut failures = 0u64;
    let mut alarms = 0u64;
    let mut predicted_hits = 0u64;

    // Next failure, with its recall coin flipped at draw time so the
    // predictor stream is consumed one deviate per failure.
    let draw = |source: &mut dyn FailureSource, rng: &mut StdRng| {
        let ev = source.next_failure();
        let coin: f64 = rng.gen();
        (ev, coin < predictor.recall)
    };
    let (mut fault, mut fault_predicted) = draw(source, rng);
    let mut next_false = if far > 0.0 {
        exp_gap(rng)
    } else {
        f64::INFINITY
    };

    let finish = |reason, t: f64, v: f64, failures, outage_time, fatal_at| RunOutcome {
        reason,
        total_time: t,
        useful_work: sched.work_at(v),
        failures,
        outage_time,
        fatal_at,
    };

    loop {
        let fault_at = fault.at.as_secs();
        // An alarm precedes a predicted failure by `w`; a prediction
        // that would have had to arrive in the (already simulated) past
        // is too late to act on — the failure hits unpredicted.
        let alarm_at = if fault_predicted {
            fault_at - w
        } else {
            f64::INFINITY
        };
        let effective_alarm = fault_predicted && alarm_at >= t;
        let next_event = if effective_alarm {
            alarm_at.min(next_false)
        } else {
            fault_at.min(next_false)
        };

        // Completion check against the next disruption.
        let t_complete = t + (ve - v);
        if t_complete <= next_event {
            return Ok(PredictedOutcome {
                run: finish(
                    StopReason::WorkComplete,
                    t_complete,
                    ve,
                    failures,
                    outage_time,
                    None,
                ),
                alarms,
                predicted_hits,
            });
        }

        if next_false <= next_event {
            // False alarm: advance, pay the proactive checkpoint.
            let at = next_false.max(t);
            v += at - t;
            t = at + cp;
            outage_time += cp;
            alarms += 1;
            next_false = t + exp_gap(rng);
            continue;
        }

        if effective_alarm {
            // True alarm: proactive checkpoint, then run to the hit.
            let at = alarm_at.max(t);
            v += at - t;
            t = at + cp;
            outage_time += cp;
            alarms += 1;
            let snap_v = v;
            if fault_at > t {
                v += fault_at - t;
                t = fault_at;
            }
            failures += 1;
            predicted_hits += 1;
            // Risk windows key on the fault's true arrival time even
            // when a prior outage delayed its processing.
            let outcome = tracker.record_failure(fault.node, fault_at);
            if outcome.fatal {
                return Ok(PredictedOutcome {
                    run: finish(StopReason::Fatal, t, v, failures, outage_time, Some(t)),
                    alarms,
                    predicted_hits,
                });
            }
            // Roll back to the proactive image: downtime, own-image
            // re-fetch, and re-execution of the stretch since the
            // snapshot (charged to the outage clock; `v` stays).
            let outage = d + rec + (v - snap_v);
            t += outage;
            outage_time += outage;
        } else {
            // Unpredicted failure: the paper's case analysis.
            let at = fault_at.max(t);
            v += at - t;
            t = at;
            failures += 1;
            let outcome = tracker.record_failure(fault.node, fault_at);
            if outcome.fatal {
                return Ok(PredictedOutcome {
                    run: finish(StopReason::Fatal, t, v, failures, outage_time, Some(t)),
                    alarms,
                    predicted_hits,
                });
            }
            let off = v % sched.period();
            let outage = resp.outage(off).total();
            t += outage;
            outage_time += outage;
        }

        if failures >= cfg.max_failures {
            return Ok(PredictedOutcome {
                run: finish(
                    StopReason::FailureCapReached,
                    t,
                    v,
                    failures,
                    outage_time,
                    None,
                ),
                alarms,
                predicted_hits,
            });
        }
        (fault, fault_predicted) = draw(source, rng);
    }
}

/// Monte-Carlo estimate of the predicted waste: `mc.replications`
/// independent runs of `t_base` work each, aggregated exactly like
/// [`crate::montecarlo::estimate_waste`]. Replication `i` derives its
/// failure stream from `(seed, "failures", i)` and its predictor
/// stream from `(seed, "predictor", i)`, so the two never correlate
/// and the estimate is reproducible across worker counts (the loop is
/// sequential — prediction grids are small).
///
/// # Errors
/// Propagates configuration/predictor validation.
pub fn estimate_predicted_waste(
    cfg: &RunConfig,
    predictor: &PredictorSpec,
    t_base: f64,
    mc: &MonteCarloConfig,
) -> Result<WasteEstimate, ModelError> {
    predictor.validate()?;
    let factory = RngFactory::new(mc.seed);
    let mut waste = OnlineStats::default();
    let mut fail_stats = OnlineStats::default();
    let mut completed = 0usize;
    let mut fatal = 0usize;
    let mut truncated = 0usize;
    for i in 0..mc.replications {
        let mut source = replication_source(cfg, mc, i as u64);
        let mut rng = factory.component_stream("predictor", i as u64);
        let out = run_predicted_to_completion(cfg, predictor, t_base, source.as_mut(), &mut rng)?;
        match out.run.reason {
            StopReason::WorkComplete => {
                completed += 1;
                waste.push(out.run.waste());
                fail_stats.push(out.run.failures as f64);
            }
            StopReason::Fatal => fatal += 1,
            _ => truncated += 1,
        }
    }
    let ci95 = if completed > 0 {
        Some(ConfidenceInterval::from_stats(&waste, 0.95))
    } else {
        None
    };
    Ok(WasteEstimate {
        waste,
        ci95,
        failures: fail_stats,
        completed,
        fatal,
        truncated,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PeriodChoice;
    use crate::montecarlo::estimate_waste;
    use dck_core::{PlatformParams, Protocol};
    use dck_failures::{FailureEvent, FailureTrace};
    use dck_simcore::SimTime;

    fn base_params(nodes: u64) -> PlatformParams {
        PlatformParams::new(0.0, 2.0, 4.0, 10.0, nodes).unwrap()
    }

    fn cfg(protocol: Protocol, period: f64, mtbf: f64) -> RunConfig {
        let mut c = RunConfig::new(protocol, base_params(12), 0.0, mtbf);
        c.period = PeriodChoice::Explicit(period);
        c
    }

    fn rng() -> StdRng {
        RngFactory::new(7).component_stream("predictor", 0)
    }

    #[test]
    fn failure_free_run_matches_base_simulator() {
        let c = cfg(Protocol::DoubleNbl, 100.0, 1e9);
        let predictor = PredictorSpec::new(1.0, 1.0, 60.0);
        let trace = FailureTrace::new(12, vec![]);
        let mut replay = trace.replay();
        let out =
            run_predicted_to_completion(&c, &predictor, 980.0, &mut replay, &mut rng()).unwrap();
        assert_eq!(out.run.reason, StopReason::WorkComplete);
        assert_eq!(out.alarms, 0);
        // 10 full periods of 98 work each (phi = 0), no disruptions.
        assert!((out.run.total_time - 1_000.0).abs() < 1e-9);
        assert_eq!(out.run.outage_time, 0.0);
    }

    #[test]
    fn predicted_failure_loses_only_the_window_stretch() {
        // One failure at t = 350 (compute phase of period 4), predicted
        // with a 60 s window; C_p = δ + R = 6.
        let c = cfg(Protocol::DoubleNbl, 100.0, 1e9);
        let predictor = PredictorSpec::new(1.0, 1.0, 60.0);
        let trace = FailureTrace::new(
            12,
            vec![FailureEvent {
                at: SimTime::seconds(350.0),
                node: 0,
            }],
        );
        let mut replay = trace.replay();
        let out =
            run_predicted_to_completion(&c, &predictor, 980.0, &mut replay, &mut rng()).unwrap();
        assert_eq!(out.run.reason, StopReason::WorkComplete);
        assert_eq!(out.alarms, 1);
        assert_eq!(out.predicted_hits, 1);
        // Alarm at 290, checkpoint to 296, hit at 350: outage clock
        // carries C_p + (D + R + 54) = 6 + 58 = 64.
        assert!((out.run.outage_time - 64.0).abs() < 1e-9, "{out:?}");
        assert!((out.run.total_time - 1_064.0).abs() < 1e-9);
    }

    #[test]
    fn unpredicted_failure_pays_the_full_case_analysis() {
        // recall 0: identical to the base machine on the same trace.
        let c = cfg(Protocol::DoubleNbl, 100.0, 1e9);
        let predictor = PredictorSpec::new(1.0, 0.0, 60.0);
        let events = vec![FailureEvent {
            at: SimTime::seconds(350.0),
            node: 0,
        }];
        let trace = FailureTrace::new(12, events.clone());
        let mut replay = trace.replay();
        let out =
            run_predicted_to_completion(&c, &predictor, 970.0, &mut replay, &mut rng()).unwrap();
        let trace = FailureTrace::new(12, events);
        let mut replay = trace.replay();
        let base = crate::run::run_to_completion(&c, 970.0, &mut replay).unwrap();
        assert_eq!(out.run.reason, StopReason::WorkComplete);
        assert_eq!(out.alarms, 0);
        assert!((out.run.total_time - base.total_time).abs() < 1e-9);
        assert!((out.run.outage_time - base.outage_time).abs() < 1e-9);
    }

    #[test]
    fn fatal_failures_still_end_the_run() {
        // Two paired nodes inside the risk window; prediction does not
        // resurrect a destroyed group.
        let c = cfg(Protocol::DoubleNbl, 100.0, 1e9);
        let predictor = PredictorSpec::new(1.0, 0.0, 60.0);
        let trace = FailureTrace::new(
            12,
            vec![
                FailureEvent {
                    at: SimTime::seconds(500.0),
                    node: 2,
                },
                FailureEvent {
                    at: SimTime::seconds(510.0),
                    node: 3,
                },
            ],
        );
        let mut replay = trace.replay();
        let out =
            run_predicted_to_completion(&c, &predictor, 10_000.0, &mut replay, &mut rng()).unwrap();
        assert_eq!(out.run.reason, StopReason::Fatal);
    }

    #[test]
    fn short_window_is_rejected_with_positive_recall() {
        let c = cfg(Protocol::DoubleNbl, 100.0, 3_600.0);
        let trace = FailureTrace::new(12, vec![]);
        let mut replay = trace.replay();
        let err = run_predicted_to_completion(
            &c,
            &PredictorSpec::new(1.0, 0.5, 1.0), // w = 1 < C_p = 6
            970.0,
            &mut replay,
            &mut rng(),
        );
        assert!(err.is_err());
    }

    #[test]
    fn monte_carlo_estimate_matches_the_predicted_model() {
        // The conformance-style check in miniature: model vs sim at one
        // benign predicted operating point, judged by the sim's CI95.
        let mtbf = 3_600.0;
        let mut c = RunConfig::new(Protocol::DoubleNbl, base_params(48), 0.0, mtbf);
        // A short lead window: the predicted loss D + R + (w - C_p)
        // = 28 s undercuts the ~108 s unpredicted average.
        let predictor = PredictorSpec::new(0.8, 0.7, 30.0);
        let opt = dck_core::predicted_optimal_period(
            Protocol::DoubleNbl,
            &c.params,
            0.0,
            &predictor,
            mtbf,
        )
        .unwrap();
        c.period = PeriodChoice::Explicit(opt.period);
        let mc = MonteCarloConfig::new(48, 0xBEEF);
        let est = estimate_predicted_waste(&c, &predictor, 10.0 * mtbf, &mc).unwrap();
        let ci = est.ci95.expect("benign point: all replications complete");
        let tol = 3.0 * ci.half_width + 0.01;
        assert!(
            (opt.total - ci.mean).abs() <= tol,
            "model {} vs sim {} ± {} (tol {tol})",
            opt.total,
            ci.mean,
            ci.half_width
        );
        // Prediction must actually reduce the measured waste vs the
        // unpredicted machine at its own optimal period.
        let base_cfg = RunConfig::new(Protocol::DoubleNbl, base_params(48), 0.0, mtbf);
        let base_est = estimate_waste(&base_cfg, 10.0 * mtbf, &mc).unwrap();
        let base_ci = base_est.ci95.unwrap();
        assert!(
            ci.mean < base_ci.mean,
            "predicted waste {} not below unpredicted {}",
            ci.mean,
            base_ci.mean
        );
    }

    #[test]
    fn estimates_are_reproducible() {
        let c = cfg(Protocol::Triple, 300.0, 1_800.0);
        let predictor = PredictorSpec::new(0.6, 0.5, 30.0);
        let mc = MonteCarloConfig::new(8, 42);
        let a = estimate_predicted_waste(&c, &predictor, 5_000.0, &mc).unwrap();
        let b = estimate_predicted_waste(&c, &predictor, 5_000.0, &mc).unwrap();
        assert_eq!(a.waste.mean().to_bits(), b.waste.mean().to_bits());
        assert_eq!(a.completed, b.completed);
    }
}
