//! Sweep checkpoint snapshots: versioned, checksummed, bit-exact.
//!
//! The `GlobalPool` sweep engine advances in deterministic rounds, so
//! its complete execution state at a round boundary is tiny: per-cell
//! `WasteAccum`s, the `next[]` replication cursors, the `active[]`
//! flags, and the round counter. This module persists that state so a
//! killed sweep resumes **bit-identically** — the simulator practicing
//! the paper's own discipline of surviving failures via checkpoints.
//!
//! # On-disk format (version 2)
//!
//! A snapshot is a two-line UTF-8 file named
//! `sweep-r{round:08}.dckpt`:
//!
//! ```text
//! {"magic":"dck-sweep-snapshot","version":2,"checksum":"<fnv1a64 hex>"}
//! {"spec_fingerprint":"<hex>","rounds_done":N,"checkpoint_every":K,"cells":[...]}
//! ```
//!
//! The header's checksum is FNV-1a 64 over the payload line's bytes,
//! so truncation or corruption anywhere in the payload is detected
//! before any field is trusted. Every `f64` in the payload is encoded
//! as the 16-hex-digit big-endian form of [`f64::to_bits`] — **not**
//! as a decimal literal — for two reasons: decimal round-trips are not
//! guaranteed bit-exact by every writer/parser pair, and an empty
//! [`OnlineStats`] carries infinite extrema, which JSON number syntax
//! cannot represent at all (the vendored serializer emits `null`).
//!
//! Version 2 additionally records the producing run's snapshot cadence
//! (`checkpoint_every`), so a resumed run can honor the schedule the
//! interrupted run was on instead of silently rebasing it.
//!
//! # Retention
//!
//! Following the paper's own double-checkpointing discipline, at least
//! the two newest **valid** snapshots are kept: if a kill lands
//! mid-rename of the newest (impossible with POSIX rename, but disks
//! lie) or the newest is corrupt, resume falls back to its buddy one
//! round earlier. Retention is parameterized by [`RetentionPolicy`] —
//! `keep = k` generations, like the protocol layer's k-buddy groups —
//! and the slots beyond the protected newest pair hold a well-spaced
//! history: each prune greedily discards the snapshot whose removal
//! minimizes the largest gap between consecutive retained rounds, the
//! online-checkpointing discard rule of arXiv 1302.4216, which keeps
//! the worst-case rewind from any round bounded instead of letting the
//! retained set cluster at the tail.
//!
//! Pruning only ever counts snapshots that pass the full checksum
//! decode against the budget — a corrupt file can never crowd a valid
//! one out, so the newest valid snapshot is never removed. Snapshots
//! are written via [`dck_simcore::fsio::atomic_write`], so a kill
//! mid-write never leaves a truncated file under the final name.
//!
//! # Resume safety
//!
//! A payload stores a fingerprint of the producing [`SweepSpec`]
//! (worker count normalized to zero — results are worker-independent,
//! so resuming on different parallelism is legal). Loading a valid
//! snapshot whose fingerprint differs from the resuming spec is a hard
//! error: silently continuing someone else's sweep would produce
//! plausible-looking garbage.

use crate::montecarlo::WasteAccum;
use crate::sweep::SweepSpec;
use dck_core::ModelError;
use dck_simcore::fsio::atomic_write;
use dck_simcore::OnlineStats;
use serde::{Deserialize, Serialize};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Snapshot format version; bump on any payload change.
pub const SNAPSHOT_VERSION: u64 = 2;
/// Magic tag identifying sweep snapshot files.
pub const SNAPSHOT_MAGIC: &str = "dck-sweep-snapshot";
/// Snapshot file extension.
pub const SNAPSHOT_EXT: &str = "dckpt";
/// Default retained generations — the newest plus one buddy, mirroring
/// the paper's double-checkpoint discipline.
pub const DEFAULT_SNAPSHOT_KEEP: usize = 2;
/// Upper bound on retained generations, mirroring the protocol layer's
/// [`dck_core::MAX_GROUP_SIZE`] for k-buddy groups.
pub const MAX_SNAPSHOT_KEEP: usize = dck_core::MAX_GROUP_SIZE as usize;

/// How many snapshot generations survive a prune, and which.
///
/// `keep = 2` is the paper's double-checkpoint discipline (newest +
/// buddy). Larger `keep` values retain a history whose spacing follows
/// the online-checkpointing discard rule of arXiv 1302.4216: the
/// newest two generations are always protected (the buddy pair resume
/// depends on), and among the rest each prune discards the round whose
/// removal minimizes the largest gap between consecutive retained
/// rounds (round 0, the fresh start, anchors the sequence). The
/// retained set therefore stays within a constant factor of the
/// best-possible worst-case rewind for `keep` slots, rather than
/// collapsing into a cluster of the `keep` newest rounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetentionPolicy {
    keep: usize,
}

impl Default for RetentionPolicy {
    fn default() -> Self {
        RetentionPolicy {
            keep: DEFAULT_SNAPSHOT_KEEP,
        }
    }
}

impl RetentionPolicy {
    /// Policy retaining `keep` generations.
    ///
    /// # Errors
    /// `keep` must lie in `2..=MAX_SNAPSHOT_KEEP` — one generation
    /// would drop the buddy fallback, and the cap mirrors the k-buddy
    /// group bound.
    pub fn keep(keep: usize) -> Result<Self, ModelError> {
        if !(DEFAULT_SNAPSHOT_KEEP..=MAX_SNAPSHOT_KEEP).contains(&keep) {
            return Err(ModelError::invalid(
                "keep_snapshots",
                format!("retained generations must be in {DEFAULT_SNAPSHOT_KEEP}..={MAX_SNAPSHOT_KEEP}, got {keep}"),
            ));
        }
        Ok(RetentionPolicy { keep })
    }

    /// Retained generation count.
    pub fn generations(&self) -> usize {
        self.keep
    }

    /// Which of `rounds` (ascending, the valid snapshots on disk)
    /// survive: the newest two always, the rest by the greedy
    /// max-gap-minimizing discard rule.
    pub(crate) fn retain(&self, rounds: &[u64]) -> Vec<u64> {
        let mut kept: Vec<u64> = rounds.to_vec();
        while kept.len() > self.keep.max(2) {
            // Candidates exclude the protected newest pair. The victim
            // is the round whose removal leaves the smallest maximum
            // gap between consecutive survivors (with the fresh-start
            // round 0 as the leading anchor); ties discard the oldest.
            let n = kept.len();
            let mut best: Option<(u64, usize)> = None;
            for i in 0..n - 2 {
                let mut max_gap = 0u64;
                let mut prev = 0u64;
                for (j, &r) in kept.iter().enumerate() {
                    if j == i {
                        continue;
                    }
                    max_gap = max_gap.max(r.saturating_sub(prev));
                    prev = r;
                }
                if best.is_none_or(|(g, _)| max_gap < g) {
                    best = Some((max_gap, i));
                }
            }
            match best {
                Some((_, i)) => {
                    kept.remove(i);
                }
                None => break,
            }
        }
        kept
    }
}

/// The `GlobalPool` engine's complete between-rounds execution state.
#[derive(Debug, Clone)]
pub(crate) struct PoolState {
    /// Per-cell merged accumulators.
    pub accs: Vec<WasteAccum>,
    /// Per-cell next replication index.
    pub next: Vec<usize>,
    /// Per-cell still-running flags.
    pub active: Vec<bool>,
    /// Rounds fully merged into `accs`.
    pub rounds_done: u64,
}

impl PoolState {
    /// Fresh state for `cells` cells with a per-cell budget.
    pub fn fresh(cells: usize, budget: usize) -> Self {
        PoolState {
            accs: vec![WasteAccum::default(); cells],
            next: vec![0; cells],
            active: vec![budget > 0; cells],
            rounds_done: 0,
        }
    }
}

#[derive(Serialize, Deserialize)]
struct HeaderDoc {
    magic: String,
    version: u64,
    checksum: String,
}

#[derive(Serialize, Deserialize)]
struct PayloadDoc {
    spec_fingerprint: String,
    rounds_done: u64,
    /// Snapshot cadence (rounds per snapshot) the producing run was
    /// on. Resume honors it unless explicitly overridden — a silently
    /// rebased cadence mid-run was the bug this field fixes.
    checkpoint_every: u64,
    cells: Vec<CellDoc>,
}

#[derive(Serialize, Deserialize)]
struct CellDoc {
    waste: StatsDoc,
    failures: StatsDoc,
    completed: u64,
    fatal: u64,
    truncated: u64,
    next: u64,
    active: bool,
}

/// Raw Welford state with floats as hex bit-strings (see module docs
/// for why decimal is not an option).
#[derive(Serialize, Deserialize)]
struct StatsDoc {
    n: u64,
    mean: String,
    m2: String,
    min: String,
    max: String,
}

fn hex_bits(x: f64) -> String {
    format!("{:016x}", x.to_bits())
}

fn parse_bits(s: &str) -> Result<f64, String> {
    u64::from_str_radix(s, 16)
        .map(f64::from_bits)
        .map_err(|e| format!("bad float bit-string {s:?}: {e}"))
}

impl StatsDoc {
    fn encode(s: &OnlineStats) -> StatsDoc {
        let (n, mean, m2, min, max) = s.to_parts();
        StatsDoc {
            n,
            mean: hex_bits(mean),
            m2: hex_bits(m2),
            min: hex_bits(min),
            max: hex_bits(max),
        }
    }

    fn decode(&self) -> Result<OnlineStats, String> {
        Ok(OnlineStats::from_parts(
            self.n,
            parse_bits(&self.mean)?,
            parse_bits(&self.m2)?,
            parse_bits(&self.min)?,
            parse_bits(&self.max)?,
        ))
    }
}

/// FNV-1a 64-bit hash: tiny, dependency-free, and plenty for
/// detecting torn or bit-rotted snapshot payloads (not a defense
/// against adversarial tampering).
pub(crate) fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Stable fingerprint of a [`SweepSpec`], with the worker count
/// normalized to 0 before hashing — results are bit-identical across
/// worker counts, so two specs differing only in parallelism share a
/// fingerprint. Keys both checkpoint-snapshot ownership (resume
/// refuses a foreign fingerprint) and the serving layer's sweep-cell
/// cache (`dck serve` keys cached cells by fingerprint + coordinates).
pub fn sweep_spec_fingerprint(spec: &SweepSpec) -> u64 {
    spec_fingerprint(spec)
}

/// Fingerprint of the spec that produced a snapshot. Workers are
/// normalized to 0 before hashing: results are bit-identical across
/// worker counts, so resuming with different parallelism is fine.
pub(crate) fn spec_fingerprint(spec: &SweepSpec) -> u64 {
    let mut normalized = spec.clone();
    normalized.workers = 0;
    match serde_json::to_string(&normalized) {
        Ok(json) => fnv64(json.as_bytes()),
        // Serialization of a plain struct cannot fail with the vendored
        // serializer; treat the impossible as a distinct sentinel
        // rather than panicking a worker.
        Err(_) => u64::MAX,
    }
}

fn encode(state: &PoolState, fingerprint: u64, checkpoint_every: u64) -> io::Result<Vec<u8>> {
    let cells = state
        .accs
        .iter()
        .zip(&state.next)
        .zip(&state.active)
        .map(|((acc, &next), &active)| CellDoc {
            waste: StatsDoc::encode(&acc.waste),
            failures: StatsDoc::encode(&acc.failures),
            completed: acc.completed as u64,
            fatal: acc.fatal as u64,
            truncated: acc.truncated as u64,
            next: next as u64,
            active,
        })
        .collect();
    let payload = serde_json::to_string(&PayloadDoc {
        spec_fingerprint: format!("{fingerprint:016x}"),
        rounds_done: state.rounds_done,
        checkpoint_every,
        cells,
    })
    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    let header = serde_json::to_string(&HeaderDoc {
        magic: SNAPSHOT_MAGIC.to_string(),
        version: SNAPSHOT_VERSION,
        checksum: format!("{:016x}", fnv64(payload.as_bytes())),
    })
    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    Ok(format!("{header}\n{payload}\n").into_bytes())
}

/// Parses and integrity-checks a snapshot's bytes, returning the
/// payload. Every failure mode is a distinct message so `dck validate
/// --snapshot` can tell a user exactly what is wrong.
fn decode(bytes: &[u8]) -> Result<PayloadDoc, String> {
    let text = std::str::from_utf8(bytes).map_err(|e| format!("not UTF-8: {e}"))?;
    let mut lines = text.lines();
    let header_line = lines.next().ok_or("empty file")?;
    let payload_line = lines.next().ok_or("missing payload line")?;
    let header: HeaderDoc =
        serde_json::from_str(header_line).map_err(|e| format!("bad header: {e}"))?;
    if header.magic != SNAPSHOT_MAGIC {
        return Err(format!("bad magic {:?}", header.magic));
    }
    if header.version != SNAPSHOT_VERSION {
        return Err(format!(
            "unsupported snapshot version {} (supported: {SNAPSHOT_VERSION})",
            header.version
        ));
    }
    let computed = format!("{:016x}", fnv64(payload_line.as_bytes()));
    if header.checksum != computed {
        return Err(format!(
            "checksum mismatch: header says {}, payload hashes to {computed}",
            header.checksum
        ));
    }
    serde_json::from_str(payload_line).map_err(|e| format!("bad payload: {e}"))
}

fn state_from_payload(payload: &PayloadDoc) -> Result<PoolState, String> {
    let mut accs = Vec::with_capacity(payload.cells.len());
    let mut next = Vec::with_capacity(payload.cells.len());
    let mut active = Vec::with_capacity(payload.cells.len());
    for cell in &payload.cells {
        accs.push(WasteAccum {
            waste: cell.waste.decode()?,
            failures: cell.failures.decode()?,
            completed: cell.completed as usize,
            fatal: cell.fatal as usize,
            truncated: cell.truncated as usize,
        });
        next.push(cell.next as usize);
        active.push(cell.active);
    }
    Ok(PoolState {
        accs,
        next,
        active,
        rounds_done: payload.rounds_done,
    })
}

fn snapshot_path(dir: &Path, rounds_done: u64) -> PathBuf {
    dir.join(format!("sweep-r{rounds_done:08}.{SNAPSHOT_EXT}"))
}

/// Parses the round number out of a `sweep-r{N}.dckpt` file name.
/// Returns `None` for `.dckpt` files that don't follow the naming
/// scheme (they sort as oldest and are never preferred on resume).
fn snapshot_round(path: &Path) -> Option<u64> {
    let stem = path.file_stem()?.to_str()?;
    stem.strip_prefix("sweep-r")?.parse::<u64>().ok()
}

/// Lists the directory's snapshot files, sorted oldest → newest by the
/// **numeric** round component of the file name. Zero-padding makes
/// lexicographic order agree with round order up to 8 digits, but past
/// `r99999999` the padding overflows (`"r100000000" < "r99999999"`
/// lexicographically), so sorting by the parsed number is the only
/// ordering that is correct for every round count. Ties (and files
/// without a parseable round) fall back to path order for determinism.
fn list_snapshots(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut found = Vec::new();
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.extension().and_then(|e| e.to_str()) == Some(SNAPSHOT_EXT) {
            found.push(path);
        }
    }
    found.sort_by(|a, b| (snapshot_round(a), a.as_path()).cmp(&(snapshot_round(b), b.as_path())));
    Ok(found)
}

/// Writes the state as a new snapshot in `dir` (created if absent) and
/// prunes generations beyond the retention policy. Returns the
/// snapshot path.
///
/// # Errors
/// Any I/O error from directory creation or the atomic write; pruning
/// failures are ignored (stale snapshots are harmless).
pub(crate) fn write_snapshot(
    dir: &Path,
    state: &PoolState,
    fingerprint: u64,
    checkpoint_every: u64,
    retention: &RetentionPolicy,
) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let path = snapshot_path(dir, state.rounds_done);
    atomic_write(&path, &encode(state, fingerprint, checkpoint_every)?)?;
    prune_snapshots(dir, retention);
    Ok(path)
}

/// Removes snapshots beyond the retention budget. Only files that pass
/// the full checksum decode count against the budget — and only they
/// are candidates for *policy* removal, so a corrupt file on disk can
/// never push the newest valid snapshot out. Corrupt `.dckpt` files
/// themselves are deleted outright: they can never be loaded, and
/// leaving them around would shadow real generations in directory
/// listings.
fn prune_snapshots(dir: &Path, retention: &RetentionPolicy) {
    let Ok(all) = list_snapshots(dir) else { return };
    let mut valid: Vec<(u64, PathBuf)> = Vec::new();
    for path in all {
        let ok = fs::read(&path).map(|b| decode(&b).is_ok()).unwrap_or(false);
        if ok {
            valid.push((snapshot_round(&path).unwrap_or(0), path));
        } else {
            let _ = fs::remove_file(&path);
        }
    }
    let rounds: Vec<u64> = valid.iter().map(|(r, _)| *r).collect();
    let kept = retention.retain(&rounds);
    for (r, path) in &valid {
        if !kept.contains(r) {
            let _ = fs::remove_file(path);
        }
    }
}

/// What [`load_latest`] restored: the execution state plus the
/// snapshot-recorded run settings a resume must honor.
#[derive(Debug, Clone)]
pub(crate) struct ResumedSnapshot {
    /// The between-rounds execution state.
    pub state: PoolState,
    /// Snapshot cadence the interrupted run was on (rounds per
    /// snapshot; `max(1)`-normalized by the writer's caller).
    pub checkpoint_every: u64,
}

/// Loads the newest valid snapshot in `dir`, skipping corrupt files
/// (the buddy discipline: fall back to the previous generation).
/// Returns `Ok(None)` when the directory is absent, empty, or holds no
/// readable snapshot — the caller then starts fresh.
///
/// # Errors
/// A *valid* snapshot whose spec fingerprint differs from
/// `fingerprint` — resuming a different sweep's state would silently
/// produce wrong results, so this never falls through to fresh-start.
pub(crate) fn load_latest(
    dir: &Path,
    fingerprint: u64,
) -> Result<Option<ResumedSnapshot>, ModelError> {
    let snapshots = match list_snapshots(dir) {
        Ok(s) => s,
        Err(_) => return Ok(None),
    };
    for path in snapshots.iter().rev() {
        let Ok(bytes) = fs::read(path) else { continue };
        let Ok(payload) = decode(&bytes) else {
            continue;
        };
        let expect = format!("{fingerprint:016x}");
        if payload.spec_fingerprint != expect {
            return Err(ModelError::execution(format!(
                "snapshot {} was produced by a different sweep spec \
                 (fingerprint {} vs this spec's {expect}); refusing to resume",
                path.display(),
                payload.spec_fingerprint,
            )));
        }
        let state = state_from_payload(&payload)
            .map_err(|e| ModelError::execution(format!("snapshot {}: {e}", path.display())))?;
        return Ok(Some(ResumedSnapshot {
            state,
            checkpoint_every: payload.checkpoint_every,
        }));
    }
    Ok(None)
}

/// Summary of a validated snapshot, for `dck validate --snapshot`.
#[derive(Debug, Clone, Serialize)]
pub struct SnapshotInfo {
    /// Format version.
    pub version: u64,
    /// Rounds merged into the snapshot.
    pub rounds_done: u64,
    /// Grid cells tracked.
    pub cells: usize,
    /// Cells still consuming budget.
    pub active_cells: usize,
    /// Total replications already executed across the grid.
    pub replications_done: u64,
    /// Snapshot cadence (rounds per snapshot) recorded by the
    /// producing run.
    pub checkpoint_every: u64,
    /// Fingerprint (hex) of the producing sweep spec.
    pub spec_fingerprint: String,
}

/// Integrity-checks one snapshot file: header, magic, version,
/// checksum, payload schema, and float decodability.
///
/// # Errors
/// A human-readable description of the first problem found.
pub fn validate_snapshot(path: &Path) -> Result<SnapshotInfo, String> {
    let bytes = fs::read(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let payload = decode(&bytes)?;
    let state = state_from_payload(&payload)?;
    Ok(SnapshotInfo {
        version: SNAPSHOT_VERSION,
        rounds_done: payload.rounds_done,
        cells: state.accs.len(),
        active_cells: state.active.iter().filter(|&&a| a).count(),
        replications_done: state.next.iter().map(|&n| n as u64).sum(),
        checkpoint_every: payload.checkpoint_every,
        spec_fingerprint: payload.spec_fingerprint,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dck_core::{PlatformParams, Protocol};

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dck-ckpt-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// `write_snapshot` at the default cadence/retention (the shape
    /// every pre-v2 test exercised).
    fn write(dir: &Path, state: &PoolState, fp: u64) -> PathBuf {
        write_snapshot(dir, state, fp, 1, &RetentionPolicy::default()).unwrap()
    }

    /// `load_latest` projected onto the state (cadence covered by its
    /// own tests).
    fn load(dir: &Path, fp: u64) -> Result<Option<PoolState>, ModelError> {
        load_latest(dir, fp).map(|o| o.map(|r| r.state))
    }

    fn sample_state() -> PoolState {
        let mut s = PoolState::fresh(3, 10);
        s.accs[0].waste.push(0.25);
        s.accs[0].waste.push(0.5);
        s.accs[0].failures.push(3.0);
        s.accs[0].completed = 2;
        s.accs[1].fatal = 1;
        s.next = vec![8, 8, 0];
        s.active = vec![true, false, true];
        s.rounds_done = 1;
        s
    }

    fn spec() -> SweepSpec {
        SweepSpec::new(
            Protocol::DoubleNbl,
            PlatformParams::new(0.0, 2.0, 4.0, 10.0, 48).unwrap(),
            vec![0.5],
            vec![3_600.0],
        )
    }

    #[test]
    fn fnv64_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn snapshot_round_trip_is_bit_exact() {
        let dir = scratch("roundtrip");
        let state = sample_state();
        let path = write(&dir, &state, 42);
        assert!(path
            .file_name()
            .unwrap()
            .to_str()
            .unwrap()
            .contains("r00000001"));
        let restored = load(&dir, 42).unwrap().expect("snapshot present");
        assert_eq!(restored.rounds_done, 1);
        assert_eq!(restored.next, state.next);
        assert_eq!(restored.active, state.active);
        for (a, b) in restored.accs.iter().zip(&state.accs) {
            assert_eq!(a.completed, b.completed);
            assert_eq!(a.fatal, b.fatal);
            assert_eq!(a.truncated, b.truncated);
            assert_eq!(a.waste.mean().to_bits(), b.waste.mean().to_bits());
            assert_eq!(a.waste.variance().to_bits(), b.waste.variance().to_bits());
            // Empty accumulators: infinite extrema must survive.
            assert_eq!(a.waste.min().to_bits(), b.waste.min().to_bits());
            assert_eq!(a.waste.max().to_bits(), b.waste.max().to_bits());
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_newest_falls_back_to_buddy() {
        let dir = scratch("buddy");
        let mut state = sample_state();
        write(&dir, &state, 7);
        state.rounds_done = 2;
        state.next = vec![16, 8, 8];
        let newest = write(&dir, &state, 7);
        // Torn write under the final name (cannot happen through
        // atomic_write, but disks lie): flip payload bytes.
        let mut bytes = fs::read(&newest).unwrap();
        let n = bytes.len();
        bytes[n - 10] ^= 0xFF;
        fs::write(&newest, &bytes).unwrap();
        let restored = load(&dir, 7).unwrap().expect("buddy survives");
        assert_eq!(restored.rounds_done, 1, "fell back one generation");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn pruning_keeps_two_generations() {
        let dir = scratch("prune");
        let mut state = sample_state();
        for r in 1..=5 {
            state.rounds_done = r;
            write(&dir, &state, 1);
        }
        let files = list_snapshots(&dir).unwrap();
        assert_eq!(files.len(), 2);
        assert!(files[1].to_str().unwrap().contains("r00000005"));
        assert!(files[0].to_str().unwrap().contains("r00000004"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_picks_numerically_newest_across_digit_boundary() {
        // Round 9 → 10: the first place a naive unpadded name would
        // mis-sort. Zero-padding covers this one, but the test pins the
        // user-visible contract, not the mechanism.
        let dir = scratch("digit-boundary");
        let mut state = sample_state();
        state.rounds_done = 9;
        write(&dir, &state, 3);
        state.rounds_done = 10;
        state.next = vec![80, 80, 80];
        write(&dir, &state, 3);
        let restored = load(&dir, 3).unwrap().expect("snapshot present");
        assert_eq!(restored.rounds_done, 10, "resumed from round 9, not 10");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_picks_numerically_newest_past_padding_overflow() {
        // Round 99_999_999 → 100_000_000 overflows the 8-digit padding:
        // lexicographically "sweep-r100000000" < "sweep-r99999999", so
        // a plain `sort()` would resume from the OLDER snapshot and
        // prune the newer one. Numeric ordering must win.
        let dir = scratch("padding-overflow");
        let mut state = sample_state();
        state.rounds_done = 99_999_999;
        write(&dir, &state, 4);
        state.rounds_done = 100_000_000;
        state.next = vec![800, 800, 800];
        write(&dir, &state, 4);

        let files = list_snapshots(&dir).unwrap();
        assert_eq!(files.len(), 2, "both generations kept");
        assert!(
            files[1].to_str().unwrap().contains("r100000000"),
            "numerically newest sorts last: {files:?}"
        );

        let restored = load(&dir, 4).unwrap().expect("snapshot present");
        assert_eq!(restored.rounds_done, 100_000_000);
        assert_eq!(restored.next, vec![800, 800, 800]);

        // One more write must prune the numerically oldest generation,
        // not the lexicographically smallest.
        state.rounds_done = 100_000_001;
        write(&dir, &state, 4);
        let files = list_snapshots(&dir).unwrap();
        assert_eq!(files.len(), 2);
        assert!(files[0].to_str().unwrap().contains("r100000000"));
        assert!(files[1].to_str().unwrap().contains("r100000001"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fingerprint_mismatch_is_a_hard_error() {
        let dir = scratch("fp");
        write(&dir, &sample_state(), 1);
        let err = load(&dir, 2).unwrap_err();
        assert!(matches!(err, ModelError::Execution { .. }));
        assert!(err.to_string().contains("different sweep spec"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_dir_and_empty_dir_mean_fresh_start() {
        let dir = scratch("empty");
        assert!(load(&dir.join("nope"), 1).unwrap().is_none());
        assert!(load(&dir, 1).unwrap().is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn validate_reports_and_rejects() {
        let dir = scratch("validate");
        let path = write(&dir, &sample_state(), 9);
        let info = validate_snapshot(&path).unwrap();
        assert_eq!(info.version, SNAPSHOT_VERSION);
        assert_eq!(info.rounds_done, 1);
        assert_eq!(info.cells, 3);
        assert_eq!(info.active_cells, 2);
        assert_eq!(info.replications_done, 16);
        assert_eq!(info.spec_fingerprint, format!("{:016x}", 9u64));

        // Truncation: drop the payload's tail — checksum must catch it.
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 20]).unwrap();
        let err = validate_snapshot(&path).unwrap_err();
        assert!(err.contains("checksum mismatch"), "{err}");

        // Wrong version.
        let payload = r#"{"spec_fingerprint":"0","rounds_done":0,"cells":[]}"#;
        let header = format!(
            r#"{{"magic":"dck-sweep-snapshot","version":99,"checksum":"{:016x}"}}"#,
            fnv64(payload.as_bytes())
        );
        fs::write(&path, format!("{header}\n{payload}\n")).unwrap();
        let err = validate_snapshot(&path).unwrap_err();
        assert!(err.contains("unsupported snapshot version"), "{err}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn prune_never_removes_the_newest_valid_snapshot() {
        // The satellite-2 bug: the old prune trusted filename order, so
        // a corrupt newest file counted toward the keep budget and the
        // only loadable snapshot could be deleted. Validity-aware
        // pruning must keep the newest *valid* generation no matter how
        // much garbage sits above it.
        let dir = scratch("prune-corrupt");
        let mut state = sample_state();
        state.rounds_done = 1;
        write(&dir, &state, 11);
        // Plant two corrupt files that sort as the newest generations.
        for r in [2u64, 3] {
            fs::write(
                dir.join(format!("sweep-r{r:08}.{SNAPSHOT_EXT}")),
                b"{\"magic\":\"dck-sweep-snapshot\"",
            )
            .unwrap();
        }
        // A prune at default keep=2 with filename-order trust would
        // now delete sweep-r00000001 (three files, keep two newest by
        // name). Validity-aware pruning deletes the garbage instead.
        prune_snapshots(&dir, &RetentionPolicy::default());
        let files = list_snapshots(&dir).unwrap();
        assert_eq!(files.len(), 1, "{files:?}");
        assert!(files[0].to_str().unwrap().contains("r00000001"));
        let restored = load(&dir, 11).unwrap().expect("valid snapshot survives");
        assert_eq!(restored.rounds_done, 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_newest_does_not_evict_the_valid_pair_on_write() {
        // End-to-end through write_snapshot: generations 1 and 2 are
        // valid, 3 lands corrupt (disk lies), then generation 4 is
        // written. The corrupt file must not push round 2 out of the
        // keep-2 budget before round 4's write completes the new pair.
        let dir = scratch("prune-corrupt-write");
        let mut state = sample_state();
        for r in [1u64, 2] {
            state.rounds_done = r;
            write(&dir, &state, 12);
        }
        let newest = dir.join(format!("sweep-r{:08}.{SNAPSHOT_EXT}", 3));
        fs::write(&newest, b"torn").unwrap();
        state.rounds_done = 4;
        write(&dir, &state, 12);
        let files = list_snapshots(&dir).unwrap();
        let names: Vec<_> = files
            .iter()
            .map(|p| p.file_name().unwrap().to_str().unwrap().to_string())
            .collect();
        assert_eq!(
            names,
            vec!["sweep-r00000002.dckpt", "sweep-r00000004.dckpt"],
            "corrupt r3 deleted, newest valid pair kept"
        );
        assert_eq!(load(&dir, 12).unwrap().unwrap().rounds_done, 4);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn retention_policy_validates_like_k_buddy_groups() {
        assert!(RetentionPolicy::keep(0).is_err());
        assert!(RetentionPolicy::keep(1).is_err());
        assert!(RetentionPolicy::keep(MAX_SNAPSHOT_KEEP + 1).is_err());
        for k in DEFAULT_SNAPSHOT_KEEP..=MAX_SNAPSHOT_KEEP {
            assert_eq!(RetentionPolicy::keep(k).unwrap().generations(), k);
        }
        assert_eq!(
            RetentionPolicy::default().generations(),
            DEFAULT_SNAPSHOT_KEEP
        );
    }

    #[test]
    fn k_retention_keeps_a_well_spaced_history() {
        // Feed rounds 1..=T one at a time (the write pattern) and check
        // the 1302.4216-style guarantee: the newest two are always
        // retained, and the worst-case rewind — the largest gap between
        // consecutive retained rounds, anchored at 0 — stays within a
        // constant factor of the perfect T/(k-1) spacing.
        for keep in [3usize, 4, 6, 8] {
            let policy = RetentionPolicy::keep(keep).unwrap();
            let mut on_disk: Vec<u64> = Vec::new();
            for t in 1u64..=200 {
                on_disk.push(t);
                on_disk = policy.retain(&on_disk);
                assert!(on_disk.len() <= keep);
                assert!(on_disk.contains(&t), "newest retained (t={t})");
                if t > 1 {
                    assert!(on_disk.contains(&(t - 1)), "buddy retained (t={t})");
                }
                let mut prev = 0u64;
                let mut max_gap = 0u64;
                for &r in &on_disk {
                    max_gap = max_gap.max(r - prev);
                    prev = r;
                }
                let ideal = t.div_ceil(keep as u64 - 1).max(1);
                assert!(
                    max_gap <= 4 * ideal,
                    "keep={keep} t={t}: max gap {max_gap} vs ideal {ideal} ({on_disk:?})"
                );
            }
        }
    }

    #[test]
    fn keep_2_retention_matches_the_legacy_buddy_pair() {
        let policy = RetentionPolicy::default();
        assert_eq!(policy.retain(&[1, 2, 3, 4, 5]), vec![4, 5]);
        assert_eq!(policy.retain(&[7]), vec![7]);
        assert_eq!(policy.retain(&[]), Vec::<u64>::new());
    }

    #[test]
    fn cadence_round_trips_through_the_snapshot() {
        let dir = scratch("cadence");
        let state = sample_state();
        let path = write_snapshot(&dir, &state, 5, 3, &RetentionPolicy::default()).unwrap();
        let restored = load_latest(&dir, 5).unwrap().expect("snapshot present");
        assert_eq!(restored.checkpoint_every, 3);
        assert_eq!(validate_snapshot(&path).unwrap().checkpoint_every, 3);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fingerprint_ignores_workers_but_not_grid() {
        let a = spec();
        let mut b = spec();
        b.workers = 7;
        assert_eq!(spec_fingerprint(&a), spec_fingerprint(&b));
        let mut c = spec();
        c.mtbfs.push(7_200.0);
        assert_ne!(spec_fingerprint(&a), spec_fingerprint(&c));
        let mut d = spec();
        d.seed ^= 1;
        assert_ne!(spec_fingerprint(&a), spec_fingerprint(&d));
    }
}
