//! # dck-sim — platform simulator and Monte-Carlo harness
//!
//! Executes the buddy-checkpointing protocols of `dck-protocols`
//! against stochastic failure streams from `dck-failures`, producing
//! the two empirical quantities the paper's model predicts:
//!
//! * **waste** — run the application to completion of a fixed amount of
//!   useful work and compare wall-clock time against the failure-free
//!   time ([`run::run_to_completion`]);
//! * **success probability** — run the platform for a fixed
//!   exploitation time and record whether a fatal failure (total loss
//!   of a group's checkpoint data) ever occurs ([`run::run_until`]).
//!
//! [`montecarlo`] replicates runs across parallel workers with
//! independent, reproducible RNG streams, and aggregates results into
//! confidence intervals that the validation experiments compare against
//! Eqs. 5/7/8/14 (waste) and 11/16 (risk).
//!
//! ## Simulation semantics
//!
//! The application is coordinated: *any* failure rolls every node back
//! to the last committed snapshot. Between failures the platform
//! follows the deterministic period schedule, so the simulator advances
//! in O(1) per failure event regardless of how many periods elapse —
//! this is what makes million-node, million-failure runs cheap. A
//! failure at period offset `off` freezes application progress for the
//! outage `D + blocking + RE(off)` (the paper's case analysis,
//! implemented in `dck_protocols::response`); failures striking during
//! an outage roll the platform back again and restart the outage from
//! the same schedule position. Risk windows are wall-clock intervals of
//! the first-order model's fixed length, tracked per group.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adapt;
pub mod checkpoint;
pub mod config;
pub mod hierarchical;
pub mod montecarlo;
pub mod predict;
pub mod run;
pub mod sweep;

pub use adapt::{
    run_adaptive_predicted_to_completion, run_adaptive_to_completion, run_adaptive_traced,
    run_regret, AdaptiveOutcome, AdaptiveRunConfig, ArmStats, RegretCase, RegretResult,
    RegretScenario, RegretSpec,
};
pub use checkpoint::{
    sweep_spec_fingerprint, validate_snapshot, RetentionPolicy, SnapshotInfo,
    DEFAULT_SNAPSHOT_KEEP, MAX_SNAPSHOT_KEEP,
};
pub use config::{PeriodChoice, RunConfig};
pub use hierarchical::{run_hierarchical, HierarchicalOutcome, HierarchicalRunConfig};
pub use montecarlo::{
    estimate_success, estimate_waste, estimate_waste_reference, replication_source,
    MonteCarloConfig, SuccessEstimate, WasteEstimate,
};
pub use predict::{estimate_predicted_waste, run_predicted_to_completion, PredictedOutcome};
pub use run::{
    run_to_completion, run_to_completion_sinked, run_to_completion_traced,
    run_to_completion_with_pending, run_until, run_until_sinked, run_until_traced, RunOutcome,
    StopReason, TimelineEvent,
};
pub use sweep::{
    run_sweep, run_sweep_cell, run_sweep_with_checkpoint, EarlyStop, SweepCell, SweepCheckpoint,
    SweepEngine, SweepResult, SweepSpec,
};
