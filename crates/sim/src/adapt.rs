//! Closed-loop adaptive execution and the regret harness.
//!
//! The static machine ([`crate::run`]) resolves one period up front
//! and never revisits it. The adaptive executor here wires
//! [`dck_core::PeriodController`] into the same O(1)-per-failure loop:
//! every failure feeds the censored-MLE estimator, the controller is
//! consulted at **outage ends** (the instants fresh information just
//! arrived and the schedule is about to resume), and a committed
//! retune is applied at the **next period boundary** — the schedule is
//! never torn mid-period, the completed fraction of the old schedule
//! is committed as done work, and the new schedule starts from a
//! period boundary exactly as a fresh run would. Each applied retune
//! emits a [`TimelineEvent::Retune`] marker into traced timelines.
//!
//! With the controller disabled the executor *delegates* to the static
//! machine, so adaptation-off runs are bit-identical to
//! [`crate::run::run_to_completion`] by construction — the golden
//! corpus pins this.
//!
//! The **risk tracker** keeps the window length of the initial
//! operating point across retunes: the first-order window
//! `D + R + 2θ(φ)` does not depend on the period, so a pure period
//! retune is exact, and a `rescan_phi` retune changes the window by at
//! most the `θ` shift (second-order at the benign operating points the
//! harness probes).
//!
//! [`run_regret`] measures what adaptation buys: for each scenario it
//! runs three **paired** arms against the same failure stream —
//! *adaptive* (starts from the misspecified belief), *static
//! misspecified* (stuck with the bad belief forever), and *oracle
//! static* (the best fixed period a clairvoyant would pick) — and
//! reports `waste(adaptive) − waste(oracle)` plus whether the adaptive
//! arm beats the misspecified static one. Failures strike at
//! source-determined wall-clock times independent of the schedule, so
//! a fatal stream is fatal in every unpredicted arm and the pairing is
//! exact.

use crate::config::RunConfig;
use crate::run::{RunMachine, RunOutcome, Stop, StopReason, TimelineEvent};
use dck_core::{
    optimal_period, predict::proactive_cost, predicted_optimal_period, ControllerConfig,
    ModelError, PeriodController, PlatformParams, PredictorSpec, Protocol,
};
use dck_failures::{DriftingExponential, FailureSource, MtbfSpec};
use dck_simcore::{ConfidenceInterval, OnlineStats, RngFactory, SimTime};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration of an adaptive run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveRunConfig {
    /// The execution physics: protocol, platform, `φ`, the *initial*
    /// period (via [`RunConfig::resolve_period`]) and the failure cap.
    /// `base.mtbf` is only consulted when `base.period` is
    /// `PeriodChoice::Optimal`; the controller's belief is
    /// `prior_mtbf`.
    pub base: RunConfig,
    /// The MTBF the controller believes at time 0 (the possibly-wrong
    /// nameplate value). Kept separate from `base.mtbf` so regret
    /// arms can share identical physics while disagreeing on beliefs.
    pub prior_mtbf: f64,
    /// Controller policy (estimator window, hysteresis, gates).
    pub controller: ControllerConfig,
}

/// Outcome of one adaptive run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveOutcome {
    /// The base measurements (waste, failures, outage time, …).
    pub run: RunOutcome,
    /// Retunes applied to the schedule.
    pub retunes: u64,
    /// Period in force when the run ended (seconds).
    pub final_period: f64,
    /// The controller's final MTBF belief (the prior if it never
    /// retuned).
    pub believed_mtbf: f64,
}

/// Runs one adaptive replication until `t_base` units of useful work
/// complete. With `controller.enabled == false` this is exactly
/// [`crate::run::run_to_completion`] (bit-identical event handling —
/// it delegates to the same machine).
///
/// # Errors
/// Propagates configuration/controller validation; the failure source
/// must cover exactly the configuration's usable nodes.
pub fn run_adaptive_to_completion(
    cfg: &AdaptiveRunConfig,
    t_base: f64,
    source: &mut dyn FailureSource,
) -> Result<AdaptiveOutcome, ModelError> {
    run_adaptive_inner(cfg, t_base, source, |_| {})
}

/// Like [`run_adaptive_to_completion`], but records the full timeline
/// including [`TimelineEvent::Retune`] markers at the instants new
/// schedules took effect.
///
/// # Errors
/// Propagates configuration/controller validation.
pub fn run_adaptive_traced(
    cfg: &AdaptiveRunConfig,
    t_base: f64,
    source: &mut dyn FailureSource,
) -> Result<(AdaptiveOutcome, Vec<TimelineEvent>), ModelError> {
    let mut timeline = Vec::new();
    let out = run_adaptive_inner(cfg, t_base, source, |e| timeline.push(e))?;
    Ok((out, timeline))
}

fn machinery(
    base: &RunConfig,
    phi: f64,
    period: f64,
) -> Result<
    (
        dck_protocols::PeriodSchedule,
        dck_protocols::FailureResponse,
    ),
    ModelError,
> {
    let sched = dck_protocols::PeriodSchedule::new(base.protocol, &base.params, phi, period)?;
    let resp = dck_protocols::FailureResponse::for_schedule(&base.params, &sched)?;
    Ok((sched, resp))
}

fn run_adaptive_inner(
    cfg: &AdaptiveRunConfig,
    t_base: f64,
    source: &mut dyn FailureSource,
    mut observe: impl FnMut(TimelineEvent),
) -> Result<AdaptiveOutcome, ModelError> {
    cfg.controller.validate()?;
    if cfg.controller.predictor.is_some() {
        return Err(ModelError::invalid(
            "predictor",
            "use run_adaptive_predicted_to_completion for predictor-assisted runs",
        ));
    }
    let initial_period = cfg.base.resolve_period()?;
    if !cfg.controller.enabled {
        // Bit-identity by construction: the disabled adaptive machine
        // IS the static machine.
        let (run, _) = RunMachine::new(&cfg.base)?.drive(Stop::Work(t_base), source, observe)?;
        return Ok(AdaptiveOutcome {
            run,
            retunes: 0,
            final_period: initial_period,
            believed_mtbf: cfg.prior_mtbf,
        });
    }

    let mut controller = PeriodController::new(
        cfg.base.protocol,
        &cfg.base.params,
        cfg.base.phi,
        cfg.prior_mtbf,
        Some(initial_period),
        cfg.controller,
    )?;
    // The risk tracker keeps the initial window across retunes (see
    // module docs); schedule and response are rebuilt per retune.
    let (mut sched, mut resp, mut tracker) = cfg.base.build()?;
    if source.nodes() != cfg.base.usable_nodes() {
        return Err(ModelError::invalid(
            "failure_source",
            format!(
                "failure source covers {} nodes but the configuration simulates {} usable nodes",
                source.nodes(),
                cfg.base.usable_nodes()
            ),
        ));
    }
    tracker.reset();

    let outcome = |reason, t: f64, useful: f64, failures, outage_time, fatal_at| RunOutcome {
        reason,
        total_time: t,
        useful_work: useful,
        failures,
        outage_time,
        fatal_at,
    };
    let no_progress_finish = |observe: &mut dyn FnMut(TimelineEvent)| {
        observe(TimelineEvent::Finished {
            at: 0.0,
            reason: StopReason::NoProgress,
        });
        outcome(StopReason::NoProgress, f64::INFINITY, 0.0, 0, 0.0, None)
    };
    if sched.work_per_period() <= 0.0 {
        let run = no_progress_finish(&mut observe);
        return Ok(AdaptiveOutcome {
            run,
            retunes: 0,
            final_period: initial_period,
            believed_mtbf: cfg.prior_mtbf,
        });
    }

    let mut t = 0.0_f64; // wall clock
    let mut v = 0.0_f64; // position in the *current* schedule segment
    let mut done = 0.0_f64; // work committed by completed segments
    let mut outage: Option<(f64, f64)> = None; // (end time, period offset)
    let mut failures = 0u64;
    let mut outage_time = 0.0_f64;
    let mut pending: Option<dck_core::Retune> = None;
    let mut next = source.next_failure();

    loop {
        let next_at = next.at.as_secs();
        let in_outage_at_event = outage.is_some();
        match outage {
            None => {
                let remaining = t_base - done;
                let ve = sched.time_to_reach_work(remaining);
                let t_complete = t + (ve - v);
                // A committed retune takes effect at the next period
                // boundary, if the run gets there before completing
                // and before the next failure strikes.
                if let Some(r) = pending {
                    let p = sched.period();
                    let vb = (v / p).ceil() * p;
                    let ts = t + (vb - v);
                    if ts < t_complete && next_at >= ts {
                        pending = None;
                        done += sched.work_at(vb);
                        let (s, fr) = machinery(&cfg.base, r.phi, r.new_period)?;
                        sched = s;
                        resp = fr;
                        t = ts;
                        v = 0.0;
                        observe(TimelineEvent::Retune {
                            at: ts,
                            old_period: r.old_period,
                            new_period: r.new_period,
                            mtbf_estimate: r.mtbf_estimate,
                        });
                        if dck_obs::enabled() {
                            dck_obs::incr("adapt.retunes_applied");
                        }
                        if sched.work_per_period() <= 0.0 {
                            // A pathological retune target (saturated
                            // operating point): no further progress is
                            // possible.
                            let run = no_progress_finish(&mut observe);
                            return Ok(AdaptiveOutcome {
                                run,
                                retunes: controller.retunes(),
                                final_period: controller.current_period(),
                                believed_mtbf: controller.believed_mtbf(),
                            });
                        }
                        continue;
                    }
                }
                if next_at >= t_complete {
                    observe(TimelineEvent::Finished {
                        at: t_complete,
                        reason: StopReason::WorkComplete,
                    });
                    return Ok(AdaptiveOutcome {
                        run: outcome(
                            StopReason::WorkComplete,
                            t_complete,
                            done + remaining,
                            failures,
                            outage_time,
                            None,
                        ),
                        retunes: controller.retunes(),
                        final_period: controller.current_period(),
                        believed_mtbf: controller.believed_mtbf(),
                    });
                }
                v += next_at - t;
                t = next_at;
            }
            Some((end, _)) => {
                if next_at >= end {
                    observe(TimelineEvent::OutageEnd { at: end });
                    t = end;
                    outage = None;
                    // Consult the controller as the schedule resumes;
                    // one decision at a time — a committed retune must
                    // be applied before the next is considered.
                    if pending.is_none() {
                        pending = controller.maybe_retune(t)?;
                    }
                    continue;
                }
                // Failure during the outage: restart it (same
                // semantics as the static machine).
                outage_time -= end - next_at;
                t = next_at;
            }
        }

        failures += 1;
        controller.record_failure(t)?;
        let fail = tracker.record_failure(next.node, t);
        let off = v % sched.period();
        let o = resp.outage(off);
        observe(TimelineEvent::Failure {
            at: t,
            node: next.node,
            offset: off,
            outage: o.total(),
            fatal: fail.fatal,
            during_outage: in_outage_at_event,
        });
        if fail.fatal {
            observe(TimelineEvent::Finished {
                at: t,
                reason: StopReason::Fatal,
            });
            return Ok(AdaptiveOutcome {
                run: outcome(
                    StopReason::Fatal,
                    t,
                    done + sched.work_at(v),
                    failures,
                    outage_time,
                    Some(t),
                ),
                retunes: controller.retunes(),
                final_period: controller.current_period(),
                believed_mtbf: controller.believed_mtbf(),
            });
        }
        outage = Some((t + o.total(), off));
        outage_time += o.total();

        if failures >= cfg.base.max_failures {
            observe(TimelineEvent::Finished {
                at: t,
                reason: StopReason::FailureCapReached,
            });
            return Ok(AdaptiveOutcome {
                run: outcome(
                    StopReason::FailureCapReached,
                    t,
                    done + sched.work_at(v),
                    failures,
                    outage_time,
                    None,
                ),
                retunes: controller.retunes(),
                final_period: controller.current_period(),
                believed_mtbf: controller.believed_mtbf(),
            });
        }
        next = source.next_failure();
    }
}

/// Adaptive execution of the fault-prediction scenario: the serialized
/// predicted loop of [`crate::predict`] with the controller in the
/// loop. Requires `controller.predictor` (retunes optimize the
/// *predicted* waste model); `rng` drives the recall coins and the
/// false-alarm process exactly as in
/// [`crate::predict::run_predicted_to_completion`].
///
/// # Errors
/// Propagates configuration/controller/predictor validation.
pub fn run_adaptive_predicted_to_completion(
    cfg: &AdaptiveRunConfig,
    t_base: f64,
    source: &mut dyn FailureSource,
    rng: &mut StdRng,
) -> Result<AdaptiveOutcome, ModelError> {
    cfg.controller.validate()?;
    let Some(predictor) = cfg.controller.predictor else {
        return Err(ModelError::invalid(
            "predictor",
            "run_adaptive_predicted_to_completion requires controller.predictor",
        ));
    };
    predictor.validate()?;
    let cp = proactive_cost(&cfg.base.params);
    if predictor.recall > 0.0 && predictor.window < cp {
        return Err(ModelError::invalid(
            "window",
            format!(
                "lead window {} shorter than the proactive checkpoint {cp}",
                predictor.window
            ),
        ));
    }
    let initial_period = cfg.base.resolve_period()?;
    let mut controller = PeriodController::new(
        cfg.base.protocol,
        &cfg.base.params,
        cfg.base.phi,
        cfg.prior_mtbf,
        Some(initial_period),
        cfg.controller,
    )?;
    let (mut sched, mut resp, mut tracker) = cfg.base.build()?;
    if source.nodes() != cfg.base.usable_nodes() {
        return Err(ModelError::invalid(
            "failure_source",
            format!(
                "failure source covers {} nodes but the configuration simulates {} usable nodes",
                source.nodes(),
                cfg.base.usable_nodes()
            ),
        ));
    }
    tracker.reset();
    let finish_state = |run| AdaptiveOutcome {
        run,
        retunes: 0,
        final_period: initial_period,
        believed_mtbf: cfg.prior_mtbf,
    };
    if sched.work_per_period() <= 0.0 {
        return Ok(finish_state(RunOutcome {
            reason: StopReason::NoProgress,
            total_time: f64::INFINITY,
            useful_work: 0.0,
            failures: 0,
            outage_time: 0.0,
            fatal_at: None,
        }));
    }

    let d = cfg.base.params.downtime;
    let rec = cfg.base.params.recovery();
    let w = predictor.window;
    // Physics: false alarms are a property of the machine's true
    // failure rate, which `base.mtbf` carries (the controller's
    // *belief* lives in `prior_mtbf`).
    let far = predictor.false_alarm_rate(cfg.base.mtbf);
    let exp_gap = |rng: &mut StdRng| -> f64 {
        let u: f64 = rng.gen();
        -(1.0 - u).ln() / far
    };
    let draw = |source: &mut dyn FailureSource, rng: &mut StdRng| {
        let ev = source.next_failure();
        let coin: f64 = rng.gen();
        (ev, coin < predictor.recall)
    };

    let mut t = 0.0_f64;
    let mut v = 0.0_f64; // position in the current schedule segment
    let mut done = 0.0_f64;
    let mut outage_time = 0.0_f64;
    let mut failures = 0u64;
    let mut pending: Option<dck_core::Retune> = None;
    let (mut fault, mut fault_predicted) = draw(source, rng);
    let mut next_false = if far > 0.0 {
        exp_gap(rng)
    } else {
        f64::INFINITY
    };

    let outcome = |reason, t: f64, useful: f64, failures, outage_time, fatal_at| RunOutcome {
        reason,
        total_time: t,
        useful_work: useful,
        failures,
        outage_time,
        fatal_at,
    };

    loop {
        let fault_at = fault.at.as_secs();
        let alarm_at = if fault_predicted {
            fault_at - w
        } else {
            f64::INFINITY
        };
        let effective_alarm = fault_predicted && alarm_at >= t;
        let next_event = if effective_alarm {
            alarm_at.min(next_false)
        } else {
            fault_at.min(next_false)
        };

        let remaining = t_base - done;
        let ve = sched.time_to_reach_work(remaining);
        let t_complete = t + (ve - v);

        // Boundary retune, if it precedes the next disruption and the
        // completion instant.
        if let Some(r) = pending {
            let p = sched.period();
            let vb = (v / p).ceil() * p;
            let ts = t + (vb - v);
            if ts < t_complete && next_event >= ts {
                pending = None;
                done += sched.work_at(vb);
                let (s, fr) = machinery(&cfg.base, r.phi, r.new_period)?;
                sched = s;
                resp = fr;
                t = ts;
                v = 0.0;
                if dck_obs::enabled() {
                    dck_obs::incr("adapt.retunes_applied");
                }
                if sched.work_per_period() <= 0.0 {
                    return Ok(AdaptiveOutcome {
                        run: outcome(
                            StopReason::NoProgress,
                            f64::INFINITY,
                            done,
                            failures,
                            outage_time,
                            None,
                        ),
                        retunes: controller.retunes(),
                        final_period: controller.current_period(),
                        believed_mtbf: controller.believed_mtbf(),
                    });
                }
                continue;
            }
        }

        if t_complete <= next_event {
            return Ok(AdaptiveOutcome {
                run: outcome(
                    StopReason::WorkComplete,
                    t_complete,
                    done + remaining,
                    failures,
                    outage_time,
                    None,
                ),
                retunes: controller.retunes(),
                final_period: controller.current_period(),
                believed_mtbf: controller.believed_mtbf(),
            });
        }

        if next_false <= next_event {
            let at = next_false.max(t);
            v += at - t;
            t = at + cp;
            outage_time += cp;
            next_false = t + exp_gap(rng);
            continue;
        }

        if effective_alarm {
            let at = alarm_at.max(t);
            v += at - t;
            t = at + cp;
            outage_time += cp;
            let snap_v = v;
            if fault_at > t {
                v += fault_at - t;
                t = fault_at;
            }
            failures += 1;
            let fail = tracker.record_failure(fault.node, fault_at);
            if fail.fatal {
                return Ok(AdaptiveOutcome {
                    run: outcome(
                        StopReason::Fatal,
                        t,
                        done + v,
                        failures,
                        outage_time,
                        Some(t),
                    ),
                    retunes: controller.retunes(),
                    final_period: controller.current_period(),
                    believed_mtbf: controller.believed_mtbf(),
                });
            }
            let o = d + rec + (v - snap_v);
            t += o;
            outage_time += o;
        } else {
            let at = fault_at.max(t);
            v += at - t;
            t = at;
            failures += 1;
            let fail = tracker.record_failure(fault.node, fault_at);
            if fail.fatal {
                return Ok(AdaptiveOutcome {
                    run: outcome(
                        StopReason::Fatal,
                        t,
                        done + sched.work_at(v),
                        failures,
                        outage_time,
                        Some(t),
                    ),
                    retunes: controller.retunes(),
                    final_period: controller.current_period(),
                    believed_mtbf: controller.believed_mtbf(),
                });
            }
            let off = v % sched.period();
            let o = resp.outage(off).total();
            t += o;
            outage_time += o;
        }

        controller.record_failure(fault_at)?;
        if pending.is_none() {
            pending = controller.maybe_retune(t)?;
        }

        if failures >= cfg.base.max_failures {
            return Ok(AdaptiveOutcome {
                run: outcome(
                    StopReason::FailureCapReached,
                    t,
                    done + sched.work_at(v),
                    failures,
                    outage_time,
                    None,
                ),
                retunes: controller.retunes(),
                final_period: controller.current_period(),
                believed_mtbf: controller.believed_mtbf(),
            });
        }
        (fault, fault_predicted) = draw(source, rng);
    }
}

// ---------------------------------------------------------------------------
// Regret harness
// ---------------------------------------------------------------------------

/// One scenario shape for the regret harness.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RegretScenario {
    /// Stationary platform at the true MTBF; the nameplate belief is
    /// `factor ×` the truth.
    Misspecified {
        /// Believed MTBF = `factor × true_mtbf`.
        factor: f64,
    },
    /// The platform MTBF drifts linearly from `true_mtbf` to
    /// `end_factor × true_mtbf` over the run's work horizon; the
    /// static arms hold the period picked for the *starting* MTBF,
    /// the oracle holds the period for the horizon-effective MTBF.
    Drift {
        /// Final MTBF = `end_factor × true_mtbf`.
        end_factor: f64,
    },
    /// Stationary misspecified platform running the fault-prediction
    /// protocol: all arms execute with the predictor, and periods come
    /// from the predicted waste model.
    Predicted {
        /// Believed MTBF = `factor × true_mtbf`.
        factor: f64,
        /// The (correctly known) predictor characteristics.
        predictor: PredictorSpec,
    },
}

/// A named scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegretCase {
    /// Display name (stable across reports).
    pub name: String,
    /// The scenario shape.
    pub scenario: RegretScenario,
}

/// Specification of a regret measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegretSpec {
    /// Protocol under test.
    pub protocol: Protocol,
    /// Platform parameters.
    pub params: PlatformParams,
    /// Overhead `φ`.
    pub phi: f64,
    /// The platform's *actual* MTBF at time 0 (seconds).
    pub true_mtbf: f64,
    /// Useful work per replication, in multiples of `true_mtbf` — the
    /// estimator needs failures to learn from, so this should be large
    /// enough for `O(100)` failures.
    pub work_in_mtbfs: f64,
    /// Replications per arm.
    pub replications: usize,
    /// Master seed; arms share per-replication failure streams.
    pub seed: u64,
    /// Controller policy for the adaptive arm. For drift scenarios a
    /// `half_life` of `work / 8` is applied when none is configured
    /// (an unwindowed estimator averages the whole ramp and lags it).
    pub controller: ControllerConfig,
    /// The scenarios to measure.
    pub cases: Vec<RegretCase>,
}

/// Aggregated waste of one arm.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArmStats {
    /// Mean waste over completed replications.
    pub mean_waste: f64,
    /// Half-width of the 95% CI on the mean waste.
    pub ci95_half_width: f64,
    /// Replications that completed their work.
    pub completed: usize,
    /// Replications ended by a fatal failure.
    pub fatal: usize,
    /// Replications ended by the failure cap.
    pub truncated: usize,
}

impl ArmStats {
    fn from_stats(stats: &OnlineStats, fatal: usize, truncated: usize) -> ArmStats {
        let ci = if stats.count() > 1 {
            ConfidenceInterval::from_stats(stats, 0.95).half_width
        } else {
            f64::INFINITY
        };
        ArmStats {
            mean_waste: stats.mean(),
            ci95_half_width: ci,
            completed: stats.count() as usize,
            fatal,
            truncated,
        }
    }
}

/// Regret measurement for one scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegretResult {
    /// Scenario name.
    pub name: String,
    /// The scenario that produced this row.
    pub scenario: RegretScenario,
    /// The believed (nameplate) MTBF the static/adaptive arms start
    /// from (seconds).
    pub believed_mtbf: f64,
    /// The MTBF a clairvoyant would plan for (seconds): the true MTBF,
    /// or the horizon-effective MTBF under drift.
    pub oracle_mtbf: f64,
    /// Period of the misspecified static arm (seconds).
    pub static_period: f64,
    /// Period of the oracle arm (seconds).
    pub oracle_period: f64,
    /// The adaptive arm.
    pub adaptive: ArmStats,
    /// The static arm stuck with the misspecified period.
    pub static_arm: ArmStats,
    /// The oracle static arm.
    pub oracle: ArmStats,
    /// `adaptive.mean_waste − oracle.mean_waste` (the price of
    /// learning online).
    pub regret: f64,
    /// `regret / oracle.mean_waste`.
    pub regret_ratio: f64,
    /// Whether the adaptive arm strictly beats the misspecified
    /// static arm.
    pub beats_static: bool,
    /// Mean retunes applied per adaptive replication.
    pub retunes_mean: f64,
}

/// Per-case seed decorrelation (same discipline as the sweep grid).
fn case_seed(master: u64, index: usize) -> u64 {
    master
        .wrapping_add((index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0xD1B5_4A32_D192_ED03)
}

/// Runs the full regret measurement.
///
/// # Errors
/// Propagates configuration validation and optimizer failures.
pub fn run_regret(spec: &RegretSpec) -> Result<Vec<RegretResult>, ModelError> {
    spec.params.validate()?;
    spec.controller.validate()?;
    if !(spec.true_mtbf.is_finite() && spec.true_mtbf > 0.0) {
        return Err(ModelError::invalid("true_mtbf", "must be finite and > 0"));
    }
    if spec.replications == 0 {
        return Err(ModelError::invalid("replications", "must be >= 1"));
    }
    if !(spec.work_in_mtbfs.is_finite() && spec.work_in_mtbfs > 0.0) {
        return Err(ModelError::invalid(
            "work_in_mtbfs",
            "must be finite and > 0",
        ));
    }
    let t_base = spec.work_in_mtbfs * spec.true_mtbf;
    let mut results = Vec::with_capacity(spec.cases.len());
    for (ci, case) in spec.cases.iter().enumerate() {
        results.push(run_case(spec, case, t_base, case_seed(spec.seed, ci))?);
    }
    Ok(results)
}

fn run_case(
    spec: &RegretSpec,
    case: &RegretCase,
    t_base: f64,
    seed: u64,
) -> Result<RegretResult, ModelError> {
    let m_true = spec.true_mtbf;
    let (believed, oracle_mtbf, predictor) = match case.scenario {
        RegretScenario::Misspecified { factor } => (factor * m_true, m_true, None),
        RegretScenario::Drift { end_factor } => {
            let m1 = end_factor * m_true;
            // Log-mean of the ramp endpoints = the stationary MTBF with
            // the same expected failure count over the horizon.
            let eff = if (m1 - m_true).abs() < 1e-12 {
                m_true
            } else {
                (m1 - m_true) / (m1 / m_true).ln()
            };
            (m_true, eff, None)
        }
        RegretScenario::Predicted { factor, predictor } => {
            (factor * m_true, m_true, Some(predictor))
        }
    };
    let solve = |m: f64| -> Result<f64, ModelError> {
        match &predictor {
            Some(p) => {
                Ok(predicted_optimal_period(spec.protocol, &spec.params, spec.phi, p, m)?.period)
            }
            None => Ok(optimal_period(spec.protocol, &spec.params, spec.phi, m)?.period),
        }
    };
    let static_period = solve(believed)?;
    let oracle_period = solve(oracle_mtbf)?;

    let mut controller = spec.controller;
    controller.enabled = true;
    controller.predictor = predictor;
    if matches!(case.scenario, RegretScenario::Drift { .. }) && controller.half_life.is_none() {
        controller.half_life = Some(t_base / 8.0);
    }

    // All arms share the physics config (true MTBF, explicit periods).
    let arm_cfg = |period: f64| -> RunConfig {
        let mut c = RunConfig::new(spec.protocol, spec.params, spec.phi, m_true);
        c.period = crate::config::PeriodChoice::Explicit(period);
        c
    };
    let static_cfg = arm_cfg(static_period);
    let oracle_cfg = arm_cfg(oracle_period);
    let adaptive_cfg = AdaptiveRunConfig {
        base: static_cfg,
        prior_mtbf: believed,
        controller,
    };
    let usable = static_cfg.usable_nodes();
    let factory = RngFactory::new(seed);
    let source = |rep: u64| -> Box<dyn FailureSource> {
        let stream = factory.component_stream("failures", rep);
        match case.scenario {
            RegretScenario::Drift { end_factor } => Box::new(DriftingExponential::new(
                m_true,
                end_factor * m_true,
                t_base,
                usable,
                stream,
            )),
            _ => Box::new(dck_failures::AggregatedExponential::new(
                MtbfSpec::Platform {
                    mtbf: SimTime::seconds(m_true),
                    nodes: usable,
                },
                stream,
            )),
        }
    };

    let mut stats = [
        OnlineStats::default(),
        OnlineStats::default(),
        OnlineStats::default(),
    ];
    let mut fatal = [0usize; 3];
    let mut truncated = [0usize; 3];
    let mut retunes = OnlineStats::default();
    for rep in 0..spec.replications as u64 {
        // Paired arms: identical failure stream; identical predictor
        // stream where applicable.
        let run_static = |cfg: &RunConfig| -> Result<RunOutcome, ModelError> {
            let mut src = source(rep);
            match &predictor {
                Some(p) => {
                    let mut rng = factory.component_stream("predictor", rep);
                    crate::predict::run_predicted_to_completion(
                        cfg,
                        p,
                        t_base,
                        src.as_mut(),
                        &mut rng,
                    )
                    .map(|o| o.run)
                }
                None => crate::run::run_to_completion(cfg, t_base, src.as_mut()),
            }
        };
        let adaptive_out = {
            let mut src = source(rep);
            match &predictor {
                Some(_) => {
                    let mut rng = factory.component_stream("predictor", rep);
                    run_adaptive_predicted_to_completion(
                        &adaptive_cfg,
                        t_base,
                        src.as_mut(),
                        &mut rng,
                    )?
                }
                None => run_adaptive_to_completion(&adaptive_cfg, t_base, src.as_mut())?,
            }
        };
        retunes.push(adaptive_out.retunes as f64);
        let outs = [
            adaptive_out.run,
            run_static(&static_cfg)?,
            run_static(&oracle_cfg)?,
        ];
        for (i, out) in outs.iter().enumerate() {
            match out.reason {
                StopReason::WorkComplete => stats[i].push(out.waste()),
                StopReason::Fatal => fatal[i] += 1,
                _ => truncated[i] += 1,
            }
        }
    }

    let adaptive = ArmStats::from_stats(&stats[0], fatal[0], truncated[0]);
    let static_arm = ArmStats::from_stats(&stats[1], fatal[1], truncated[1]);
    let oracle = ArmStats::from_stats(&stats[2], fatal[2], truncated[2]);
    let regret = adaptive.mean_waste - oracle.mean_waste;
    let regret_ratio = if oracle.mean_waste > 0.0 {
        regret / oracle.mean_waste
    } else {
        0.0
    };
    Ok(RegretResult {
        name: case.name.clone(),
        scenario: case.scenario,
        believed_mtbf: believed,
        oracle_mtbf,
        static_period,
        oracle_period,
        adaptive,
        static_arm,
        oracle,
        regret,
        regret_ratio,
        beats_static: adaptive.mean_waste < static_arm.mean_waste,
        retunes_mean: retunes.mean(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PeriodChoice;
    use crate::run::run_to_completion_traced;
    use dck_failures::AggregatedExponential;

    fn base_params(nodes: u64) -> PlatformParams {
        PlatformParams::new(0.0, 2.0, 4.0, 10.0, nodes).unwrap()
    }

    fn static_cfg(nodes: u64, mtbf: f64, period: f64) -> RunConfig {
        let mut c = RunConfig::new(Protocol::DoubleNbl, base_params(nodes), 1.0, mtbf);
        c.period = PeriodChoice::Explicit(period);
        c
    }

    fn platform_source(mtbf: f64, nodes: u64, seed: u64) -> AggregatedExponential {
        AggregatedExponential::new(
            MtbfSpec::Platform {
                mtbf: SimTime::seconds(mtbf),
                nodes,
            },
            RngFactory::new(seed).component_stream("failures", 0),
        )
    }

    #[test]
    fn disabled_controller_is_bit_identical_to_static() {
        let m = 7.0 * 3600.0;
        let cfg = static_cfg(8, m, 600.0);
        let t_base = 40.0 * m;
        let (base_out, base_tl) =
            run_to_completion_traced(&cfg, t_base, &mut platform_source(m, 8, 11)).unwrap();
        let adaptive = AdaptiveRunConfig {
            base: cfg,
            prior_mtbf: m / 4.0,
            controller: ControllerConfig {
                enabled: false,
                ..ControllerConfig::default()
            },
        };
        let (out, tl) =
            run_adaptive_traced(&adaptive, t_base, &mut platform_source(m, 8, 11)).unwrap();
        // Exact equality, not tolerance: the disabled machine IS the
        // static machine.
        assert_eq!(out.run, base_out);
        assert_eq!(tl, base_tl);
        assert_eq!(out.retunes, 0);
    }

    #[test]
    fn misspecified_prior_converges_and_closes_the_gap() {
        let m = 3600.0;
        let believed = m / 4.0;
        let p_static = optimal_period(Protocol::DoubleNbl, &base_params(16), 1.0, believed)
            .unwrap()
            .period;
        let p_oracle = optimal_period(Protocol::DoubleNbl, &base_params(16), 1.0, m)
            .unwrap()
            .period;
        let cfg = AdaptiveRunConfig {
            base: static_cfg(16, m, p_static),
            prior_mtbf: believed,
            controller: ControllerConfig::default(),
        };
        let t_base = 150.0 * m;
        let out =
            run_adaptive_to_completion(&cfg, t_base, &mut platform_source(m, 16, 23)).unwrap();
        assert_eq!(out.run.reason, StopReason::WorkComplete);
        assert!(out.retunes >= 1, "controller never retuned");
        // ~150+ failures: the MLE should be well within 30% of truth,
        // and the final period far closer to the oracle's than the
        // misspecified starting point was.
        assert!(
            (out.believed_mtbf - m).abs() / m < 0.3,
            "believed {} vs true {m}",
            out.believed_mtbf
        );
        let gap_start = (p_static - p_oracle).abs();
        let gap_end = (out.final_period - p_oracle).abs();
        assert!(
            gap_end < 0.5 * gap_start,
            "final period {} did not approach oracle {p_oracle} (start {p_static})",
            out.final_period
        );
    }

    #[test]
    fn retune_events_appear_in_the_trace_and_match_the_outcome() {
        let m = 3600.0;
        let cfg = AdaptiveRunConfig {
            base: static_cfg(16, m, 200.0),
            prior_mtbf: m / 4.0,
            controller: ControllerConfig::default(),
        };
        let (out, tl) =
            run_adaptive_traced(&cfg, 120.0 * m, &mut platform_source(m, 16, 31)).unwrap();
        let retunes: Vec<_> = tl
            .iter()
            .filter(|e| matches!(e, TimelineEvent::Retune { .. }))
            .collect();
        assert_eq!(retunes.len() as u64, out.retunes);
        assert!(!retunes.is_empty());
        // Retune markers must be causally ordered and chain old→new.
        let mut last_t = 0.0;
        let mut period = 200.0;
        for e in &retunes {
            if let TimelineEvent::Retune {
                at,
                old_period,
                new_period,
                mtbf_estimate,
            } = e
            {
                assert!(*at >= last_t);
                assert!((old_period - period).abs() < 1e-9);
                assert!(mtbf_estimate.is_finite() && *mtbf_estimate > 0.0);
                last_t = *at;
                period = *new_period;
            }
        }
        assert!((period - out.final_period).abs() < 1e-9);
    }

    #[test]
    fn adaptive_predicted_requires_a_predictor_and_completes_with_one() {
        let m = 3600.0;
        let cfg = AdaptiveRunConfig {
            base: static_cfg(12, m, 300.0),
            prior_mtbf: m / 2.0,
            controller: ControllerConfig::default(),
        };
        let mut rng = RngFactory::new(5).component_stream("predictor", 0);
        let err = run_adaptive_predicted_to_completion(
            &cfg,
            10.0 * m,
            &mut platform_source(m, 12, 41),
            &mut rng,
        )
        .unwrap_err();
        assert!(err.to_string().contains("predictor"), "{err}");

        let with = AdaptiveRunConfig {
            controller: ControllerConfig {
                predictor: Some(PredictorSpec::new(0.9, 0.7, 60.0)),
                ..ControllerConfig::default()
            },
            ..cfg
        };
        let out = run_adaptive_predicted_to_completion(
            &with,
            60.0 * m,
            &mut platform_source(m, 12, 41),
            &mut rng,
        )
        .unwrap();
        assert_eq!(out.run.reason, StopReason::WorkComplete);
        assert!(out.run.failures > 0);
        assert!(out.run.waste() > 0.0 && out.run.waste() < 1.0);
    }

    #[test]
    fn unpredicted_runner_rejects_a_predictor() {
        let cfg = AdaptiveRunConfig {
            base: static_cfg(8, 3600.0, 300.0),
            prior_mtbf: 3600.0,
            controller: ControllerConfig {
                predictor: Some(PredictorSpec::new(0.9, 0.7, 60.0)),
                ..ControllerConfig::default()
            },
        };
        let err = run_adaptive_to_completion(&cfg, 1000.0, &mut platform_source(3600.0, 8, 1))
            .unwrap_err();
        assert!(err.to_string().contains("predicted"), "{err}");
    }

    #[test]
    fn regret_harness_stationary_misspecification() {
        let spec = RegretSpec {
            protocol: Protocol::DoubleNbl,
            params: base_params(16),
            phi: 1.0,
            true_mtbf: 3600.0,
            work_in_mtbfs: 80.0,
            replications: 12,
            seed: 97,
            controller: ControllerConfig::default(),
            cases: vec![
                RegretCase {
                    name: "over".into(),
                    scenario: RegretScenario::Misspecified { factor: 4.0 },
                },
                RegretCase {
                    name: "under".into(),
                    scenario: RegretScenario::Misspecified { factor: 0.25 },
                },
            ],
        };
        let results = run_regret(&spec).unwrap();
        assert_eq!(results.len(), 2);
        for r in &results {
            assert!(r.adaptive.completed > 0, "{}: no completions", r.name);
            // The adaptive arm must recover most of the misspecification
            // penalty: closer to the oracle than the static arm is.
            assert!(
                r.beats_static,
                "{}: adaptive {} vs static {}",
                r.name, r.adaptive.mean_waste, r.static_arm.mean_waste
            );
            assert!(
                r.regret_ratio < 0.25,
                "{}: regret ratio {}",
                r.name,
                r.regret_ratio
            );
            assert!(r.retunes_mean >= 1.0);
        }
    }

    #[test]
    fn regret_harness_drift_beats_static() {
        let spec = RegretSpec {
            protocol: Protocol::DoubleNbl,
            params: base_params(16),
            phi: 1.0,
            true_mtbf: 3600.0,
            work_in_mtbfs: 80.0,
            replications: 12,
            seed: 131,
            controller: ControllerConfig::default(),
            cases: vec![RegretCase {
                name: "degrading".into(),
                scenario: RegretScenario::Drift { end_factor: 0.25 },
            }],
        };
        let r = &run_regret(&spec).unwrap()[0];
        assert!(r.adaptive.completed > 0);
        assert!(
            r.beats_static,
            "adaptive {} vs static {}",
            r.adaptive.mean_waste, r.static_arm.mean_waste
        );
        // Oracle belief for the ramp is the log-mean of the endpoints.
        let expect = (0.25_f64 * 3600.0 - 3600.0) / 0.25_f64.ln();
        assert!((r.oracle_mtbf - expect).abs() < 1e-6);
    }
}
