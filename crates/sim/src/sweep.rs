//! Parameter sweeps: simulated waste over a `(φ/R, MTBF)` grid.
//!
//! The experiments crate draws the paper's figures from the analytical
//! model; this module is the simulation-side counterpart: take a grid
//! of operating points, estimate the waste at every cell by Monte
//! Carlo, and return a typed table of confidence intervals ready for
//! CSV/plotting — the raw material for a *simulated* Figure 4/7.
//!
//! # Execution engines
//!
//! Two engines produce **bit-identical** results:
//!
//! - [`SweepEngine::PerCell`] (the historical behavior): cells run one
//!   after another, each spawning its own worker fan-out with a
//!   barrier before the next cell. Simple, but on grids with many
//!   small cells the per-cell spawn/join overhead and the idle tail at
//!   every barrier dominate.
//! - [`SweepEngine::GlobalPool`] (default): every `(cell,
//!   replication-chunk)` pair of the whole grid is flattened into one
//!   index space and executed by a single work-stealing pool. Workers
//!   are spawned once per round (once per sweep without early
//!   stopping), and a slow cell's tail overlaps other cells' work.
//!
//! # Reproducibility
//!
//! Replication `i` of a cell derives its RNG stream from `(cell seed,
//! i)` only. Outcomes fold into per-chunk accumulators of
//! [`REP_CHUNK`](crate::montecarlo) consecutive replications, and
//! chunk accumulators merge in ascending chunk order — so every
//! `(engine, workers)` combination yields the same bits.
//!
//! # Early stopping
//!
//! With [`SweepSpec::early_stop`] set, replications run in rounds of
//! [`EarlyStop::batch`]; after each round a cell whose 95% CI
//! half-width has dropped to the target stops consuming budget. The
//! schedule is deterministic: stop decisions depend only on the
//! (worker-independent) accumulated statistics at fixed round
//! boundaries, never on thread timing.

use crate::config::{PeriodChoice, RunConfig};
use crate::montecarlo::{run_replication, MonteCarloConfig, SourceKind, WasteAccum, REP_CHUNK};
use dck_core::{optimal_period, ModelError, PlatformParams, Protocol};
use dck_obs::Counter;
use dck_simcore::par::{default_workers, parallel_map_indexed};
use dck_simcore::ConfidenceInterval;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// How the sweep distributes work across threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum SweepEngine {
    /// One Monte-Carlo estimator per cell: a fresh worker fan-out and
    /// barrier for every cell (the historical engine; kept for
    /// comparison and benchmarking).
    PerCell,
    /// All `(cell, replication-chunk)` units of the grid flattened
    /// into a single work-stealing pool.
    #[default]
    GlobalPool,
}

/// Per-cell adaptive early stopping.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EarlyStop {
    /// Stop refining a cell once its 95% CI half-width on the mean
    /// waste is at or below this.
    pub target_half_width: f64,
    /// Replications every cell must run before stopping is considered
    /// (the deterministic minimum batch).
    pub min_replications: usize,
    /// Round granularity: convergence is re-checked every `batch`
    /// replications (rounded up to a multiple of the chunk size).
    pub batch: usize,
}

impl EarlyStop {
    /// Early stopping at the given half-width target with default
    /// minimum (16) and batch (32).
    pub fn at_half_width(target_half_width: f64) -> Self {
        EarlyStop {
            target_half_width,
            min_replications: 16,
            batch: 32,
        }
    }
}

/// Specification of a waste sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepSpec {
    /// Protocol to sweep.
    pub protocol: Protocol,
    /// Platform parameters.
    pub params: PlatformParams,
    /// Overhead ratios `φ/R` to sample; each must lie in `[0, 1]`.
    pub phi_ratios: Vec<f64>,
    /// Platform MTBFs (seconds) to sample.
    pub mtbfs: Vec<f64>,
    /// Useful work per run, in multiples of the cell's MTBF.
    pub work_in_mtbfs: f64,
    /// Replication budget per cell (early stopping may use less).
    pub replications: usize,
    /// Master seed (each cell derives an independent stream space).
    pub seed: u64,
    /// Worker threads (0 = auto).
    pub workers: usize,
    /// Failure process.
    pub source: SourceKind,
    /// Execution engine.
    pub engine: SweepEngine,
    /// Optional per-cell adaptive early stopping.
    pub early_stop: Option<EarlyStop>,
}

impl SweepSpec {
    /// A sweep with sensible defaults over the given grid.
    pub fn new(
        protocol: Protocol,
        params: PlatformParams,
        phi_ratios: Vec<f64>,
        mtbfs: Vec<f64>,
    ) -> Self {
        SweepSpec {
            protocol,
            params,
            phi_ratios,
            mtbfs,
            work_in_mtbfs: 20.0,
            replications: 60,
            seed: 0x5EE9,
            workers: 0,
            source: SourceKind::Exponential,
            engine: SweepEngine::default(),
            early_stop: None,
        }
    }

    fn resolved_workers(&self) -> usize {
        if self.workers == 0 {
            default_workers(0)
        } else {
            self.workers
        }
    }

    /// Replications per round: the whole budget without early
    /// stopping, else the batch rounded up to a chunk multiple so
    /// chunk boundaries stay aligned across configurations.
    fn round_len(&self) -> usize {
        match self.early_stop {
            None => self.replications.max(1),
            Some(es) => es.batch.max(1).div_ceil(REP_CHUNK) * REP_CHUNK,
        }
    }
}

/// One evaluated sweep cell.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SweepCell {
    /// Overhead ratio `φ/R`.
    pub phi_ratio: f64,
    /// Platform MTBF (seconds).
    pub mtbf: f64,
    /// The (model-optimal) period used.
    pub period: f64,
    /// Model waste at that period (for overlay).
    pub model_waste: f64,
    /// Simulated mean waste over completed replications, or `None`
    /// when no replication completed (degenerate cell).
    pub sim_waste: Option<f64>,
    /// 95% half-width of the simulated mean (`None` when degenerate).
    pub half_width: Option<f64>,
    /// Replications that completed their work.
    pub completed: usize,
    /// Replications ended by fatal failure.
    pub fatal: usize,
    /// Replications stopped by the failure cap or no-progress guard.
    pub truncated: usize,
    /// Replications actually executed (< budget under early stopping).
    pub replications_run: usize,
}

/// The sweep result: cells in row-major order (MTBF outer, φ inner).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepResult {
    /// The spec that produced it.
    pub spec: SweepSpec,
    /// Evaluated cells.
    pub cells: Vec<SweepCell>,
}

impl SweepResult {
    /// Largest |model − sim| over cells with a meaningful estimate
    /// (≥ 80 % of executed replications completed).
    pub fn max_model_deviation(&self) -> f64 {
        self.cells
            .iter()
            .filter(|c| c.completed * 5 >= c.replications_run * 4)
            .filter_map(|c| c.sim_waste.map(|s| (c.model_waste - s).abs()))
            .fold(0.0, f64::max)
    }

    /// Total replications executed across the grid (shows the budget
    /// early stopping saved).
    pub fn total_replications_run(&self) -> usize {
        self.cells.iter().map(|c| c.replications_run).sum()
    }
}

/// A fully resolved cell: everything a worker needs to run one
/// replication, precomputed before any thread spawns.
struct CellPlan {
    phi_ratio: f64,
    mtbf: f64,
    period: f64,
    model_waste: f64,
    run_cfg: RunConfig,
    mc: MonteCarloConfig,
    t_base: f64,
}

fn build_plans(spec: &SweepSpec) -> Result<Vec<CellPlan>, ModelError> {
    spec.params.validate()?;
    for &ratio in &spec.phi_ratios {
        // NaN fails the containment test, so it is rejected too.
        if !(0.0..=1.0).contains(&ratio) {
            return Err(ModelError::InvalidParameter {
                name: "phi_ratio",
                reason: format!("overhead ratio φ/R must lie in [0, 1], got {ratio}"),
            });
        }
    }
    let mut plans = Vec::with_capacity(spec.mtbfs.len() * spec.phi_ratios.len());
    for (mi, &mtbf) in spec.mtbfs.iter().enumerate() {
        for (pi, &ratio) in spec.phi_ratios.iter().enumerate() {
            let phi = ratio * spec.params.theta_min;
            let opt = optimal_period(spec.protocol, &spec.params, phi, mtbf)?;
            let mut run_cfg = RunConfig::new(spec.protocol, spec.params, phi, mtbf);
            run_cfg.period = PeriodChoice::Explicit(opt.period);
            run_cfg.build()?;
            let mc = MonteCarloConfig {
                replications: spec.replications,
                // Independent stream space per cell.
                seed: spec
                    .seed
                    .wrapping_add((mi as u64) << 32)
                    .wrapping_add(pi as u64),
                workers: spec.workers,
                source: spec.source,
            };
            plans.push(CellPlan {
                phi_ratio: ratio,
                mtbf,
                period: opt.period,
                model_waste: opt.waste.total,
                run_cfg,
                mc,
                t_base: spec.work_in_mtbfs * mtbf,
            });
        }
    }
    Ok(plans)
}

/// Folds replications `[start, end)` of one cell sequentially — the
/// shared work unit of both engines.
fn chunk_accum(plan: &CellPlan, start: usize, end: usize) -> WasteAccum {
    let mut acc = WasteAccum::default();
    for i in start..end {
        acc.absorb(&run_replication(
            &plan.run_cfg,
            &plan.mc,
            plan.t_base,
            i as u64,
        ));
    }
    acc
}

/// Deterministic convergence test for early stopping: depends only on
/// the accumulated statistics, which are worker-independent.
fn cell_converged(acc: &WasteAccum, es: &EarlyStop, executed: usize) -> bool {
    if executed < es.min_replications || acc.completed < 2 {
        return false;
    }
    ConfidenceInterval::from_stats(&acc.waste, 0.95).half_width <= es.target_half_width
}

fn finish_cell(plan: &CellPlan, acc: WasteAccum, executed: usize) -> SweepCell {
    let est = acc.into_estimate();
    SweepCell {
        phi_ratio: plan.phi_ratio,
        mtbf: plan.mtbf,
        period: plan.period,
        model_waste: plan.model_waste,
        sim_waste: est.ci95.map(|ci| ci.mean),
        half_width: est.ci95.map(|ci| ci.half_width),
        completed: est.completed,
        fatal: est.fatal,
        truncated: est.truncated,
        replications_run: executed,
    }
}

/// Cuts `[start, round_end)` into `REP_CHUNK`-aligned ranges.
fn chunk_ranges(start: usize, round_end: usize) -> Vec<(usize, usize)> {
    let mut ranges = Vec::with_capacity((round_end - start).div_ceil(REP_CHUNK));
    let mut s = start;
    while s < round_end {
        let e = (s + REP_CHUNK).min(round_end);
        ranges.push((s, e));
        s = e;
    }
    ranges
}

/// Sweep-progress counter handles, looked up once per sweep when
/// observability is on so the round loops bump `Arc<Counter>`s instead
/// of re-resolving names. `None` when disabled — the engines then do no
/// metric work at all. Counters never influence scheduling or float
/// order, so results stay bit-identical either way.
struct SweepCounters {
    rounds: Arc<Counter>,
    units: Arc<Counter>,
    replications: Arc<Counter>,
    early_stopped: Arc<Counter>,
}

impl SweepCounters {
    fn capture() -> Option<Self> {
        dck_obs::enabled().then(|| SweepCounters {
            rounds: dck_obs::counter("sweep.rounds"),
            units: dck_obs::counter("sweep.units"),
            replications: dck_obs::counter("sweep.replications"),
            early_stopped: dck_obs::counter("sweep.cells_early_stopped"),
        })
    }
}

fn run_per_cell(spec: &SweepSpec, plans: &[CellPlan]) -> Vec<SweepCell> {
    let workers = spec.resolved_workers();
    let budget = spec.replications;
    let round = spec.round_len();
    let counters = SweepCounters::capture();
    plans
        .iter()
        .map(|plan| {
            let mut acc = WasteAccum::default();
            let mut next = 0usize;
            while next < budget {
                let round_end = (next + round).min(budget);
                let ranges = chunk_ranges(next, round_end);
                if let Some(c) = &counters {
                    c.rounds.incr();
                    c.units.add(ranges.len() as u64);
                    c.replications.add((round_end - next) as u64);
                }
                // Fresh fan-out per cell per round — the engine's
                // defining (and costly) property.
                let unit_accs = parallel_map_indexed(ranges.len(), workers, |u| {
                    chunk_accum(plan, ranges[u].0, ranges[u].1)
                });
                for ua in &unit_accs {
                    acc.merge_in_place(ua);
                }
                next = round_end;
                if let Some(es) = spec.early_stop {
                    if cell_converged(&acc, &es, next) {
                        if let Some(c) = &counters {
                            c.early_stopped.incr();
                        }
                        break;
                    }
                }
            }
            finish_cell(plan, acc, next)
        })
        .collect()
}

fn run_global_pool(spec: &SweepSpec, plans: &[CellPlan]) -> Vec<SweepCell> {
    let workers = spec.resolved_workers();
    let budget = spec.replications;
    let round = spec.round_len();
    let counters = SweepCounters::capture();
    let mut accs: Vec<WasteAccum> = plans.iter().map(|_| WasteAccum::default()).collect();
    let mut next = vec![0usize; plans.len()];
    let mut active: Vec<bool> = plans.iter().map(|_| budget > 0).collect();

    loop {
        // Flatten this round's work: cell-major, chunk-ascending, so
        // the later merge reproduces each cell's fixed fold order.
        let mut units: Vec<(usize, usize, usize)> = Vec::new();
        for (ci, _) in plans.iter().enumerate() {
            if !active[ci] {
                continue;
            }
            let round_end = (next[ci] + round).min(budget);
            for (s, e) in chunk_ranges(next[ci], round_end) {
                units.push((ci, s, e));
            }
        }
        if units.is_empty() {
            break;
        }
        if let Some(c) = &counters {
            c.rounds.incr();
            c.units.add(units.len() as u64);
            c.replications
                .add(units.iter().map(|&(_, s, e)| (e - s) as u64).sum());
        }
        // One pool over every unit of every cell: workers are spawned
        // once for the whole round, and work-stealing overlaps slow
        // cells with fast ones.
        let unit_accs = parallel_map_indexed(units.len(), workers, |u| {
            let (ci, s, e) = units[u];
            chunk_accum(&plans[ci], s, e)
        });
        for (&(ci, _, e), ua) in units.iter().zip(&unit_accs) {
            accs[ci].merge_in_place(ua);
            next[ci] = next[ci].max(e);
        }
        for ci in 0..plans.len() {
            if !active[ci] {
                continue;
            }
            if next[ci] >= budget {
                active[ci] = false;
            } else if let Some(es) = spec.early_stop {
                if cell_converged(&accs[ci], &es, next[ci]) {
                    active[ci] = false;
                    if let Some(c) = &counters {
                        c.early_stopped.incr();
                    }
                }
            }
        }
    }

    plans
        .iter()
        .zip(accs)
        .zip(next)
        .map(|((plan, acc), executed)| finish_cell(plan, acc, executed))
        .collect()
}

/// Runs the sweep with the engine selected in the spec. Cells where no
/// replication completes are reported with `sim_waste: None`.
///
/// # Errors
/// Rejects invalid platform parameters and out-of-range `phi_ratios`
/// (each must lie in `[0, 1]`); propagates infeasible operating
/// points.
pub fn run_sweep(spec: &SweepSpec) -> Result<SweepResult, ModelError> {
    let plans = build_plans(spec)?;
    if dck_obs::enabled() {
        dck_obs::add("sweep.cells", plans.len() as u64);
    }
    let cells = match spec.engine {
        SweepEngine::PerCell => run_per_cell(spec, &plans),
        SweepEngine::GlobalPool => run_global_pool(spec, &plans),
    };
    Ok(SweepResult {
        spec: spec.clone(),
        cells,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> PlatformParams {
        PlatformParams::new(0.0, 2.0, 4.0, 10.0, 48).unwrap()
    }

    #[test]
    fn sweep_covers_grid_and_tracks_model() {
        let mut spec = SweepSpec::new(
            Protocol::DoubleNbl,
            params(),
            vec![0.0, 0.5, 1.0],
            vec![1_800.0, 7.0 * 3_600.0],
        );
        spec.replications = 30;
        spec.work_in_mtbfs = 15.0;
        let result = run_sweep(&spec).unwrap();
        assert_eq!(result.cells.len(), 6);
        for c in &result.cells {
            assert!(c.completed > 0, "cell {c:?}");
            assert_eq!(c.replications_run, 30);
            let sim = c.sim_waste.expect("completed cells have an estimate");
            assert!((0.0..=1.0).contains(&sim));
            // CI-aware model check: the simulated surface must track
            // the first-order model within its own statistical
            // resolution plus a small model-bias allowance. With the
            // fixed seed this is fully deterministic — the bound is
            // CI-scaled so reasonable engine changes stay green.
            if c.completed * 5 >= c.replications_run * 4 {
                let hw = c.half_width.expect("completed cells have a half-width");
                let tol = 3.0 * hw + 0.01;
                assert!(
                    (c.model_waste - sim).abs() <= tol,
                    "cell {c:?}: |model - sim| > {tol}"
                );
            }
        }
    }

    #[test]
    fn cells_use_independent_seeds() {
        let mut spec = SweepSpec::new(Protocol::Triple, params(), vec![0.25, 0.75], vec![3_600.0]);
        spec.replications = 10;
        spec.work_in_mtbfs = 10.0;
        let result = run_sweep(&spec).unwrap();
        // Different φ cells must not produce byte-identical estimates
        // (they would if seeds collided and waste were φ-independent —
        // a seed collision is the only way these could coincide).
        assert_ne!(result.cells[0].sim_waste, result.cells[1].sim_waste);
    }

    #[test]
    fn sweep_is_reproducible() {
        let mut spec = SweepSpec::new(Protocol::DoubleBof, params(), vec![0.5], vec![1_800.0]);
        spec.replications = 12;
        let a = run_sweep(&spec).unwrap();
        let b = run_sweep(&spec).unwrap();
        assert_eq!(a.cells[0].sim_waste, b.cells[0].sim_waste);
    }

    #[test]
    fn engines_are_bit_identical() {
        let mut spec = SweepSpec::new(
            Protocol::DoubleNbl,
            params(),
            vec![0.0, 0.3, 0.9],
            vec![900.0, 3_600.0],
        );
        spec.replications = 20;
        spec.work_in_mtbfs = 8.0;
        spec.engine = SweepEngine::PerCell;
        let per_cell = run_sweep(&spec).unwrap();
        spec.engine = SweepEngine::GlobalPool;
        let global = run_sweep(&spec).unwrap();
        for (a, b) in per_cell.cells.iter().zip(&global.cells) {
            assert_eq!(a.sim_waste, b.sim_waste);
            assert_eq!(a.half_width, b.half_width);
            assert_eq!(a.completed, b.completed);
            assert_eq!(a.replications_run, b.replications_run);
        }
    }

    #[test]
    fn rejects_out_of_range_phi_ratio() {
        for bad in [-0.1, 1.5, f64::NAN] {
            let spec = SweepSpec::new(Protocol::DoubleNbl, params(), vec![0.5, bad], vec![3_600.0]);
            let err = run_sweep(&spec).unwrap_err();
            assert!(
                matches!(
                    err,
                    ModelError::InvalidParameter {
                        name: "phi_ratio",
                        ..
                    }
                ),
                "{bad} gave {err:?}"
            );
        }
    }

    #[test]
    fn early_stopping_saves_budget_and_stays_deterministic() {
        let mut spec = SweepSpec::new(Protocol::DoubleNbl, params(), vec![0.5], vec![3_600.0]);
        spec.replications = 200;
        spec.work_in_mtbfs = 10.0;
        // Loose target: a handful of rounds should converge.
        spec.early_stop = Some(EarlyStop {
            target_half_width: 0.05,
            min_replications: 16,
            batch: 16,
        });
        let a = run_sweep(&spec).unwrap();
        let cell = &a.cells[0];
        assert!(
            cell.replications_run >= 16 && cell.replications_run < 200,
            "expected early stop, ran {}",
            cell.replications_run
        );
        let hw = cell.half_width.expect("converged cell has an interval");
        assert!(hw <= 0.05, "half-width {hw}");
        // Deterministic across engines and repeat runs.
        let b = run_sweep(&spec).unwrap();
        assert_eq!(cell.sim_waste, b.cells[0].sim_waste);
        assert_eq!(cell.replications_run, b.cells[0].replications_run);
        spec.engine = SweepEngine::PerCell;
        let c = run_sweep(&spec).unwrap();
        assert_eq!(cell.sim_waste, c.cells[0].sim_waste);
        assert_eq!(cell.replications_run, c.cells[0].replications_run);
    }

    #[test]
    fn metrics_count_work_without_perturbing_results() {
        let _guard = dck_obs::exclusive_session();
        let mut spec = SweepSpec::new(Protocol::DoubleNbl, params(), vec![0.0, 0.5], vec![1_800.0]);
        spec.replications = 16;
        spec.work_in_mtbfs = 8.0;
        let off = run_sweep(&spec).unwrap();
        dck_obs::reset();
        let was = dck_obs::set_enabled(true);
        let on = run_sweep(&spec).unwrap();
        dck_obs::set_enabled(was);
        let snap = dck_obs::snapshot();
        // Bit-identical with observability on or off (acceptance
        // criterion: counters never touch RNG streams or float order).
        for (a, b) in off.cells.iter().zip(&on.cells) {
            assert_eq!(a.sim_waste, b.sim_waste);
            assert_eq!(a.half_width, b.half_width);
            assert_eq!(a.completed, b.completed);
        }
        // GlobalPool without early stopping: one round, 2 cells ×
        // 16 replications in chunks of 8 = 4 units.
        assert_eq!(snap.counter("sweep.cells"), 2);
        assert_eq!(snap.counter("sweep.rounds"), 1);
        assert_eq!(snap.counter("sweep.units"), 4);
        assert_eq!(snap.counter("sweep.replications"), 32);
        assert_eq!(snap.counter("sweep.cells_early_stopped"), 0);
    }

    #[test]
    fn degenerate_cells_are_marked() {
        // MTBF far below any feasible period: nothing completes.
        let p = PlatformParams::new(0.0, 2.0, 4.0, 10.0, 48).unwrap();
        let mut spec = SweepSpec::new(Protocol::DoubleNbl, p, vec![0.0], vec![40.0]);
        spec.replications = 4;
        spec.work_in_mtbfs = 500.0;
        match run_sweep(&spec) {
            Ok(result) => {
                let c = &result.cells[0];
                if c.completed == 0 {
                    assert!(c.sim_waste.is_none());
                    assert!(c.half_width.is_none());
                    assert_eq!(c.fatal + c.truncated, 4);
                }
            }
            // The operating point may already be infeasible for the
            // model — also an acceptable, explicit outcome.
            Err(ModelError::Infeasible { .. }) => {}
            Err(e) => panic!("unexpected error {e:?}"),
        }
    }
}
