//! Parameter sweeps: simulated waste over a `(φ/R, MTBF)` grid.
//!
//! The experiments crate draws the paper's figures from the analytical
//! model; this module is the simulation-side counterpart: take a grid
//! of operating points, estimate the waste at every cell by Monte
//! Carlo, and return a typed table of confidence intervals ready for
//! CSV/plotting — the raw material for a *simulated* Figure 4/7.
//!
//! # Execution engines
//!
//! Two engines produce **bit-identical** results:
//!
//! - [`SweepEngine::PerCell`] (the historical behavior): cells run one
//!   after another, each spawning its own worker fan-out with a
//!   barrier before the next cell. Simple, but on grids with many
//!   small cells the per-cell spawn/join overhead and the idle tail at
//!   every barrier dominate.
//! - [`SweepEngine::GlobalPool`] (default): every `(cell,
//!   replication-chunk)` pair of the whole grid is flattened into one
//!   index space and executed by a single work-stealing pool. Workers
//!   are spawned once per round (once per sweep without early
//!   stopping), and a slow cell's tail overlaps other cells' work.
//!
//! # Reproducibility
//!
//! Replication `i` of a cell derives its RNG stream from `(cell seed,
//! i)` only. Outcomes fold into per-chunk accumulators of
//! [`REP_CHUNK`](crate::montecarlo) consecutive replications, and
//! chunk accumulators merge in ascending chunk order — so every
//! `(engine, workers)` combination yields the same bits.
//!
//! # Early stopping
//!
//! With [`SweepSpec::early_stop`] set, replications run in rounds of
//! [`EarlyStop::batch`]; after each round a cell whose 95% CI
//! half-width has dropped to the target stops consuming budget. The
//! schedule is deterministic: stop decisions depend only on the
//! (worker-independent) accumulated statistics at fixed round
//! boundaries, never on thread timing.
//!
//! # Checkpoint/resume
//!
//! The `GlobalPool` engine's entire between-rounds state is the
//! per-cell accumulators plus the `next[]`/`active[]` vectors, so
//! [`run_sweep_with_checkpoint`] can snapshot it at round boundaries
//! (see [`crate::checkpoint`]) and a killed sweep resumes
//! bit-identically from the newest valid snapshot. Worker panics are
//! contained per chunk by `simcore::par`; one that persists past its
//! retry checkpoints the last consistent state and surfaces as
//! [`ModelError::Execution`] instead of aborting the process.

use crate::checkpoint::{self, PoolState};
use crate::config::{PeriodChoice, RunConfig};
use crate::montecarlo::{
    ChunkOutcomes, ChunkRunner, MonteCarloConfig, SourceKind, WasteAccum, REP_CHUNK,
};
use dck_core::{optimal_period, ModelError, PlatformParams, Protocol};
use dck_obs::Counter;
use dck_simcore::par::{default_workers, parallel_map_indexed};
use dck_simcore::ConfidenceInterval;
use serde::{Deserialize, Serialize};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// How the sweep distributes work across threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum SweepEngine {
    /// One Monte-Carlo estimator per cell: a fresh worker fan-out and
    /// barrier for every cell (the historical engine; kept for
    /// comparison and benchmarking).
    PerCell,
    /// All `(cell, replication-chunk)` units of the grid flattened
    /// into a single work-stealing pool.
    #[default]
    GlobalPool,
}

/// Per-cell adaptive early stopping.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EarlyStop {
    /// Stop refining a cell once its 95% CI half-width on the mean
    /// waste is at or below this.
    pub target_half_width: f64,
    /// Replications every cell must run before stopping is considered
    /// (the deterministic minimum batch).
    pub min_replications: usize,
    /// Round granularity: convergence is re-checked every `batch`
    /// replications (rounded up to a multiple of the chunk size).
    pub batch: usize,
}

impl EarlyStop {
    /// Early stopping at the given half-width target with default
    /// minimum (16) and batch (32).
    pub fn at_half_width(target_half_width: f64) -> Self {
        EarlyStop {
            target_half_width,
            min_replications: 16,
            batch: 32,
        }
    }
}

/// Specification of a waste sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepSpec {
    /// Protocol to sweep.
    pub protocol: Protocol,
    /// Platform parameters.
    pub params: PlatformParams,
    /// Overhead ratios `φ/R` to sample; each must lie in `[0, 1]`.
    pub phi_ratios: Vec<f64>,
    /// Platform MTBFs (seconds) to sample.
    pub mtbfs: Vec<f64>,
    /// Useful work per run, in multiples of the cell's MTBF.
    pub work_in_mtbfs: f64,
    /// Replication budget per cell (early stopping may use less).
    pub replications: usize,
    /// Master seed (each cell derives an independent stream space).
    pub seed: u64,
    /// Worker threads (0 = auto).
    pub workers: usize,
    /// Failure process.
    pub source: SourceKind,
    /// Execution engine.
    pub engine: SweepEngine,
    /// Optional per-cell adaptive early stopping.
    pub early_stop: Option<EarlyStop>,
}

impl SweepSpec {
    /// A sweep with sensible defaults over the given grid.
    pub fn new(
        protocol: Protocol,
        params: PlatformParams,
        phi_ratios: Vec<f64>,
        mtbfs: Vec<f64>,
    ) -> Self {
        SweepSpec {
            protocol,
            params,
            phi_ratios,
            mtbfs,
            work_in_mtbfs: 20.0,
            replications: 60,
            seed: 0x5EE9,
            workers: 0,
            source: SourceKind::Exponential,
            engine: SweepEngine::default(),
            early_stop: None,
        }
    }

    fn resolved_workers(&self) -> usize {
        if self.workers == 0 {
            default_workers(0)
        } else {
            self.workers
        }
    }

    /// Replications per round: the whole budget without early
    /// stopping, else the batch rounded up to a chunk multiple so
    /// chunk boundaries stay aligned across configurations.
    fn round_len(&self) -> usize {
        match self.early_stop {
            None => self.replications.max(1),
            Some(es) => es.batch.max(1).div_ceil(REP_CHUNK) * REP_CHUNK,
        }
    }
}

/// One evaluated sweep cell.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SweepCell {
    /// Overhead ratio `φ/R`.
    pub phi_ratio: f64,
    /// Platform MTBF (seconds).
    pub mtbf: f64,
    /// The (model-optimal) period used.
    pub period: f64,
    /// Model waste at that period (for overlay).
    pub model_waste: f64,
    /// Simulated mean waste over completed replications, or `None`
    /// when no replication completed (degenerate cell).
    pub sim_waste: Option<f64>,
    /// 95% half-width of the simulated mean (`None` when degenerate).
    pub half_width: Option<f64>,
    /// Replications that completed their work.
    pub completed: usize,
    /// Replications ended by fatal failure.
    pub fatal: usize,
    /// Replications stopped by the failure cap or no-progress guard.
    pub truncated: usize,
    /// Replications actually executed (< budget under early stopping).
    pub replications_run: usize,
}

/// The sweep result: cells in row-major order (MTBF outer, φ inner).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepResult {
    /// The spec that produced it.
    pub spec: SweepSpec,
    /// Evaluated cells.
    pub cells: Vec<SweepCell>,
}

impl SweepResult {
    /// Largest |model − sim| over cells with a meaningful estimate
    /// (≥ 80 % of executed replications completed).
    pub fn max_model_deviation(&self) -> f64 {
        self.cells
            .iter()
            .filter(|c| c.completed * 5 >= c.replications_run * 4)
            .filter_map(|c| c.sim_waste.map(|s| (c.model_waste - s).abs()))
            .fold(0.0, f64::max)
    }

    /// Total replications executed across the grid (shows the budget
    /// early stopping saved).
    pub fn total_replications_run(&self) -> usize {
        self.cells.iter().map(|c| c.replications_run).sum()
    }
}

/// A fully resolved cell: everything a worker needs to run one
/// replication, precomputed before any thread spawns.
struct CellPlan {
    phi_ratio: f64,
    mtbf: f64,
    period: f64,
    model_waste: f64,
    run_cfg: RunConfig,
    mc: MonteCarloConfig,
    t_base: f64,
}

/// Validates the grid-level invariants shared by every entry point:
/// platform parameters and the φ/R ratio range.
fn validate_grid(spec: &SweepSpec) -> Result<(), ModelError> {
    spec.params.validate()?;
    for &ratio in &spec.phi_ratios {
        // NaN fails the containment test, so it is rejected too.
        if !(0.0..=1.0).contains(&ratio) {
            return Err(ModelError::InvalidParameter {
                name: "phi_ratio",
                reason: format!("overhead ratio φ/R must lie in [0, 1], got {ratio}"),
            });
        }
    }
    Ok(())
}

/// Resolves one `(mtbf_idx, phi_idx)` grid coordinate into a runnable
/// plan. The cell seed depends only on the master seed and the
/// coordinates, never on the rest of the grid — the property that lets
/// a single cell be recomputed in isolation bit-identically.
fn build_plan(spec: &SweepSpec, mi: usize, pi: usize) -> Result<CellPlan, ModelError> {
    let mtbf = spec.mtbfs[mi];
    let ratio = spec.phi_ratios[pi];
    let phi = ratio * spec.params.theta_min;
    let opt = optimal_period(spec.protocol, &spec.params, phi, mtbf)?;
    let mut run_cfg = RunConfig::new(spec.protocol, spec.params, phi, mtbf);
    run_cfg.period = PeriodChoice::Explicit(opt.period);
    run_cfg.build()?;
    let mc = MonteCarloConfig {
        replications: spec.replications,
        // Independent stream space per cell.
        seed: spec
            .seed
            .wrapping_add((mi as u64) << 32)
            .wrapping_add(pi as u64),
        workers: spec.workers,
        source: spec.source,
    };
    Ok(CellPlan {
        phi_ratio: ratio,
        mtbf,
        period: opt.period,
        model_waste: opt.waste.total,
        run_cfg,
        mc,
        t_base: spec.work_in_mtbfs * mtbf,
    })
}

fn build_plans(spec: &SweepSpec) -> Result<Vec<CellPlan>, ModelError> {
    validate_grid(spec)?;
    let mut plans = Vec::with_capacity(spec.mtbfs.len() * spec.phi_ratios.len());
    for mi in 0..spec.mtbfs.len() {
        for pi in 0..spec.phi_ratios.len() {
            plans.push(build_plan(spec, mi, pi)?);
        }
    }
    Ok(plans)
}

/// Fault injection for tests and the kill-and-resume e2e: with
/// `DCK_SWEEP_PANIC_UNIT="ci:rep"` in the environment, the matching
/// `(cell, replication)` panics inside the worker pool, exercising the
/// containment/requeue/checkpoint-on-error path end to end. The
/// `"ci:rep:once"` form panics only on the first execution, so the
/// requeue retry succeeds. Parsed once per engine invocation; absent
/// (the normal case) it costs one env lookup per sweep.
struct PanicInjection {
    cell: usize,
    rep: usize,
    once: bool,
    fired: AtomicBool,
}

impl PanicInjection {
    fn from_env() -> Option<PanicInjection> {
        let v = std::env::var("DCK_SWEEP_PANIC_UNIT").ok()?;
        let mut parts = v.split(':');
        let cell = parts.next()?.parse().ok()?;
        let rep = parts.next()?.parse().ok()?;
        let once = parts.next() == Some("once");
        Some(PanicInjection {
            cell,
            rep,
            once,
            fired: AtomicBool::new(false),
        })
    }

    fn trip(&self, ci: usize, rep: usize) {
        if ci != self.cell || rep != self.rep {
            return;
        }
        if self.once && self.fired.swap(true, Ordering::Relaxed) {
            return;
        }
        panic!("injected sweep panic at cell {ci} replication {rep} (DCK_SWEEP_PANIC_UNIT)");
    }
}

/// Folds replications `[start, end)` of cell `ci` sequentially — the
/// shared work unit of both engines. Builds one [`ChunkRunner`] for
/// the whole range (amortizing the config build) and stages outcomes
/// in structure-of-arrays form; the fold into the returned accumulator
/// is in replication order, so the result is bit-identical to the old
/// per-replication absorb loop.
fn chunk_accum(
    plan: &CellPlan,
    ci: usize,
    start: usize,
    end: usize,
    injection: Option<&PanicInjection>,
) -> WasteAccum {
    let mut runner =
        ChunkRunner::new(&plan.run_cfg, &plan.mc).expect("validated configuration cannot fail");
    chunk_accum_with(&mut runner, plan.t_base, ci, start, end, injection)
}

/// [`chunk_accum`] with a caller-owned runner: replication `i`'s RNG
/// stream derives from `(seed, i)` alone, so reusing one runner across
/// chunks is bit-identical to building a fresh one per chunk — the
/// serving path leans on this to answer a whole cell without
/// re-building a `RunMachine` per chunk.
fn chunk_accum_with(
    runner: &mut ChunkRunner,
    t_base: f64,
    ci: usize,
    start: usize,
    end: usize,
    injection: Option<&PanicInjection>,
) -> WasteAccum {
    let mut staged = ChunkOutcomes::default();
    for i in start..end {
        if let Some(inj) = injection {
            inj.trip(ci, i);
        }
        staged.record(&runner.run_waste(t_base, i as u64));
    }
    let mut acc = WasteAccum::default();
    staged.fold_into(&mut acc);
    acc
}

/// Deterministic convergence test for early stopping: depends only on
/// the accumulated statistics, which are worker-independent.
fn cell_converged(acc: &WasteAccum, es: &EarlyStop, executed: usize) -> bool {
    if executed < es.min_replications || acc.completed < 2 {
        return false;
    }
    ConfidenceInterval::from_stats(&acc.waste, 0.95).half_width <= es.target_half_width
}

fn finish_cell(plan: &CellPlan, acc: WasteAccum, executed: usize) -> SweepCell {
    let est = acc.into_estimate();
    SweepCell {
        phi_ratio: plan.phi_ratio,
        mtbf: plan.mtbf,
        period: plan.period,
        model_waste: plan.model_waste,
        sim_waste: est.ci95.map(|ci| ci.mean),
        half_width: est.ci95.map(|ci| ci.half_width),
        completed: est.completed,
        fatal: est.fatal,
        truncated: est.truncated,
        replications_run: executed,
    }
}

/// Cuts `[start, round_end)` into `REP_CHUNK`-aligned ranges.
fn chunk_ranges(start: usize, round_end: usize) -> Vec<(usize, usize)> {
    let mut ranges = Vec::with_capacity((round_end - start).div_ceil(REP_CHUNK));
    let mut s = start;
    while s < round_end {
        let e = (s + REP_CHUNK).min(round_end);
        ranges.push((s, e));
        s = e;
    }
    ranges
}

/// Sweep-progress counter handles, looked up once per sweep when
/// observability is on so the round loops bump `Arc<Counter>`s instead
/// of re-resolving names. `None` when disabled — the engines then do no
/// metric work at all. Counters never influence scheduling or float
/// order, so results stay bit-identical either way.
struct SweepCounters {
    rounds: Arc<Counter>,
    units: Arc<Counter>,
    replications: Arc<Counter>,
    early_stopped: Arc<Counter>,
    checkpoints: Arc<Counter>,
    resumes: Arc<Counter>,
    rounds_restored: Arc<Counter>,
}

impl SweepCounters {
    fn capture() -> Option<Self> {
        dck_obs::enabled().then(|| SweepCounters {
            rounds: dck_obs::counter("sweep.rounds"),
            units: dck_obs::counter("sweep.units"),
            replications: dck_obs::counter("sweep.replications"),
            early_stopped: dck_obs::counter("sweep.cells_early_stopped"),
            checkpoints: dck_obs::counter("sweep.checkpoints_written"),
            resumes: dck_obs::counter("sweep.resumes"),
            rounds_restored: dck_obs::counter("sweep.rounds_restored"),
        })
    }
}

fn run_per_cell(spec: &SweepSpec, plans: &[CellPlan]) -> Result<Vec<SweepCell>, ModelError> {
    let workers = spec.resolved_workers();
    let budget = spec.replications;
    let round = spec.round_len();
    let counters = SweepCounters::capture();
    let injection = PanicInjection::from_env();
    plans
        .iter()
        .enumerate()
        .map(|(ci, plan)| {
            let mut acc = WasteAccum::default();
            let mut next = 0usize;
            while next < budget {
                let round_end = (next + round).min(budget);
                let ranges = chunk_ranges(next, round_end);
                if let Some(c) = &counters {
                    c.rounds.incr();
                    c.units.add(ranges.len() as u64);
                    c.replications.add((round_end - next) as u64);
                }
                // Fresh fan-out per cell per round — the engine's
                // defining (and costly) property.
                let unit_accs = parallel_map_indexed(ranges.len(), workers, |u| {
                    chunk_accum(plan, ci, ranges[u].0, ranges[u].1, injection.as_ref())
                })
                .map_err(|e| {
                    ModelError::execution(format!("sweep cell {ci} failed past containment: {e}"))
                })?;
                for ua in &unit_accs {
                    acc.merge_in_place(ua);
                }
                next = round_end;
                if let Some(es) = spec.early_stop {
                    if cell_converged(&acc, &es, next) {
                        if let Some(c) = &counters {
                            c.early_stopped.incr();
                        }
                        break;
                    }
                }
            }
            Ok(finish_cell(plan, acc, next))
        })
        .collect()
}

fn run_global_pool(
    spec: &SweepSpec,
    plans: &[CellPlan],
    ckpt: Option<&SweepCheckpoint>,
) -> Result<Vec<SweepCell>, ModelError> {
    let workers = spec.resolved_workers();
    let budget = spec.replications;
    let round = spec.round_len();
    let counters = SweepCounters::capture();
    let injection = PanicInjection::from_env();
    let fingerprint = checkpoint::spec_fingerprint(spec);
    let retention = match ckpt {
        Some(ck) => checkpoint::RetentionPolicy::keep(ck.keep_snapshots)?,
        None => checkpoint::RetentionPolicy::default(),
    };
    // The snapshot cadence actually in force: starts from the request
    // and, on resume, defers to the cadence the snapshot records
    // unless the caller explicitly asked for a different one (a typed
    // error — silently rebasing the schedule mid-run was a bug).
    let mut every_rounds = ckpt.map_or(1, |ck| ck.every_rounds.max(1));
    let mut state = PoolState::fresh(plans.len(), budget);
    if let Some(ck) = ckpt.filter(|ck| ck.resume) {
        if let Some(restored) = checkpoint::load_latest(&ck.dir, fingerprint)? {
            if restored.state.accs.len() != plans.len() {
                return Err(ModelError::execution(format!(
                    "snapshot tracks {} cells but this spec builds {}",
                    restored.state.accs.len(),
                    plans.len()
                )));
            }
            let recorded = restored.checkpoint_every.max(1);
            if recorded != every_rounds {
                if ck.every_explicit {
                    return Err(ModelError::invalid(
                        "checkpoint_every",
                        format!(
                            "snapshot records a cadence of {recorded} round(s) per snapshot \
                             but --checkpoint-every {} was requested; drop the flag to honor \
                             the recorded cadence, or start a fresh sweep to change it",
                            ck.every_rounds
                        ),
                    ));
                }
                every_rounds = recorded;
            }
            if let Some(c) = &counters {
                c.resumes.incr();
                c.rounds_restored.add(restored.state.rounds_done);
            }
            state = restored.state;
        }
    }
    let mut last_written: Option<u64> = None;

    loop {
        // Flatten this round's work: cell-major, chunk-ascending, so
        // the later merge reproduces each cell's fixed fold order.
        // Built purely from (next, active, budget, round) — the state a
        // snapshot captures — so a resumed run schedules exactly the
        // rounds an uninterrupted run would have.
        let mut units: Vec<(usize, usize, usize)> = Vec::new();
        for ci in 0..plans.len() {
            if !state.active[ci] {
                continue;
            }
            let round_end = (state.next[ci] + round).min(budget);
            for (s, e) in chunk_ranges(state.next[ci], round_end) {
                units.push((ci, s, e));
            }
        }
        if units.is_empty() {
            break;
        }
        if let Some(ck) = ckpt {
            if ck.max_rounds.is_some_and(|max| state.rounds_done >= max) {
                // Deterministic pause: snapshot and surface a typed
                // error while work remains. Used by the resume tests
                // to interrupt at exact round boundaries.
                let path = checkpoint::write_snapshot(
                    &ck.dir,
                    &state,
                    fingerprint,
                    every_rounds,
                    &retention,
                )
                .map_err(|e| ModelError::execution(format!("cannot write pause snapshot: {e}")))?;
                if let Some(c) = &counters {
                    c.checkpoints.incr();
                }
                return Err(ModelError::execution(format!(
                    "sweep paused after {} rounds with work remaining; snapshot {} — rerun with --resume to continue",
                    state.rounds_done,
                    path.display()
                )));
            }
        }
        if let Some(c) = &counters {
            c.rounds.incr();
            c.units.add(units.len() as u64);
            c.replications
                .add(units.iter().map(|&(_, s, e)| (e - s) as u64).sum());
        }
        // One pool over every unit of every cell: workers are spawned
        // once for the whole round, and work-stealing overlaps slow
        // cells with fast ones.
        let pool_result = parallel_map_indexed(units.len(), workers, |u| {
            let (ci, s, e) = units[u];
            chunk_accum(&plans[ci], ci, s, e, injection.as_ref())
        });
        let unit_accs = match pool_result {
            Ok(accs) => accs,
            Err(pool_err) => {
                // Checkpoint the last consistent (pre-round) state
                // before surfacing the failure: the budget already
                // spent survives, and a later --resume re-runs only
                // the failed round.
                let mut reason =
                    format!("sweep round {} failed: {pool_err}", state.rounds_done + 1);
                match ckpt.map(|ck| {
                    checkpoint::write_snapshot(
                        &ck.dir,
                        &state,
                        fingerprint,
                        every_rounds,
                        &retention,
                    )
                }) {
                    Some(Ok(path)) => {
                        if let Some(c) = &counters {
                            c.checkpoints.incr();
                        }
                        reason.push_str(&format!("; state checkpointed to {}", path.display()));
                    }
                    Some(Err(e)) => {
                        reason.push_str(&format!(
                            "; checkpointing the partial state also failed: {e}"
                        ));
                    }
                    None => {}
                }
                return Err(ModelError::execution(reason));
            }
        };
        for (&(ci, _, e), ua) in units.iter().zip(&unit_accs) {
            state.accs[ci].merge_in_place(ua);
            state.next[ci] = state.next[ci].max(e);
        }
        for ci in 0..plans.len() {
            if !state.active[ci] {
                continue;
            }
            if state.next[ci] >= budget {
                state.active[ci] = false;
            } else if let Some(es) = spec.early_stop {
                if cell_converged(&state.accs[ci], &es, state.next[ci]) {
                    state.active[ci] = false;
                    if let Some(c) = &counters {
                        c.early_stopped.incr();
                    }
                }
            }
        }
        state.rounds_done += 1;
        if let Some(ck) = ckpt {
            if state.rounds_done.is_multiple_of(every_rounds) {
                checkpoint::write_snapshot(&ck.dir, &state, fingerprint, every_rounds, &retention)
                    .map_err(|e| {
                        ModelError::execution(format!("cannot write sweep snapshot: {e}"))
                    })?;
                last_written = Some(state.rounds_done);
                if let Some(c) = &counters {
                    c.checkpoints.incr();
                }
            }
        }
    }

    // Terminal snapshot (unless the cadence just wrote one): resuming
    // a finished sweep then reloads the complete state and exits the
    // round loop immediately.
    if let Some(ck) = ckpt {
        if last_written != Some(state.rounds_done) {
            checkpoint::write_snapshot(&ck.dir, &state, fingerprint, every_rounds, &retention)
                .map_err(|e| {
                    ModelError::execution(format!("cannot write final sweep snapshot: {e}"))
                })?;
            if let Some(c) = &counters {
                c.checkpoints.incr();
            }
        }
    }

    Ok(plans
        .iter()
        .zip(state.accs)
        .zip(state.next)
        .map(|((plan, acc), executed)| finish_cell(plan, acc, executed))
        .collect())
}

/// Checkpoint/resume policy for the [`SweepEngine::GlobalPool`]
/// engine. The engine's complete between-rounds state (per-cell
/// accumulators, cursors, active flags) is snapshotted into `dir`, and
/// a resumed run continues from the newest valid snapshot with results
/// **bit-identical** to an uninterrupted run — see
/// [`crate::checkpoint`] for the format and the determinism argument.
#[derive(Debug, Clone)]
pub struct SweepCheckpoint {
    /// Directory holding snapshot generations (created on first write;
    /// the newest `keep_snapshots` valid generations are kept,
    /// buddy-style — see [`crate::checkpoint::RetentionPolicy`]).
    pub dir: PathBuf,
    /// Snapshot cadence in rounds; 0 behaves as 1 (every round).
    pub every_rounds: u64,
    /// Whether `every_rounds` was set explicitly by the caller. On
    /// resume, a snapshot records the cadence the interrupted run was
    /// on: an *explicit* mismatching request is a typed error naming
    /// both values, while a defaulted `every_rounds` silently honors
    /// the recorded cadence instead of rebasing it mid-run.
    pub every_explicit: bool,
    /// Snapshot generations to retain (`2..=MAX_SNAPSHOT_KEEP`); the
    /// slots past the newest pair keep a well-spaced rewind history.
    pub keep_snapshots: usize,
    /// Load the newest valid snapshot in `dir` before running (fresh
    /// start when none exists; hard error when a valid snapshot
    /// belongs to a different spec).
    pub resume: bool,
    /// Pause — snapshot plus a typed [`ModelError::Execution`] — once
    /// this many rounds are done while work remains. Deterministic
    /// mid-sweep interruption for tests and budgeted execution.
    pub max_rounds: Option<u64>,
}

impl SweepCheckpoint {
    /// Checkpoints into `dir` after every round; no resume, no pause,
    /// double-checkpoint retention.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        SweepCheckpoint {
            dir: dir.into(),
            every_rounds: 1,
            every_explicit: false,
            keep_snapshots: checkpoint::DEFAULT_SNAPSHOT_KEEP,
            resume: false,
            max_rounds: None,
        }
    }
}

/// Runs the sweep with the engine selected in the spec. Cells where no
/// replication completes are reported with `sim_waste: None`.
///
/// # Errors
/// Rejects invalid platform parameters and out-of-range `phi_ratios`
/// (each must lie in `[0, 1]`); propagates infeasible operating
/// points. A worker panic that survives containment and its requeue
/// retry surfaces as [`ModelError::Execution`] instead of aborting the
/// process.
pub fn run_sweep(spec: &SweepSpec) -> Result<SweepResult, ModelError> {
    run_sweep_with_checkpoint(spec, None)
}

/// [`run_sweep`] with an optional checkpoint/resume policy (GlobalPool
/// engine only — PerCell holds no resumable state between cells).
///
/// # Errors
/// Everything [`run_sweep`] rejects, plus: a checkpoint policy with
/// the PerCell engine, snapshot I/O failures, resuming a snapshot from
/// a different spec, and the deliberate pause when
/// [`SweepCheckpoint::max_rounds`] is hit with work remaining.
pub fn run_sweep_with_checkpoint(
    spec: &SweepSpec,
    ckpt: Option<&SweepCheckpoint>,
) -> Result<SweepResult, ModelError> {
    if ckpt.is_some() && spec.engine != SweepEngine::GlobalPool {
        return Err(ModelError::invalid(
            "engine",
            "checkpoint/resume requires the GlobalPool engine \
             (PerCell holds no resumable state)",
        ));
    }
    let plans = build_plans(spec)?;
    if dck_obs::enabled() {
        dck_obs::add("sweep.cells", plans.len() as u64);
    }
    let cells = match spec.engine {
        SweepEngine::PerCell => run_per_cell(spec, &plans)?,
        SweepEngine::GlobalPool => run_global_pool(spec, &plans, ckpt)?,
    };
    Ok(SweepResult {
        spec: spec.clone(),
        cells,
    })
}

/// Computes a single grid cell of `spec` — **bit-identical** to the
/// same cell of [`run_sweep`] over the full grid — without touching
/// any other cell.
///
/// Three properties make the isolation exact:
///
/// * the cell's RNG seed derives only from the master seed and the
///   `(mtbf_idx, phi_idx)` coordinates, never from the grid shape;
/// * replications fold in ascending `REP_CHUNK`-aligned chunk order,
///   exactly the order both sweep engines merge per-cell units;
/// * early stopping re-checks convergence at the same fixed round
///   boundaries, and the decision depends only on this cell's own
///   accumulated statistics.
///
/// One `ChunkRunner` is built per call and reused across every
/// chunk, so a serving layer answers repeated point lookups without
/// re-building a `RunMachine` per replication.
///
/// # Errors
/// Out-of-range coordinates, plus everything [`run_sweep`] rejects for
/// this cell's operating point (invalid parameters, infeasible period).
pub fn run_sweep_cell(
    spec: &SweepSpec,
    mtbf_idx: usize,
    phi_idx: usize,
) -> Result<SweepCell, ModelError> {
    validate_grid(spec)?;
    if mtbf_idx >= spec.mtbfs.len() {
        return Err(ModelError::InvalidParameter {
            name: "mtbf_idx",
            reason: format!("index {mtbf_idx} out of range ({} MTBFs)", spec.mtbfs.len()),
        });
    }
    if phi_idx >= spec.phi_ratios.len() {
        return Err(ModelError::InvalidParameter {
            name: "phi_idx",
            reason: format!(
                "index {phi_idx} out of range ({} phi ratios)",
                spec.phi_ratios.len()
            ),
        });
    }
    let plan = build_plan(spec, mtbf_idx, phi_idx)?;
    let ci = mtbf_idx * spec.phi_ratios.len() + phi_idx;
    let budget = spec.replications;
    let round = spec.round_len();
    let mut runner = ChunkRunner::new(&plan.run_cfg, &plan.mc)?;
    let mut acc = WasteAccum::default();
    let mut next = 0usize;
    while next < budget {
        let round_end = (next + round).min(budget);
        for (s, e) in chunk_ranges(next, round_end) {
            let ua = chunk_accum_with(&mut runner, plan.t_base, ci, s, e, None);
            acc.merge_in_place(&ua);
        }
        next = round_end;
        if let Some(es) = spec.early_stop {
            if cell_converged(&acc, &es, next) {
                break;
            }
        }
    }
    Ok(finish_cell(&plan, acc, next))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> PlatformParams {
        PlatformParams::new(0.0, 2.0, 4.0, 10.0, 48).unwrap()
    }

    #[test]
    fn sweep_covers_grid_and_tracks_model() {
        let mut spec = SweepSpec::new(
            Protocol::DoubleNbl,
            params(),
            vec![0.0, 0.5, 1.0],
            vec![1_800.0, 7.0 * 3_600.0],
        );
        spec.replications = 30;
        spec.work_in_mtbfs = 15.0;
        let result = run_sweep(&spec).unwrap();
        assert_eq!(result.cells.len(), 6);
        for c in &result.cells {
            assert!(c.completed > 0, "cell {c:?}");
            assert_eq!(c.replications_run, 30);
            let sim = c.sim_waste.expect("completed cells have an estimate");
            assert!((0.0..=1.0).contains(&sim));
            // CI-aware model check: the simulated surface must track
            // the first-order model within its own statistical
            // resolution plus a small model-bias allowance. With the
            // fixed seed this is fully deterministic — the bound is
            // CI-scaled so reasonable engine changes stay green.
            if c.completed * 5 >= c.replications_run * 4 {
                let hw = c.half_width.expect("completed cells have a half-width");
                let tol = 3.0 * hw + 0.01;
                assert!(
                    (c.model_waste - sim).abs() <= tol,
                    "cell {c:?}: |model - sim| > {tol}"
                );
            }
        }
    }

    #[test]
    fn cells_use_independent_seeds() {
        let mut spec = SweepSpec::new(Protocol::Triple, params(), vec![0.25, 0.75], vec![3_600.0]);
        spec.replications = 10;
        spec.work_in_mtbfs = 10.0;
        let result = run_sweep(&spec).unwrap();
        // Different φ cells must not produce byte-identical estimates
        // (they would if seeds collided and waste were φ-independent —
        // a seed collision is the only way these could coincide).
        assert_ne!(result.cells[0].sim_waste, result.cells[1].sim_waste);
    }

    #[test]
    fn sweep_is_reproducible() {
        let mut spec = SweepSpec::new(Protocol::DoubleBof, params(), vec![0.5], vec![1_800.0]);
        spec.replications = 12;
        let a = run_sweep(&spec).unwrap();
        let b = run_sweep(&spec).unwrap();
        assert_eq!(a.cells[0].sim_waste, b.cells[0].sim_waste);
    }

    #[test]
    fn engines_are_bit_identical() {
        let mut spec = SweepSpec::new(
            Protocol::DoubleNbl,
            params(),
            vec![0.0, 0.3, 0.9],
            vec![900.0, 3_600.0],
        );
        spec.replications = 20;
        spec.work_in_mtbfs = 8.0;
        spec.engine = SweepEngine::PerCell;
        let per_cell = run_sweep(&spec).unwrap();
        spec.engine = SweepEngine::GlobalPool;
        let global = run_sweep(&spec).unwrap();
        for (a, b) in per_cell.cells.iter().zip(&global.cells) {
            assert_eq!(a.sim_waste, b.sim_waste);
            assert_eq!(a.half_width, b.half_width);
            assert_eq!(a.completed, b.completed);
            assert_eq!(a.replications_run, b.replications_run);
        }
    }

    #[test]
    fn rejects_out_of_range_phi_ratio() {
        for bad in [-0.1, 1.5, f64::NAN] {
            let spec = SweepSpec::new(Protocol::DoubleNbl, params(), vec![0.5, bad], vec![3_600.0]);
            let err = run_sweep(&spec).unwrap_err();
            assert!(
                matches!(
                    err,
                    ModelError::InvalidParameter {
                        name: "phi_ratio",
                        ..
                    }
                ),
                "{bad} gave {err:?}"
            );
        }
    }

    #[test]
    fn early_stopping_saves_budget_and_stays_deterministic() {
        let mut spec = SweepSpec::new(Protocol::DoubleNbl, params(), vec![0.5], vec![3_600.0]);
        spec.replications = 200;
        spec.work_in_mtbfs = 10.0;
        // Loose target: a handful of rounds should converge.
        spec.early_stop = Some(EarlyStop {
            target_half_width: 0.05,
            min_replications: 16,
            batch: 16,
        });
        let a = run_sweep(&spec).unwrap();
        let cell = &a.cells[0];
        assert!(
            cell.replications_run >= 16 && cell.replications_run < 200,
            "expected early stop, ran {}",
            cell.replications_run
        );
        let hw = cell.half_width.expect("converged cell has an interval");
        assert!(hw <= 0.05, "half-width {hw}");
        // Deterministic across engines and repeat runs.
        let b = run_sweep(&spec).unwrap();
        assert_eq!(cell.sim_waste, b.cells[0].sim_waste);
        assert_eq!(cell.replications_run, b.cells[0].replications_run);
        spec.engine = SweepEngine::PerCell;
        let c = run_sweep(&spec).unwrap();
        assert_eq!(cell.sim_waste, c.cells[0].sim_waste);
        assert_eq!(cell.replications_run, c.cells[0].replications_run);
    }

    #[test]
    fn metrics_count_work_without_perturbing_results() {
        let _guard = dck_obs::exclusive_session();
        let mut spec = SweepSpec::new(Protocol::DoubleNbl, params(), vec![0.0, 0.5], vec![1_800.0]);
        spec.replications = 16;
        spec.work_in_mtbfs = 8.0;
        let off = run_sweep(&spec).unwrap();
        dck_obs::reset();
        let was = dck_obs::set_enabled(true);
        let on = run_sweep(&spec).unwrap();
        dck_obs::set_enabled(was);
        let snap = dck_obs::snapshot();
        // Bit-identical with observability on or off (acceptance
        // criterion: counters never touch RNG streams or float order).
        for (a, b) in off.cells.iter().zip(&on.cells) {
            assert_eq!(a.sim_waste, b.sim_waste);
            assert_eq!(a.half_width, b.half_width);
            assert_eq!(a.completed, b.completed);
        }
        // GlobalPool without early stopping: one round, 2 cells ×
        // 16 replications in chunks of 8 = 4 units.
        assert_eq!(snap.counter("sweep.cells"), 2);
        assert_eq!(snap.counter("sweep.rounds"), 1);
        assert_eq!(snap.counter("sweep.units"), 4);
        assert_eq!(snap.counter("sweep.replications"), 32);
        assert_eq!(snap.counter("sweep.cells_early_stopped"), 0);
    }

    fn ckpt_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dck-sweep-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn assert_cells_bit_identical(a: &SweepResult, b: &SweepResult) {
        assert_eq!(a.cells.len(), b.cells.len());
        for (x, y) in a.cells.iter().zip(&b.cells) {
            assert_eq!(x.sim_waste.map(f64::to_bits), y.sim_waste.map(f64::to_bits));
            assert_eq!(
                x.half_width.map(f64::to_bits),
                y.half_width.map(f64::to_bits)
            );
            assert_eq!(x.completed, y.completed);
            assert_eq!(x.fatal, y.fatal);
            assert_eq!(x.truncated, y.truncated);
            assert_eq!(x.replications_run, y.replications_run);
        }
    }

    /// Multi-round spec: a never-satisfied early-stop target forces
    /// `replications / batch` rounds, giving the pause/resume tests
    /// real mid-sweep boundaries to interrupt at.
    fn multi_round_spec() -> SweepSpec {
        let mut spec = SweepSpec::new(
            Protocol::DoubleNbl,
            params(),
            vec![0.0, 0.6],
            vec![1_800.0, 3_600.0],
        );
        spec.replications = 48;
        spec.work_in_mtbfs = 6.0;
        spec.early_stop = Some(EarlyStop {
            target_half_width: 0.0,
            min_replications: 16,
            batch: 16,
        });
        spec
    }

    #[test]
    fn resume_is_bit_identical_at_every_pause_point() {
        let spec = multi_round_spec();
        let baseline = run_sweep(&spec).unwrap();
        // 48 replications in rounds of 16 → 3 rounds; interrupt after
        // each boundary in turn and resume to completion.
        for pause_after in 1..=2u64 {
            let dir = ckpt_dir(&format!("pause{pause_after}"));
            let mut ck = SweepCheckpoint::new(&dir);
            ck.max_rounds = Some(pause_after);
            let err = run_sweep_with_checkpoint(&spec, Some(&ck)).unwrap_err();
            assert!(
                matches!(err, ModelError::Execution { .. }),
                "pause must be typed, got {err:?}"
            );
            assert!(err.to_string().contains("paused"), "{err}");
            let mut resume = SweepCheckpoint::new(&dir);
            resume.resume = true;
            let resumed = run_sweep_with_checkpoint(&spec, Some(&resume)).unwrap();
            assert_cells_bit_identical(&baseline, &resumed);
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }

    #[test]
    fn resume_after_completion_reloads_terminal_snapshot() {
        let spec = multi_round_spec();
        let dir = ckpt_dir("terminal");
        let ck = SweepCheckpoint::new(&dir);
        let first = run_sweep_with_checkpoint(&spec, Some(&ck)).unwrap();
        let mut resume = SweepCheckpoint::new(&dir);
        resume.resume = true;
        let again = run_sweep_with_checkpoint(&spec, Some(&resume)).unwrap();
        assert_cells_bit_identical(&first, &again);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_with_empty_dir_is_a_fresh_run() {
        let spec = multi_round_spec();
        let baseline = run_sweep(&spec).unwrap();
        let dir = ckpt_dir("fresh");
        let mut ck = SweepCheckpoint::new(&dir);
        ck.resume = true;
        let fresh = run_sweep_with_checkpoint(&spec, Some(&ck)).unwrap();
        assert_cells_bit_identical(&baseline, &fresh);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpointing_rejects_per_cell_engine() {
        let mut spec = multi_round_spec();
        spec.engine = SweepEngine::PerCell;
        let dir = ckpt_dir("percell");
        let ck = SweepCheckpoint::new(&dir);
        let err = run_sweep_with_checkpoint(&spec, Some(&ck)).unwrap_err();
        assert!(matches!(
            err,
            ModelError::InvalidParameter { name: "engine", .. }
        ));
    }

    #[test]
    fn resuming_a_different_spec_is_rejected() {
        let spec = multi_round_spec();
        let dir = ckpt_dir("wrongspec");
        let mut ck = SweepCheckpoint::new(&dir);
        ck.max_rounds = Some(1);
        let _ = run_sweep_with_checkpoint(&spec, Some(&ck)).unwrap_err();
        let mut other = spec.clone();
        other.seed ^= 0xBAD;
        let mut resume = SweepCheckpoint::new(&dir);
        resume.resume = true;
        let err = run_sweep_with_checkpoint(&other, Some(&resume)).unwrap_err();
        assert!(err.to_string().contains("different sweep spec"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_with_explicitly_changed_cadence_is_a_typed_error() {
        let spec = multi_round_spec();
        let dir = ckpt_dir("cadence-reject");
        let mut ck = SweepCheckpoint::new(&dir);
        ck.every_rounds = 1;
        ck.every_explicit = true;
        ck.max_rounds = Some(1);
        let _ = run_sweep_with_checkpoint(&spec, Some(&ck)).unwrap_err();
        let mut resume = SweepCheckpoint::new(&dir);
        resume.resume = true;
        resume.every_rounds = 2;
        resume.every_explicit = true;
        let err = run_sweep_with_checkpoint(&spec, Some(&resume)).unwrap_err();
        assert!(
            matches!(
                err,
                ModelError::InvalidParameter {
                    name: "checkpoint_every",
                    ..
                }
            ),
            "{err:?}"
        );
        let msg = err.to_string();
        assert!(
            msg.contains("cadence of 1") && msg.contains("--checkpoint-every 2"),
            "error must name both values: {msg}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_with_defaulted_cadence_honors_the_snapshot() {
        let _guard = dck_obs::exclusive_session();
        let spec = multi_round_spec();
        let baseline = run_sweep(&spec).unwrap();
        let dir = ckpt_dir("cadence-honor");
        // First leg pauses after round 1 on an explicit every-2
        // cadence; the pause snapshot records cadence 2.
        let mut ck = SweepCheckpoint::new(&dir);
        ck.every_rounds = 2;
        ck.every_explicit = true;
        ck.max_rounds = Some(1);
        let _ = run_sweep_with_checkpoint(&spec, Some(&ck)).unwrap_err();
        // Second leg passes no cadence (defaulted every_rounds = 1):
        // it must pick up the recorded 2, not silently rebase to 1 —
        // observable as round 2 writing no snapshot while round 3
        // (cadence hit + terminal) writes one.
        dck_obs::reset();
        let was = dck_obs::set_enabled(true);
        let mut resume = SweepCheckpoint::new(&dir);
        resume.resume = true;
        let resumed = run_sweep_with_checkpoint(&spec, Some(&resume)).unwrap();
        dck_obs::set_enabled(was);
        let snap = dck_obs::snapshot();
        assert_cells_bit_identical(&baseline, &resumed);
        // Rounds 2 and 3 under recorded cadence 2: round 2 hits the
        // cadence (2 % 2 == 0), round 3 does not but gets the terminal
        // write — 2 checkpoints. A rebased cadence of 1 would write 3.
        assert_eq!(snap.counter("sweep.checkpoints_written"), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// End-to-end containment: replication (3, 7) panics once inside
    /// the pool; the requeue retry recovers it and the result is
    /// bit-identical to an injection-free run. The env hook is
    /// process-global, but a `:once` injection is harmless even if a
    /// concurrently-starting sweep test consumes it first — contained
    /// panics never perturb results — and this run then simply
    /// verifies plain bit-identity.
    #[test]
    fn contained_panic_preserves_bit_identical_results() {
        let spec = multi_round_spec();
        let baseline = run_sweep(&spec).unwrap();
        std::env::set_var("DCK_SWEEP_PANIC_UNIT", "3:7:once");
        let injected = run_sweep(&spec);
        std::env::remove_var("DCK_SWEEP_PANIC_UNIT");
        let injected = injected.unwrap();
        assert_cells_bit_identical(&baseline, &injected);
    }

    /// A panic that persists past the requeue retry must checkpoint
    /// the pre-round state and surface as a typed error — the
    /// acceptance criterion for worker-panic containment. Injected at
    /// `(cell 3, replication 32)`: no other test in this binary runs
    /// cell 3 past replication 29, so the process-global env hook
    /// cannot fail a concurrently-starting sweep.
    #[test]
    fn persistent_panic_checkpoints_then_errors() {
        let spec = multi_round_spec();
        let dir = ckpt_dir("panic");
        let ck = SweepCheckpoint::new(&dir);
        std::env::set_var("DCK_SWEEP_PANIC_UNIT", "3:32");
        let outcome = run_sweep_with_checkpoint(&spec, Some(&ck));
        std::env::remove_var("DCK_SWEEP_PANIC_UNIT");
        let err = outcome.unwrap_err();
        assert!(matches!(err, ModelError::Execution { .. }), "{err:?}");
        assert!(err.to_string().contains("injected sweep panic"), "{err}");
        assert!(err.to_string().contains("checkpointed"), "{err}");
        // Replication 32 lives in round 3 (reps 32..48), so the
        // snapshot holds rounds 1–2; resuming without the fault
        // completes bit-identically to an undisturbed run.
        let baseline = run_sweep(&spec).unwrap();
        let mut resume = SweepCheckpoint::new(&dir);
        resume.resume = true;
        let resumed = run_sweep_with_checkpoint(&spec, Some(&resume)).unwrap();
        assert_cells_bit_identical(&baseline, &resumed);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_counters_track_writes_and_resumes() {
        let _guard = dck_obs::exclusive_session();
        let spec = multi_round_spec();
        let dir = ckpt_dir("counters");
        dck_obs::reset();
        let was = dck_obs::set_enabled(true);
        let mut ck = SweepCheckpoint::new(&dir);
        ck.max_rounds = Some(1);
        let _ = run_sweep_with_checkpoint(&spec, Some(&ck));
        let mut resume = SweepCheckpoint::new(&dir);
        resume.resume = true;
        let _ = run_sweep_with_checkpoint(&spec, Some(&resume)).unwrap();
        dck_obs::set_enabled(was);
        let snap = dck_obs::snapshot();
        assert_eq!(snap.counter("sweep.resumes"), 1);
        assert_eq!(snap.counter("sweep.rounds_restored"), 1);
        // Paused run: round 1's cadence write plus the pause write.
        // Resumed run: rounds 2 and 3 each write once; the terminal
        // round's cadence write doubles as the final snapshot.
        assert_eq!(snap.counter("sweep.checkpoints_written"), 4);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn degenerate_cells_are_marked() {
        // MTBF far below any feasible period: nothing completes.
        let p = PlatformParams::new(0.0, 2.0, 4.0, 10.0, 48).unwrap();
        let mut spec = SweepSpec::new(Protocol::DoubleNbl, p, vec![0.0], vec![40.0]);
        spec.replications = 4;
        spec.work_in_mtbfs = 500.0;
        match run_sweep(&spec) {
            Ok(result) => {
                let c = &result.cells[0];
                if c.completed == 0 {
                    assert!(c.sim_waste.is_none());
                    assert!(c.half_width.is_none());
                    assert_eq!(c.fatal + c.truncated, 4);
                }
            }
            // The operating point may already be infeasible for the
            // model — also an acceptable, explicit outcome.
            Err(ModelError::Infeasible { .. }) => {}
            Err(e) => panic!("unexpected error {e:?}"),
        }
    }

    /// The serving contract: a cell computed in isolation is
    /// bit-identical to the same cell of the full grid, on both
    /// engines, with and without early stopping.
    #[test]
    fn single_cell_query_matches_full_sweep_bit_exactly() {
        let mut spec = SweepSpec::new(
            Protocol::DoubleNbl,
            params(),
            vec![0.0, 0.5, 1.0],
            vec![1_800.0, 3_600.0],
        );
        spec.replications = 48;
        spec.work_in_mtbfs = 10.0;
        for early_stop in [
            None,
            Some(EarlyStop {
                target_half_width: 0.02,
                min_replications: 16,
                batch: 16,
            }),
        ] {
            spec.early_stop = early_stop;
            for engine in [SweepEngine::GlobalPool, SweepEngine::PerCell] {
                spec.engine = engine;
                let full = run_sweep(&spec).unwrap();
                for (mi, _) in spec.mtbfs.iter().enumerate() {
                    for (pi, _) in spec.phi_ratios.iter().enumerate() {
                        let ci = mi * spec.phi_ratios.len() + pi;
                        let grid = &full.cells[ci];
                        let solo = run_sweep_cell(&spec, mi, pi).unwrap();
                        assert_eq!(
                            solo.sim_waste.map(f64::to_bits),
                            grid.sim_waste.map(f64::to_bits),
                            "cell ({mi},{pi}) on {engine:?} es={early_stop:?}"
                        );
                        assert_eq!(
                            solo.half_width.map(f64::to_bits),
                            grid.half_width.map(f64::to_bits),
                            "cell ({mi},{pi}) on {engine:?}"
                        );
                        assert_eq!(solo.period.to_bits(), grid.period.to_bits());
                        assert_eq!(solo.model_waste.to_bits(), grid.model_waste.to_bits());
                        assert_eq!(solo.completed, grid.completed);
                        assert_eq!(solo.fatal, grid.fatal);
                        assert_eq!(solo.truncated, grid.truncated);
                        assert_eq!(solo.replications_run, grid.replications_run);
                    }
                }
            }
        }
    }

    #[test]
    fn single_cell_query_rejects_bad_coordinates() {
        let spec = SweepSpec::new(Protocol::Triple, params(), vec![0.5], vec![3_600.0]);
        assert!(matches!(
            run_sweep_cell(&spec, 1, 0),
            Err(ModelError::InvalidParameter {
                name: "mtbf_idx",
                ..
            })
        ));
        assert!(matches!(
            run_sweep_cell(&spec, 0, 1),
            Err(ModelError::InvalidParameter {
                name: "phi_idx",
                ..
            })
        ));
    }

    /// Degenerate cells (no completed replication) must serialize with
    /// explicit `null`s — never `NaN` tokens or missing keys — and
    /// round-trip back to `None`.
    #[test]
    fn degenerate_cell_json_is_explicit_null_and_round_trips() {
        let spec = SweepSpec::new(Protocol::DoubleNbl, params(), vec![0.0], vec![40.0]);
        let result = SweepResult {
            spec,
            cells: vec![SweepCell {
                phi_ratio: 0.0,
                mtbf: 40.0,
                period: 50.0,
                model_waste: 0.9,
                sim_waste: None,
                half_width: None,
                completed: 0,
                fatal: 4,
                truncated: 0,
                replications_run: 4,
            }],
        };
        for json in [
            serde_json::to_string(&result).unwrap(),
            serde_json::to_string_pretty(&result).unwrap(),
        ] {
            // Explicit nulls, present keys, no NaN/Infinity leakage.
            let normalized = json.replace(": ", ":");
            assert!(normalized.contains("\"sim_waste\":null"), "{json}");
            assert!(normalized.contains("\"half_width\":null"), "{json}");
            assert!(!json.contains("NaN") && !json.contains("inf"), "{json}");
            let back: SweepResult = serde_json::from_str(&json).unwrap();
            assert!(back.cells[0].sim_waste.is_none());
            assert!(back.cells[0].half_width.is_none());
            assert_eq!(back.cells[0].fatal, 4);
        }
    }
}
