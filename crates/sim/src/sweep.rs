//! Parameter sweeps: simulated waste over a `(φ/R, MTBF)` grid.
//!
//! The experiments crate draws the paper's figures from the analytical
//! model; this module is the simulation-side counterpart for downstream
//! users: take a grid of operating points, run the Monte-Carlo
//! estimator at every cell (cells are independent and each cell's
//! replications already parallelize), and return a typed table of
//! confidence intervals ready for CSV/plotting — the raw material for a
//! *simulated* Figure 4/7.

use crate::config::{PeriodChoice, RunConfig};
use crate::montecarlo::{estimate_waste, MonteCarloConfig, SourceKind};
use dck_core::{optimal_period, ModelError, PlatformParams, Protocol};
use serde::{Deserialize, Serialize};

/// Specification of a waste sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepSpec {
    /// Protocol to sweep.
    pub protocol: Protocol,
    /// Platform parameters.
    pub params: PlatformParams,
    /// Overhead ratios `φ/R` to sample.
    pub phi_ratios: Vec<f64>,
    /// Platform MTBFs (seconds) to sample.
    pub mtbfs: Vec<f64>,
    /// Useful work per run, in multiples of the cell's MTBF.
    pub work_in_mtbfs: f64,
    /// Replications per cell.
    pub replications: usize,
    /// Master seed (each cell derives an independent stream space).
    pub seed: u64,
    /// Worker threads (0 = auto).
    pub workers: usize,
    /// Failure process.
    pub source: SourceKind,
}

impl SweepSpec {
    /// A sweep with sensible defaults over the given grid.
    pub fn new(
        protocol: Protocol,
        params: PlatformParams,
        phi_ratios: Vec<f64>,
        mtbfs: Vec<f64>,
    ) -> Self {
        SweepSpec {
            protocol,
            params,
            phi_ratios,
            mtbfs,
            work_in_mtbfs: 20.0,
            replications: 60,
            seed: 0x5EE9,
            workers: 0,
            source: SourceKind::Exponential,
        }
    }
}

/// One evaluated sweep cell.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SweepCell {
    /// Overhead ratio `φ/R`.
    pub phi_ratio: f64,
    /// Platform MTBF (seconds).
    pub mtbf: f64,
    /// The (model-optimal) period used.
    pub period: f64,
    /// Model waste at that period (for overlay).
    pub model_waste: f64,
    /// Simulated mean waste over completed replications.
    pub sim_waste: f64,
    /// 95% half-width of the simulated mean.
    pub half_width: f64,
    /// Replications that completed (others hit fatal failures or caps).
    pub completed: usize,
    /// Replications ended by fatal failure.
    pub fatal: usize,
}

/// The sweep result: cells in row-major order (MTBF outer, φ inner).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepResult {
    /// The spec that produced it.
    pub spec: SweepSpec,
    /// Evaluated cells.
    pub cells: Vec<SweepCell>,
}

impl SweepResult {
    /// Largest |model − sim| over cells with a meaningful estimate
    /// (≥ 80 % completed runs).
    pub fn max_model_deviation(&self) -> f64 {
        self.cells
            .iter()
            .filter(|c| c.completed * 5 >= self.spec.replications * 4)
            .map(|c| (c.model_waste - c.sim_waste).abs())
            .fold(0.0, f64::max)
    }
}

/// Runs the sweep. Cells where no feasible operating point exists (the
/// waste saturates) are still reported, with the model waste clamped
/// at 1 and whatever the simulator measured.
///
/// # Errors
/// Propagates parameter validation.
pub fn run_sweep(spec: &SweepSpec) -> Result<SweepResult, ModelError> {
    spec.params.validate()?;
    let mut cells = Vec::with_capacity(spec.mtbfs.len() * spec.phi_ratios.len());
    for (mi, &mtbf) in spec.mtbfs.iter().enumerate() {
        for (pi, &ratio) in spec.phi_ratios.iter().enumerate() {
            let phi = ratio.clamp(0.0, 1.0) * spec.params.theta_min;
            let opt = optimal_period(spec.protocol, &spec.params, phi, mtbf)?;
            let mut run_cfg = RunConfig::new(spec.protocol, spec.params, phi, mtbf);
            run_cfg.period = PeriodChoice::Explicit(opt.period);
            let mc = MonteCarloConfig {
                replications: spec.replications,
                // Independent stream space per cell.
                seed: spec
                    .seed
                    .wrapping_add((mi as u64) << 32)
                    .wrapping_add(pi as u64),
                workers: spec.workers,
                source: spec.source,
            };
            let est = estimate_waste(&run_cfg, spec.work_in_mtbfs * mtbf, &mc)?;
            cells.push(SweepCell {
                phi_ratio: ratio,
                mtbf,
                period: opt.period,
                model_waste: opt.waste.total,
                sim_waste: est.ci95.mean,
                half_width: est.ci95.half_width,
                completed: est.completed,
                fatal: est.fatal,
            });
        }
    }
    Ok(SweepResult {
        spec: spec.clone(),
        cells,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> PlatformParams {
        PlatformParams::new(0.0, 2.0, 4.0, 10.0, 48).unwrap()
    }

    #[test]
    fn sweep_covers_grid_and_tracks_model() {
        let mut spec = SweepSpec::new(
            Protocol::DoubleNbl,
            params(),
            vec![0.0, 0.5, 1.0],
            vec![1_800.0, 7.0 * 3_600.0],
        );
        spec.replications = 30;
        spec.work_in_mtbfs = 15.0;
        let result = run_sweep(&spec).unwrap();
        assert_eq!(result.cells.len(), 6);
        for c in &result.cells {
            assert!(c.completed > 0, "cell {c:?}");
            assert!((0.0..=1.0).contains(&c.sim_waste));
        }
        // Simulated surface tracks the model (first-order regime).
        assert!(
            result.max_model_deviation() < 0.02,
            "max dev {}",
            result.max_model_deviation()
        );
    }

    #[test]
    fn cells_use_independent_seeds() {
        let mut spec = SweepSpec::new(Protocol::Triple, params(), vec![0.25, 0.75], vec![3_600.0]);
        spec.replications = 10;
        spec.work_in_mtbfs = 10.0;
        let result = run_sweep(&spec).unwrap();
        // Different φ cells must not produce byte-identical estimates
        // (they would if seeds collided and waste were φ-independent —
        // a seed collision is the only way these could coincide).
        assert_ne!(result.cells[0].sim_waste, result.cells[1].sim_waste);
    }

    #[test]
    fn sweep_is_reproducible() {
        let mut spec = SweepSpec::new(Protocol::DoubleBof, params(), vec![0.5], vec![1_800.0]);
        spec.replications = 12;
        let a = run_sweep(&spec).unwrap();
        let b = run_sweep(&spec).unwrap();
        assert_eq!(a.cells[0].sim_waste, b.cells[0].sim_waste);
    }
}
