//! Two-level (hierarchical) simulation: buddy checkpointing plus
//! periodic global checkpoints to stable storage (§VIII future work).
//!
//! The run is a sequence of *segments* of `K` buddy periods. Each
//! segment executes under the ordinary level-1 simulator; a **fatal**
//! buddy failure no longer ends the run — the application reloads the
//! last global checkpoint (blocking `D + Rg`) and re-runs the segment.
//! A completed segment is sealed by a blocking global write `Cg`. The
//! write is **resumable**: each node writes its own file, so a failure
//! during the write costs a normal `D + R` buddy recovery (the segment
//! boundary's buddy snapshots are intact) plus re-sending only the
//! failed node's share — already-written data persists. A full-restart
//! write would be unusable in exactly the regimes that need global
//! checkpoints (`Cg ≳ M` ⇒ `e^{Cg/M}` expected restarts).
//!
//! Known first-order seams (all conservative or negligible, and shared
//! with the analytical `HierarchicalModel`): risk windows do not
//! persist across segment boundaries (window ≪ segment), and a failure
//! during the global write is treated as non-fatal (the write window is
//! short relative to the segment).

use crate::config::RunConfig;
use crate::run::{run_to_completion_with_pending, StopReason};
use dck_core::{GlobalStore, ModelError};
use dck_failures::{FailureEvent, FailureSource};
use dck_simcore::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Configuration of a two-level run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HierarchicalRunConfig {
    /// Level-1 (buddy) configuration.
    pub inner: RunConfig,
    /// Level-2 storage costs.
    pub store: GlobalStore,
    /// Buddy periods per global segment (`K`).
    pub periods_per_global: u32,
    /// Safety cap on fatal rollbacks per run.
    pub max_rollbacks: u64,
}

/// Outcome of a two-level run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HierarchicalOutcome {
    /// Wall-clock duration.
    pub total_time: f64,
    /// Useful work completed.
    pub useful_work: f64,
    /// Level-1 failures absorbed from buddy memory.
    pub failures: u64,
    /// Fatal buddy failures converted into global rollbacks.
    pub fatal_rollbacks: u64,
    /// Global checkpoints written.
    pub global_writes: u64,
    /// True if the work target was reached (false = rollback cap hit).
    pub completed: bool,
}

impl HierarchicalOutcome {
    /// Empirical waste.
    pub fn waste(&self) -> f64 {
        if self.total_time <= 0.0 {
            0.0
        } else {
            (1.0 - self.useful_work / self.total_time).clamp(0.0, 1.0)
        }
    }
}

/// A failure source with a push-back buffer, letting the wrapper peek
/// at events around global-write windows without losing them for the
/// next segment.
struct BufferedSource<'a> {
    pending: VecDeque<FailureEvent>,
    inner: &'a mut dyn FailureSource,
}

impl FailureSource for BufferedSource<'_> {
    fn next_failure(&mut self) -> FailureEvent {
        self.pending
            .pop_front()
            .unwrap_or_else(|| self.inner.next_failure())
    }

    fn nodes(&self) -> u64 {
        self.inner.nodes()
    }

    fn platform_mtbf(&self) -> SimTime {
        self.inner.platform_mtbf()
    }
}

/// Runs `t_base` units of work under the two-level scheme.
///
/// # Errors
/// Propagates level-1 configuration errors; `periods_per_global ≥ 1`.
pub fn run_hierarchical(
    cfg: &HierarchicalRunConfig,
    t_base: f64,
    source: &mut dyn FailureSource,
) -> Result<HierarchicalOutcome, ModelError> {
    if cfg.periods_per_global == 0 {
        return Err(ModelError::invalid("periods_per_global", "must be >= 1"));
    }
    let (schedule, _response, _) = cfg.inner.build()?;
    if schedule.work_per_period() <= 0.0 {
        return Ok(HierarchicalOutcome {
            total_time: f64::INFINITY,
            useful_work: 0.0,
            failures: 0,
            fatal_rollbacks: 0,
            global_writes: 0,
            completed: false,
        });
    }
    let segment_work = cfg.periods_per_global as f64 * schedule.work_per_period();
    let recovery_blocked = cfg.inner.params.downtime + cfg.inner.params.recovery();

    let mut buffered = BufferedSource {
        pending: VecDeque::new(),
        inner: source,
    };

    let mut wall = 0.0_f64;
    let mut committed = 0.0_f64; // work safely on stable storage
    let mut failures = 0u64;
    let mut rollbacks = 0u64;
    let mut writes = 0u64;

    while committed < t_base {
        let target = (t_base - committed).min(segment_work);
        // Run the segment on a time-shifted view: inner simulation time
        // starts at 0, so offset the source events.
        // (Exponential sources are memoryless; for renewal sources the
        // shift is the standard stationary approximation.)
        let offset = wall;
        let mut shifted = ShiftedSource {
            inner: &mut buffered,
            offset,
        };
        let (out, pending) = run_to_completion_with_pending(&cfg.inner, target, &mut shifted)?;
        if let Some(ev) = pending {
            // Re-inject the unconsumed event (back in absolute time) so
            // the failure stream is not thinned at segment boundaries.
            buffered.pending.push_front(FailureEvent {
                at: SimTime::seconds(ev.at.as_secs() + offset),
                node: ev.node,
            });
        }
        failures += out.failures;
        match out.reason {
            StopReason::WorkComplete => {
                wall += out.total_time;
                // Seal with a resumable global write; a failure during
                // the write pauses it for a buddy recovery and the
                // already-written portion persists.
                let mut remaining = cfg.store.write_time;
                let mut pos = wall;
                loop {
                    let ev = buffered.next_failure();
                    if ev.at.as_secs() >= pos + remaining {
                        buffered.pending.push_front(ev);
                        wall = pos + remaining;
                        break;
                    }
                    failures += 1;
                    remaining -= ev.at.as_secs() - pos;
                    pos = ev.at.as_secs() + recovery_blocked;
                }
                writes += 1;
                committed += target;
            }
            StopReason::Fatal => {
                rollbacks += 1;
                if rollbacks >= cfg.max_rollbacks {
                    return Ok(HierarchicalOutcome {
                        total_time: wall + out.fatal_at.unwrap_or(out.total_time),
                        useful_work: committed,
                        failures,
                        fatal_rollbacks: rollbacks,
                        global_writes: writes,
                        completed: false,
                    });
                }
                // Reload from stable storage and re-run the segment.
                // (Fatal runs carry a time; fall back to the full run
                // time rather than panicking a sweep worker.)
                wall += out.fatal_at.unwrap_or(out.total_time)
                    + cfg.inner.params.downtime
                    + cfg.store.read_time;
            }
            // HorizonReached cannot occur in completion mode; treat it
            // like any other truncated run instead of panicking.
            StopReason::FailureCapReached | StopReason::NoProgress | StopReason::HorizonReached => {
                return Ok(HierarchicalOutcome {
                    total_time: wall + out.total_time,
                    useful_work: committed + out.useful_work,
                    failures,
                    fatal_rollbacks: rollbacks,
                    global_writes: writes,
                    completed: false,
                });
            }
        }
    }

    Ok(HierarchicalOutcome {
        total_time: wall,
        useful_work: t_base,
        failures,
        fatal_rollbacks: rollbacks,
        global_writes: writes,
        completed: true,
    })
}

/// Presents the tail of a failure stream with times shifted so the next
/// segment's inner simulation can start at t = 0.
struct ShiftedSource<'a, 'b> {
    inner: &'a mut BufferedSource<'b>,
    offset: f64,
}

impl FailureSource for ShiftedSource<'_, '_> {
    fn next_failure(&mut self) -> FailureEvent {
        let ev = self.inner.next_failure();
        FailureEvent {
            at: SimTime::seconds((ev.at.as_secs() - self.offset).max(0.0)),
            node: ev.node,
        }
    }

    fn nodes(&self) -> u64 {
        self.inner.nodes()
    }

    fn platform_mtbf(&self) -> SimTime {
        self.inner.platform_mtbf()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PeriodChoice;
    use dck_core::{HierarchicalModel, PlatformParams, Protocol};
    use dck_failures::{AggregatedExponential, FailureTrace, MtbfSpec};
    use dck_simcore::RngFactory;

    fn params(nodes: u64) -> PlatformParams {
        PlatformParams::new(0.0, 2.0, 4.0, 10.0, nodes).unwrap()
    }

    fn store() -> GlobalStore {
        GlobalStore::new(600.0, 600.0).unwrap()
    }

    fn cfg(protocol: Protocol, nodes: u64, phi: f64, mtbf: f64, k: u32) -> HierarchicalRunConfig {
        HierarchicalRunConfig {
            inner: RunConfig::new(protocol, params(nodes), phi, mtbf),
            store: store(),
            periods_per_global: k,
            max_rollbacks: 10_000,
        }
    }

    fn exp_source(c: &HierarchicalRunConfig, seed: u64) -> AggregatedExponential {
        let spec = MtbfSpec::Individual {
            mtbf: SimTime::seconds(c.inner.mtbf * c.inner.params.nodes as f64),
            nodes: c.inner.usable_nodes(),
        };
        AggregatedExponential::new(spec, RngFactory::new(seed).stream(0))
    }

    #[test]
    fn failure_free_run_pays_exactly_the_global_writes() {
        let mut c = cfg(Protocol::DoubleNbl, 8, 1.0, 1e9, 10);
        c.inner.period = PeriodChoice::Explicit(100.0);
        // 10 periods × 97 work = 970 per segment; ask for 2 segments.
        let trace = FailureTrace::new(8, vec![]);
        let out = run_hierarchical(&c, 1940.0, &mut trace.replay()).unwrap();
        assert!(out.completed);
        assert_eq!(out.global_writes, 2);
        assert_eq!(out.fatal_rollbacks, 0);
        // 2 × (1000 schedule + 600 write).
        assert!((out.total_time - 3200.0).abs() < 1e-6, "{}", out.total_time);
        assert!((out.useful_work - 1940.0).abs() < 1e-9);
    }

    #[test]
    fn partial_last_segment_supported() {
        let mut c = cfg(Protocol::DoubleNbl, 8, 1.0, 1e9, 10);
        c.inner.period = PeriodChoice::Explicit(100.0);
        let trace = FailureTrace::new(8, vec![]);
        // 1.5 segments of work: the final write still seals the tail.
        let out = run_hierarchical(&c, 1455.0, &mut trace.replay()).unwrap();
        assert!(out.completed);
        assert_eq!(out.global_writes, 2);
        assert!((out.useful_work - 1455.0).abs() < 1e-9);
    }

    #[test]
    fn fatal_failure_rolls_back_instead_of_dying() {
        let mut c = cfg(Protocol::DoubleNbl, 8, 1.0, 1e9, 10);
        c.inner.period = PeriodChoice::Explicit(100.0);
        // Buddy pair (0,1) dies within the 38 s risk window at t=250:
        // fatal for plain level-1 — here it must roll back and finish.
        let trace = FailureTrace::new(
            8,
            vec![
                FailureEvent {
                    at: SimTime::seconds(250.0),
                    node: 0,
                },
                FailureEvent {
                    at: SimTime::seconds(260.0),
                    node: 1,
                },
            ],
        );
        let out = run_hierarchical(&c, 970.0, &mut trace.replay()).unwrap();
        assert!(out.completed);
        assert_eq!(out.fatal_rollbacks, 1);
        // Lost the 260 s of the first attempt + D + Rg, then a clean
        // segment: 260 + 600 + 1000 + 600(write).
        assert!((out.total_time - 2460.0).abs() < 1e-6, "{}", out.total_time);
    }

    #[test]
    fn failure_during_global_write_pauses_it() {
        let mut c = cfg(Protocol::DoubleNbl, 8, 1.0, 1e9, 10);
        c.inner.period = PeriodChoice::Explicit(100.0);
        // Segment completes at t = 1000; write runs (1000, 1600); a
        // failure at 1300 pauses it for D + R = 4 and the 300 s already
        // written persist: the remaining 300 s complete at 1904... no —
        // resume at 1304 with 300 s left ⇒ done at 1604.
        let trace = FailureTrace::new(
            8,
            vec![FailureEvent {
                at: SimTime::seconds(1300.0),
                node: 2,
            }],
        );
        let out = run_hierarchical(&c, 970.0, &mut trace.replay()).unwrap();
        assert!(out.completed);
        assert_eq!(out.global_writes, 1);
        assert!((out.total_time - 1604.0).abs() < 1e-6, "{}", out.total_time);
    }

    #[test]
    fn monte_carlo_matches_hierarchical_model() {
        // Harsh-ish regime at blocking φ so level 1 progresses: the
        // two-level waste prediction should land near the simulation.
        let m = 300.0;
        let k = 40;
        let c = cfg(Protocol::DoubleNbl, 64, 4.0, m, k);
        let model = HierarchicalModel::new(Protocol::DoubleNbl, &params(64), 4.0, store())
            .unwrap()
            .evaluate(k, m)
            .unwrap();
        let mut wastes = Vec::new();
        for seed in 0..24 {
            let mut src = exp_source(&c, seed);
            let out = run_hierarchical(&c, 30.0 * m, &mut src).unwrap();
            assert!(out.completed);
            wastes.push(out.waste());
        }
        let mean: f64 = wastes.iter().sum::<f64>() / wastes.len() as f64;
        assert!(
            (mean - model.waste).abs() < 0.12,
            "sim {mean} vs model {}",
            model.waste
        );
    }

    #[test]
    fn rollback_cap_reported() {
        let mut c = cfg(Protocol::DoubleNbl, 8, 1.0, 1e9, 10);
        c.inner.period = PeriodChoice::Explicit(100.0);
        c.max_rollbacks = 1;
        // Every attempt dies: pairs keep failing together.
        let events: Vec<FailureEvent> = (0..200)
            .flat_map(|i| {
                let t = 100.0 + i as f64 * 2000.0;
                [
                    FailureEvent {
                        at: SimTime::seconds(t),
                        node: 0,
                    },
                    FailureEvent {
                        at: SimTime::seconds(t + 5.0),
                        node: 1,
                    },
                ]
            })
            .collect();
        let trace = FailureTrace::new(8, events);
        let out = run_hierarchical(&c, 1e9, &mut trace.replay()).unwrap();
        assert!(!out.completed);
        assert_eq!(out.fatal_rollbacks, 1);
    }
}
