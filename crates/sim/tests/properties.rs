//! Property-based tests for the platform simulator.

use dck_core::{optimal_period, PlatformParams, Protocol};
use dck_failures::{AggregatedExponential, MtbfSpec};
use dck_sim::{
    estimate_waste, run_sweep, run_to_completion, run_to_completion_traced, run_until,
    run_until_traced, EarlyStop, MonteCarloConfig, PeriodChoice, RunConfig, StopReason,
    SweepEngine, SweepSpec, TimelineEvent,
};
use dck_simcore::{RngFactory, SimTime};
use proptest::prelude::*;

fn params() -> PlatformParams {
    PlatformParams::new(0.0, 2.0, 4.0, 10.0, 24).unwrap()
}

fn protocol_strategy() -> impl Strategy<Value = Protocol> {
    prop::sample::select(vec![
        Protocol::DoubleNbl,
        Protocol::DoubleBof,
        Protocol::Triple,
    ])
}

fn source(cfg: &RunConfig, seed: u64) -> AggregatedExponential {
    let spec = MtbfSpec::Individual {
        mtbf: SimTime::seconds(cfg.mtbf * cfg.params.nodes as f64),
        nodes: cfg.usable_nodes(),
    };
    AggregatedExponential::new(spec, RngFactory::new(seed).stream(0))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Conservation: wall-clock time = productive schedule time +
    /// outage time, and useful work never exceeds either the requested
    /// work or the elapsed time.
    #[test]
    fn run_conserves_time_and_work(
        protocol in protocol_strategy(),
        ratio in 0.0f64..1.0,
        mtbf in 120.0f64..7200.0,
        seed in 0u64..1000,
    ) {
        let phi = ratio * params().theta_min;
        let cfg = RunConfig::new(protocol, params(), phi, mtbf);
        let t_base = 10.0 * mtbf;
        let mut src = source(&cfg, seed);
        let out = run_to_completion(&cfg, t_base, &mut src).unwrap();
        match out.reason {
            StopReason::WorkComplete => {
                prop_assert!((out.useful_work - t_base).abs() < 1e-6);
                prop_assert!(out.total_time >= t_base - 1e-9);
                // total = productive schedule time + outages; the
                // productive time is work / (W/P) = t_base * P / W,
                // which run-internally equals total - outage.
                let schedule_time = out.total_time - out.outage_time;
                prop_assert!(schedule_time >= out.useful_work - 1e-6);
            }
            StopReason::Fatal => {
                prop_assert!(out.fatal_at.is_some());
                prop_assert!(out.useful_work <= t_base + 1e-6);
            }
            _ => {}
        }
        prop_assert!((0.0..=1.0).contains(&out.waste()));
    }

    /// Determinism: identical seeds give identical outcomes.
    #[test]
    fn runs_are_deterministic(
        protocol in protocol_strategy(),
        seed in 0u64..500,
    ) {
        let cfg = RunConfig::new(protocol, params(), 1.0, 900.0);
        let mut s1 = source(&cfg, seed);
        let mut s2 = source(&cfg, seed);
        let a = run_to_completion(&cfg, 5_000.0, &mut s1).unwrap();
        let b = run_to_completion(&cfg, 5_000.0, &mut s2).unwrap();
        prop_assert_eq!(a.total_time, b.total_time);
        prop_assert_eq!(a.failures, b.failures);
        prop_assert_eq!(a.fatal_at, b.fatal_at);
    }

    /// Horizon runs never exceed the horizon, and longer horizons only
    /// accumulate more (or equal) work for the same failure stream.
    #[test]
    fn horizon_monotone(seed in 0u64..300, h1 in 1_000.0f64..20_000.0) {
        let cfg = RunConfig::new(Protocol::DoubleNbl, params(), 1.0, 600.0);
        let h2 = h1 * 2.0;
        let mut s1 = source(&cfg, seed);
        let mut s2 = source(&cfg, seed);
        let a = run_until(&cfg, h1, &mut s1).unwrap();
        let b = run_until(&cfg, h2, &mut s2).unwrap();
        prop_assert!(a.total_time <= h1 + 1e-9);
        prop_assert!(b.total_time <= h2 + 1e-9);
        if a.reason == StopReason::HorizonReached && b.reason == StopReason::HorizonReached {
            prop_assert!(b.useful_work >= a.useful_work - 1e-9);
        }
    }

    /// More failures never help: halving the MTBF cannot reduce the
    /// mean waste of *completed* runs (fatal runs end early and are
    /// excluded; checked on seed-averaged ensembles to absorb noise).
    #[test]
    fn lower_mtbf_never_wastes_less(seed in 0u64..50) {
        let work = 20_000.0;
        let mean_waste = |mtbf: f64| -> Option<f64> {
            let cfg = RunConfig::new(Protocol::DoubleNbl, params(), 1.0, mtbf);
            let mut sum = 0.0;
            let mut n = 0u32;
            for i in 0..8 {
                let mut s = source(&cfg, seed * 8 + i);
                let out = run_to_completion(&cfg, work, &mut s).unwrap();
                if out.reason == StopReason::WorkComplete {
                    sum += out.waste();
                    n += 1;
                }
            }
            (n > 0).then(|| sum / n as f64)
        };
        if let (Some(fast_failing), Some(slow_failing)) = (mean_waste(600.0), mean_waste(6_000.0)) {
            prop_assert!(
                fast_failing >= slow_failing * 0.9,
                "fast {fast_failing} vs slow {slow_failing}"
            );
        }
    }

    /// Sweep execution is one algorithm in six guises: both engines at
    /// every worker count produce bit-identical cells, with and
    /// without early stopping. The invariant behind it: replication
    /// RNG streams derive from (cell seed, index) only, and per-chunk
    /// accumulators merge in fixed ascending order.
    #[test]
    fn sweep_engines_bit_identical_across_workers(
        seed in 0u64..200,
        reps in 8usize..32,
        early in any::<bool>(),
    ) {
        let mut spec = SweepSpec::new(
            Protocol::DoubleNbl,
            params(),
            vec![0.25, 0.75],
            vec![900.0, 3_600.0],
        );
        spec.seed = seed;
        spec.replications = reps;
        spec.work_in_mtbfs = 6.0;
        if early {
            spec.early_stop = Some(EarlyStop {
                target_half_width: 0.02,
                min_replications: 8,
                batch: 8,
            });
        }
        let mut results = Vec::new();
        for engine in [SweepEngine::PerCell, SweepEngine::GlobalPool] {
            for workers in [1usize, 2, 8] {
                spec.engine = engine;
                spec.workers = workers;
                results.push(run_sweep(&spec).unwrap());
            }
        }
        let reference = results[0].clone();
        for other in &results[1..] {
            for (a, b) in reference.cells.iter().zip(&other.cells) {
                prop_assert_eq!(
                    a.sim_waste.map(f64::to_bits),
                    b.sim_waste.map(f64::to_bits)
                );
                prop_assert_eq!(
                    a.half_width.map(f64::to_bits),
                    b.half_width.map(f64::to_bits)
                );
                prop_assert_eq!(a.completed, b.completed);
                prop_assert_eq!(a.fatal, b.fatal);
                prop_assert_eq!(a.truncated, b.truncated);
                prop_assert_eq!(a.replications_run, b.replications_run);
            }
        }
    }

    /// The global pool reproduces the seed sequential path bit-for-bit:
    /// a one-cell sweep equals a direct `estimate_waste` call at the
    /// same operating point and seed.
    #[test]
    fn global_pool_matches_direct_estimator(
        seed in 0u64..200,
        ratio in 0.0f64..1.0,
    ) {
        let mtbf = 1_800.0;
        let mut spec = SweepSpec::new(Protocol::DoubleNbl, params(), vec![ratio], vec![mtbf]);
        spec.seed = seed;
        spec.replications = 16;
        spec.work_in_mtbfs = 6.0;
        spec.workers = 8;
        let sweep = run_sweep(&spec).unwrap();
        let cell = &sweep.cells[0];

        let phi = ratio * params().theta_min;
        let opt = optimal_period(Protocol::DoubleNbl, &params(), phi, mtbf).unwrap();
        let mut run_cfg = RunConfig::new(Protocol::DoubleNbl, params(), phi, mtbf);
        run_cfg.period = PeriodChoice::Explicit(opt.period);
        // A one-cell sweep's derived seed is the master seed itself.
        let mut mc = MonteCarloConfig::new(16, seed);
        mc.workers = 1;
        let est = estimate_waste(&run_cfg, 6.0 * mtbf, &mc).unwrap();

        prop_assert_eq!(
            cell.sim_waste.map(f64::to_bits),
            est.ci95.map(|ci| ci.mean.to_bits())
        );
        prop_assert_eq!(
            cell.half_width.map(f64::to_bits),
            est.ci95.map(|ci| ci.half_width.to_bits())
        );
        prop_assert_eq!(cell.completed, est.completed);
        prop_assert_eq!(cell.fatal, est.fatal);
        prop_assert_eq!(cell.truncated, est.truncated);
    }

    /// Timeline invariants for traced runs: timestamps are monotone
    /// non-decreasing, no prefix has more `OutageEnd`s than `Failure`s
    /// (an outage can only end after a failure opened it), and the
    /// `Finished` marker — emitted on every stop path — is unique,
    /// terminal, and names the outcome's stop reason at the outcome's
    /// stop time.
    #[test]
    fn timeline_is_monotone_and_well_formed(
        protocol in protocol_strategy(),
        ratio in 0.0f64..1.0,
        mtbf in 120.0f64..7200.0,
        seed in 0u64..300,
    ) {
        let phi = ratio * params().theta_min;
        let cfg = RunConfig::new(protocol, params(), phi, mtbf);
        let mut src = source(&cfg, seed);
        let (out, timeline) = run_to_completion_traced(&cfg, 6.0 * mtbf, &mut src).unwrap();

        let stamp = |e: &TimelineEvent| match *e {
            TimelineEvent::Failure { at, .. }
            | TimelineEvent::OutageEnd { at }
            | TimelineEvent::Retune { at, .. }
            | TimelineEvent::Finished { at, .. } => at,
        };
        let mut prev = 0.0;
        let mut failures = 0usize;
        let mut outage_ends = 0usize;
        for (i, e) in timeline.iter().enumerate() {
            let t = stamp(e);
            prop_assert!(t >= prev - 1e-9, "event {i} at {t} before {prev}: {e:?}");
            prev = t;
            match e {
                TimelineEvent::Failure { .. } => failures += 1,
                TimelineEvent::OutageEnd { .. } => outage_ends += 1,
                TimelineEvent::Retune { .. } => {
                    prop_assert!(false, "static machine emitted a Retune event")
                }
                TimelineEvent::Finished { reason, at } => {
                    prop_assert_eq!(i, timeline.len() - 1, "Finished not terminal");
                    prop_assert_eq!(*reason, out.reason);
                    prop_assert!((at - out.total_time).abs() < 1e-6);
                }
            }
            prop_assert!(
                outage_ends <= failures,
                "event {i}: {outage_ends} OutageEnds but only {failures} Failures"
            );
        }
        prop_assert_eq!(failures, out.failures as usize);
        prop_assert!(
            matches!(timeline.last(), Some(TimelineEvent::Finished { .. })),
            "run missing terminal Finished marker: {:?}",
            timeline.last()
        );
    }

    /// Every traced run — whichever of the five `StopReason`s ends it —
    /// produces a timeline with exactly one `Finished` event, terminal,
    /// whose reason matches `RunOutcome::reason`; and the whole
    /// timeline survives the JSONL wire format. The five modes steer
    /// runs toward every stop reason (mode 3/4 hit `NoProgress`
    /// deterministically; mode 1's failure cap of 1 cannot be beaten
    /// to a fatal failure by a first failure).
    #[test]
    fn every_traced_run_ends_with_one_finished(
        protocol in protocol_strategy(),
        ratio in 0.0f64..1.0,
        mtbf in 120.0f64..7200.0,
        seed in 0u64..300,
        mode in 0usize..5,
    ) {
        let phi = ratio * params().theta_min;
        let (out, timeline) = match mode {
            // Work mode: WorkComplete or Fatal.
            0 => {
                let cfg = RunConfig::new(protocol, params(), phi, mtbf);
                run_to_completion_traced(&cfg, 4.0 * mtbf, &mut source(&cfg, seed)).unwrap()
            }
            // Tiny failure cap with unreachable work: FailureCapReached.
            1 => {
                let mut cfg = RunConfig::new(protocol, params(), phi, mtbf);
                cfg.max_failures = 1 + seed % 3;
                run_to_completion_traced(&cfg, 1e6 * mtbf, &mut source(&cfg, seed)).unwrap()
            }
            // Horizon mode: HorizonReached or Fatal.
            2 => {
                let cfg = RunConfig::new(protocol, params(), phi, mtbf);
                run_until_traced(&cfg, 2.0 * mtbf, &mut source(&cfg, seed)).unwrap()
            }
            // No-progress operating point, work mode.
            3 => {
                let mut cfg = RunConfig::new(Protocol::DoubleBlocking, params(), 0.0, mtbf);
                cfg.period = PeriodChoice::Explicit(6.0);
                run_to_completion_traced(&cfg, 100.0, &mut source(&cfg, seed)).unwrap()
            }
            // No-progress operating point, horizon mode.
            _ => {
                let mut cfg = RunConfig::new(Protocol::DoubleBlocking, params(), 0.0, mtbf);
                cfg.period = PeriodChoice::Explicit(6.0);
                run_until_traced(&cfg, 2.0 * mtbf, &mut source(&cfg, seed)).unwrap()
            }
        };

        let finished = timeline
            .iter()
            .filter(|e| matches!(e, TimelineEvent::Finished { .. }))
            .count();
        prop_assert_eq!(finished, 1, "expected exactly one Finished: {:?}", timeline);
        match timeline.last() {
            Some(TimelineEvent::Finished { at, reason }) => {
                prop_assert_eq!(*reason, out.reason);
                if out.total_time.is_finite() {
                    prop_assert!((at - out.total_time).abs() < 1e-6);
                } else {
                    // Work-mode NoProgress: infinite total time, marker
                    // stamped at 0 so JSON can carry it.
                    prop_assert_eq!(*at, 0.0);
                }
            }
            other => prop_assert!(false, "terminal event not Finished: {other:?}"),
        }
        for e in &timeline {
            let line = serde_json::to_string(e).unwrap();
            let back: TimelineEvent = serde_json::from_str(&line).unwrap();
            prop_assert_eq!(&back, e, "round trip changed {}", line);
        }
    }

    /// A timeline survives the JSONL wire format bit-for-bit: each
    /// event serialized to a line and parsed back compares equal
    /// (including the exact float timestamps).
    #[test]
    fn timeline_round_trips_through_jsonl(seed in 0u64..300, ratio in 0.0f64..1.0) {
        let phi = ratio * params().theta_min;
        let cfg = RunConfig::new(Protocol::DoubleNbl, params(), phi, 600.0);
        let mut src = source(&cfg, seed);
        let (_, timeline) = run_to_completion_traced(&cfg, 4_000.0, &mut src).unwrap();
        for e in &timeline {
            let line = serde_json::to_string(e).unwrap();
            prop_assert!(!line.contains('\n'), "JSONL line must be newline-free");
            let back: TimelineEvent = serde_json::from_str(&line).unwrap();
            prop_assert_eq!(&back, e, "round trip changed {}", line);
        }
    }

    /// The no-progress guard fires exactly when the schedule's work per
    /// period is zero.
    #[test]
    fn no_progress_guard(period_extra in 0.0f64..10.0) {
        // DoubleBlocking: W = P - delta - theta_min; zero at minimum period.
        let mut cfg = RunConfig::new(Protocol::DoubleBlocking, params(), 0.0, 3600.0);
        cfg.period = PeriodChoice::Explicit(6.0 + period_extra);
        let mut src = source(&cfg, 1);
        let out = run_to_completion(&cfg, 100.0, &mut src).unwrap();
        if period_extra < 1e-12 {
            prop_assert_eq!(out.reason, StopReason::NoProgress);
        } else {
            prop_assert_ne!(out.reason, StopReason::NoProgress);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Sweep accounting invariant: however early stopping lands
    /// relative to round boundaries, every executed replication is
    /// counted exactly once. Outcome counts sum to `replications_run`,
    /// which is a whole number of rounds (or the exact budget), and
    /// both engines agree on every count and every bit.
    #[test]
    fn sweep_accounting_is_exact(
        protocol in protocol_strategy(),
        ratio in 0.0f64..1.0,
        replications in 8usize..48,
        batch in 8usize..24,
        target in 0.0f64..0.1,
        seed in 0u64..1000,
    ) {
        let mut spec = SweepSpec::new(protocol, params(), vec![ratio], vec![1_800.0, 3_600.0]);
        spec.replications = replications;
        spec.work_in_mtbfs = 4.0;
        spec.seed = seed;
        spec.early_stop = Some(EarlyStop {
            target_half_width: target,
            min_replications: 8,
            batch,
        });
        // Rounds are the batch rounded up to the REP_CHUNK (8) multiple.
        let round = batch.div_ceil(8) * 8;
        let global = run_sweep(&spec).unwrap();
        for c in &global.cells {
            prop_assert_eq!(c.completed + c.fatal + c.truncated, c.replications_run,
                "outcome counts must partition the executed replications: {:?}", c);
            prop_assert!(c.replications_run <= replications);
            prop_assert!(
                c.replications_run == replications || c.replications_run % round == 0,
                "ran {} (round {}, budget {})", c.replications_run, round, replications
            );
        }
        spec.engine = SweepEngine::PerCell;
        let per_cell = run_sweep(&spec).unwrap();
        for (a, b) in global.cells.iter().zip(&per_cell.cells) {
            prop_assert_eq!(a.replications_run, b.replications_run);
            prop_assert_eq!(a.completed, b.completed);
            prop_assert_eq!(a.fatal, b.fatal);
            prop_assert_eq!(a.truncated, b.truncated);
            prop_assert_eq!(a.sim_waste.map(f64::to_bits), b.sim_waste.map(f64::to_bits));
            prop_assert_eq!(a.half_width.map(f64::to_bits), b.half_width.map(f64::to_bits));
        }
    }
}

/// Deterministic coverage companion to
/// `every_traced_run_ends_with_one_finished`: the property test cannot
/// guarantee each variant occurs, so this exercises one concrete run
/// per `StopReason` and checks its terminal `Finished` marker.
#[test]
fn all_five_stop_reasons_produce_terminal_finished() {
    use dck_failures::{FailureEvent, FailureTrace};

    let mk_trace = |events: &[(f64, u64)]| {
        FailureTrace::new(
            24,
            events
                .iter()
                .map(|&(at, node)| FailureEvent {
                    at: SimTime::seconds(at),
                    node,
                })
                .collect(),
        )
    };
    let check = |out: &dck_sim::RunOutcome, timeline: &[TimelineEvent], expect: StopReason| {
        assert_eq!(out.reason, expect);
        let finished = timeline
            .iter()
            .filter(|e| matches!(e, TimelineEvent::Finished { .. }))
            .count();
        assert_eq!(finished, 1, "{expect:?}: {timeline:?}");
        match timeline.last() {
            Some(TimelineEvent::Finished { reason, .. }) => assert_eq!(*reason, expect),
            other => panic!("{expect:?}: terminal event not Finished: {other:?}"),
        }
    };
    let mut cfg = RunConfig::new(Protocol::DoubleNbl, params(), 1.0, 3600.0);
    cfg.period = PeriodChoice::Explicit(100.0);

    let tr = mk_trace(&[]);
    let (out, tl) = run_to_completion_traced(&cfg, 970.0, &mut tr.replay()).unwrap();
    check(&out, &tl, StopReason::WorkComplete);

    // Buddy failure inside the risk window.
    let tr = mk_trace(&[(250.0, 0), (260.0, 1)]);
    let (out, tl) = run_to_completion_traced(&cfg, 970.0, &mut tr.replay()).unwrap();
    check(&out, &tl, StopReason::Fatal);

    let tr = mk_trace(&[]);
    let (out, tl) = run_until_traced(&cfg, 500.0, &mut tr.replay()).unwrap();
    check(&out, &tl, StopReason::HorizonReached);

    // Two survivable failures against a cap of two.
    let mut capped = cfg;
    capped.max_failures = 2;
    let tr = mk_trace(&[(1000.0, 0), (2000.0, 4), (3000.0, 8)]);
    let (out, tl) = run_to_completion_traced(&capped, 1e9, &mut tr.replay()).unwrap();
    check(&out, &tl, StopReason::FailureCapReached);

    // Zero work per period in both stop modes.
    let mut stuck = RunConfig::new(Protocol::DoubleBlocking, params(), 0.0, 3600.0);
    stuck.period = PeriodChoice::Explicit(6.0);
    let tr = mk_trace(&[]);
    let (out, tl) = run_to_completion_traced(&stuck, 100.0, &mut tr.replay()).unwrap();
    check(&out, &tl, StopReason::NoProgress);
    let (out, tl) = run_until_traced(&stuck, 500.0, &mut tr.replay()).unwrap();
    check(&out, &tl, StopReason::NoProgress);
}
