//! Differential model↔simulator conformance.
//!
//! The paper's closed-form waste (Eqs. 5/7/8/14 via `core::waste` and
//! `core::period`) and the mechanistic Monte-Carlo estimate
//! (`sim::sweep`) are independent implementations of the same physics;
//! a transcription error in either should be caught by the other. The
//! driver sweeps an `(MTBF, α, φ/R)` grid per protocol, compares the
//! two, and reports each cell as *pass* (agreement within a CI95-scaled
//! tolerance plus a first-order-bias allowance), *fail*, or
//! *degenerate* (too few replications completed for the estimate to
//! mean anything — harsh cells where most runs end fatally).
//!
//! The resulting [`ConformanceReport`] serializes to the
//! `conformance.json` artifact that `dck validate --conformance`
//! re-checks in CI.

use crate::script::FaultScript;
use dck_core::{ControllerConfig, ModelError, PlatformParams, PredictorSpec, Protocol};
use dck_sim::{
    estimate_predicted_waste, run_regret, run_sweep, MonteCarloConfig, PeriodChoice, RegretCase,
    RegretScenario, RegretSpec, RunConfig, SweepSpec,
};
use serde::{Deserialize, Serialize};

/// Schema tag of the `conformance.json` artifact. v3 added the
/// adaptive-controller regret section; v2 added the parameterized
/// k-buddy protocols to the grid and the fault-prediction cell section;
/// v1 files (no tag) are rejected rather than silently reinterpreted.
pub const SCHEMA: &str = "dck-conformance/v3";

/// Verdict for one grid cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CellStatus {
    /// |model − sim| within tolerance.
    Pass,
    /// Estimate is sound but disagrees with the model.
    Fail,
    /// Too few completed replications to judge (< 80%).
    Degenerate,
}

/// The grid and budget of a conformance run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConformanceSpec {
    /// Protocols under test.
    pub protocols: Vec<Protocol>,
    /// Platform MTBFs (seconds).
    pub mtbfs: Vec<f64>,
    /// Slowdown factors `α` substituted into the base platform.
    pub alphas: Vec<f64>,
    /// Overhead ratios `φ/R ∈ [0, 1]`.
    pub phi_ratios: Vec<f64>,
    /// Base platform; each grid point replaces its `alpha`.
    pub base: PlatformParams,
    /// Monte-Carlo replications per cell.
    pub replications: usize,
    /// Useful work per replication, in multiples of the cell MTBF.
    pub work_in_mtbfs: f64,
    /// Master seed; each `(protocol, α)` plane derives its own stream
    /// space.
    pub seed: u64,
    /// Worker threads (0 = auto).
    pub workers: usize,
    /// Tolerance = `ci_slack · half_width + bias_allowance`: the CI95
    /// half-width scaled by this slack …
    pub ci_slack: f64,
    /// … plus an absolute allowance for the first-order model's bias
    /// (the model is asymptotic in `P/M`; it is *supposed* to be a few
    /// waste-points off at harsh cells).
    pub bias_allowance: f64,
    /// Fault-prediction cells to run alongside the waste grid (`None`
    /// skips the section).
    #[serde(default)]
    pub prediction: Option<PredictionGrid>,
    /// Adaptive-controller regret cells to run alongside the waste
    /// grid (`None` skips the section).
    #[serde(default)]
    pub adaptation: Option<AdaptationGrid>,
}

/// Grid of fault-prediction conformance cells: `dck_core::predict`'s
/// closed form vs `dck_sim::predict`'s mechanistic estimate, sharing
/// the spec's base platform, budget and tolerance policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PredictionGrid {
    /// Protocols under test.
    pub protocols: Vec<Protocol>,
    /// Platform MTBFs (seconds).
    pub mtbfs: Vec<f64>,
    /// Predictor precisions `p`.
    pub precisions: Vec<f64>,
    /// Predictor recalls `r`.
    pub recalls: Vec<f64>,
    /// Prediction lead window `w` (seconds), fixed across the grid.
    pub window: f64,
}

impl PredictionGrid {
    /// Total prediction cells.
    pub fn cell_count(&self) -> usize {
        self.protocols.len() * self.mtbfs.len() * self.precisions.len() * self.recalls.len()
    }
}

/// Grid of adaptive-controller regret cells: for each stationary
/// misspecification factor (and optionally one drifting-MTBF ramp) the
/// regret harness ([`dck_sim::run_regret`]) races the online controller
/// against the misspecified and clairvoyant static tunings on paired
/// failure streams. A stationary cell passes when the adaptive arm's
/// waste lands within `tolerance` of the oracle's; a drift cell passes
/// when it strictly beats the static arm.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaptationGrid {
    /// Protocol under test.
    pub protocol: Protocol,
    /// True platform MTBF (seconds).
    pub mtbf: f64,
    /// Stationary misspecification factors (believed = factor × true).
    pub factors: Vec<f64>,
    /// Drift cell: MTBF ramps to `end_factor × true` over the work
    /// horizon (`None` skips it).
    pub drift_end_factor: Option<f64>,
    /// Replications per arm.
    pub replications: usize,
    /// Useful work per replication in multiples of the true MTBF.
    pub work_in_mtbfs: f64,
    /// Stationary acceptance: regret ratio vs the oracle at most this.
    pub tolerance: f64,
}

impl AdaptationGrid {
    /// Total adaptation cells.
    pub fn cell_count(&self) -> usize {
        self.factors.len() + usize::from(self.drift_end_factor.is_some())
    }
}

/// One evaluated adaptive-controller regret cell.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptationCell {
    /// Protocol.
    pub protocol: Protocol,
    /// True platform MTBF (seconds).
    pub mtbf: f64,
    /// Misspecification factor (stationary) or drift end factor.
    pub factor: f64,
    /// Whether this is the drifting-MTBF cell.
    pub drift: bool,
    /// Mean waste of the adaptive arm (`None` when nothing completed).
    pub adaptive_waste: Option<f64>,
    /// Mean waste of the misspecified static arm.
    pub static_waste: Option<f64>,
    /// Mean waste of the oracle static arm.
    pub oracle_waste: Option<f64>,
    /// `(adaptive − oracle) / oracle`.
    pub regret_ratio: Option<f64>,
    /// Whether the adaptive arm strictly beat the static arm.
    pub beats_static: Option<bool>,
    /// Mean retunes applied per adaptive replication.
    pub retunes_mean: f64,
    /// The tolerance the cell was judged against (stationary cells).
    pub tolerance: Option<f64>,
    /// Adaptive-arm replications that completed their work.
    pub completed: usize,
    /// Replications executed per arm.
    pub replications_run: usize,
    /// Verdict.
    pub status: CellStatus,
}

impl AdaptationCell {
    /// Coordinates rendered for failure messages.
    pub fn coordinates(&self) -> String {
        format!(
            "{} adaptive @ (MTBF={}s, {} x{})",
            self.protocol,
            self.mtbf,
            if self.drift { "drift to" } else { "believed" },
            self.factor
        )
    }
}

/// One evaluated fault-prediction cell.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PredictionCell {
    /// Protocol.
    pub protocol: Protocol,
    /// Platform MTBF (seconds).
    pub mtbf: f64,
    /// Predictor precision.
    pub precision: f64,
    /// Predictor recall.
    pub recall: f64,
    /// Lead window (seconds).
    pub window: f64,
    /// Model-optimal predicted period used by both sides.
    pub period: f64,
    /// Closed-form predicted waste at that period.
    pub model_waste: f64,
    /// Monte-Carlo mean waste (`None` when no replication completed).
    pub sim_waste: Option<f64>,
    /// CI95 half-width of the estimate.
    pub half_width: Option<f64>,
    /// The tolerance the cell was judged against.
    pub tolerance: Option<f64>,
    /// Replications that completed their work.
    pub completed: usize,
    /// Replications executed.
    pub replications_run: usize,
    /// Verdict.
    pub status: CellStatus,
}

impl PredictionCell {
    /// Coordinates rendered for failure messages.
    pub fn coordinates(&self) -> String {
        format!(
            "{} predicted @ (MTBF={}s, p={}, r={}, w={}s)",
            self.protocol, self.mtbf, self.precision, self.recall, self.window
        )
    }
}

impl ConformanceSpec {
    /// The coarse CI grid: the three evaluated protocols plus the
    /// `k = 4` and `k = 5` buddy instances over a
    /// 3 MTBF × 2 α × 3 φ/R lattice (18 cells per protocol, 90 total)
    /// on the Table I Base shape at 60 nodes — small enough for a
    /// debug-mode tier-1 run, wide enough to cross every
    /// period-formula branch for every group size. (v1 ran 3 α values
    /// over 3 protocols; the middle α was traded for the two k-buddy
    /// planes to keep the runtime bounded.) A small fault-prediction
    /// grid rides along.
    pub fn coarse() -> Self {
        let mut protocols = Protocol::EVALUATED.to_vec();
        protocols.push(Protocol::BuddyNbl { k: 4 });
        protocols.push(Protocol::BuddyNbl { k: 5 });
        ConformanceSpec {
            protocols,
            mtbfs: vec![1_800.0, 3_600.0, 7.0 * 3_600.0],
            alphas: vec![0.0, 10.0],
            phi_ratios: vec![0.0, 0.5, 1.0],
            // Compile-time-constant Base-shaped params (validated shape
            // locked by the params tests), constructed infallibly.
            base: PlatformParams {
                downtime: 0.0,
                delta: 2.0,
                theta_min: 4.0,
                alpha: 10.0,
                // lcm(2, 3, 4, 5): every group size divides evenly.
                nodes: 60,
            },
            replications: 24,
            work_in_mtbfs: 10.0,
            seed: 0xC0F0,
            workers: 0,
            ci_slack: 3.0,
            bias_allowance: 0.01,
            prediction: Some(PredictionGrid {
                protocols: vec![Protocol::DoubleNbl, Protocol::Triple],
                mtbfs: vec![3_600.0],
                precisions: vec![0.5, 0.9],
                recalls: vec![0.0, 0.7],
                window: 30.0,
            }),
            adaptation: Some(AdaptationGrid {
                protocol: Protocol::DoubleNbl,
                mtbf: 3_600.0,
                factors: vec![0.25, 4.0],
                drift_end_factor: Some(0.25),
                replications: 12,
                work_in_mtbfs: 60.0,
                tolerance: 0.10,
            }),
        }
    }

    /// Total number of waste-grid cells (prediction cells are counted
    /// separately via [`ConformanceSpec::prediction_cell_count`]).
    pub fn cell_count(&self) -> usize {
        self.protocols.len() * self.mtbfs.len() * self.alphas.len() * self.phi_ratios.len()
    }

    /// Total number of fault-prediction cells.
    pub fn prediction_cell_count(&self) -> usize {
        self.prediction
            .as_ref()
            .map_or(0, PredictionGrid::cell_count)
    }

    /// Total number of adaptive-controller regret cells.
    pub fn adaptation_cell_count(&self) -> usize {
        self.adaptation
            .as_ref()
            .map_or(0, AdaptationGrid::cell_count)
    }
}

/// One evaluated conformance cell.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConformanceCell {
    /// Protocol.
    pub protocol: Protocol,
    /// Platform MTBF (seconds).
    pub mtbf: f64,
    /// Slowdown factor α.
    pub alpha: f64,
    /// Overhead ratio φ/R.
    pub phi_ratio: f64,
    /// Model-optimal period used by both sides.
    pub period: f64,
    /// Closed-form waste at that period.
    pub model_waste: f64,
    /// Monte-Carlo mean waste (`None` when no replication completed).
    pub sim_waste: Option<f64>,
    /// CI95 half-width of the estimate.
    pub half_width: Option<f64>,
    /// The tolerance the cell was judged against.
    pub tolerance: Option<f64>,
    /// Replications that completed their work.
    pub completed: usize,
    /// Replications executed.
    pub replications_run: usize,
    /// Verdict.
    pub status: CellStatus,
}

impl ConformanceCell {
    /// `(protocol, MTBF, α, φ/R)` rendered for failure messages.
    pub fn coordinates(&self) -> String {
        format!(
            "{} @ (MTBF={}s, alpha={}, phi/R={})",
            self.protocol, self.mtbf, self.alpha, self.phi_ratio
        )
    }
}

/// Grid shape echoed into the report so `dck validate` can cross-check
/// the cell list without recomputing anything.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GridSummary {
    /// Number of protocols.
    pub protocols: usize,
    /// Number of MTBF samples.
    pub mtbfs: usize,
    /// Number of α samples.
    pub alphas: usize,
    /// Number of φ/R samples.
    pub phi_ratios: usize,
    /// Total cells (= product of the above).
    pub cells: usize,
}

/// The `conformance.json` artifact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConformanceReport {
    /// Schema tag; must equal [`SCHEMA`].
    #[serde(default)]
    pub schema: String,
    /// The spec that produced the report.
    pub spec: ConformanceSpec,
    /// Grid shape.
    pub grid: GridSummary,
    /// Every evaluated cell, protocol-major then MTBF/α/φ
    /// lexicographic.
    pub cells: Vec<ConformanceCell>,
    /// Fault-prediction cells (empty when the spec carries none).
    #[serde(default)]
    pub prediction_cells: Vec<PredictionCell>,
    /// Adaptive-controller regret cells (empty when the spec carries
    /// none).
    #[serde(default)]
    pub adaptation_cells: Vec<AdaptationCell>,
    /// Cells that passed (waste grid + prediction).
    pub passed: usize,
    /// Cells that failed (waste grid + prediction).
    pub failed: usize,
    /// Degenerate cells (waste grid + prediction).
    pub degenerate: usize,
    /// Largest |model − sim| over non-degenerate cells.
    pub max_abs_deviation: f64,
}

impl ConformanceReport {
    /// True when no sound cell disagreed with the model.
    pub fn all_pass(&self) -> bool {
        self.failed == 0
    }

    /// One message per failing cell, naming its `(protocol, MTBF, α,
    /// φ/R)` coordinates.
    pub fn failures(&self) -> Vec<String> {
        let render = |coords: String,
                      model: f64,
                      sim: Option<f64>,
                      tol: Option<f64>,
                      hw: Option<f64>,
                      completed: usize,
                      run: usize| {
            format!(
                "{coords}: |model {:.5} - sim {:.5}| = {:.5} > tolerance {:.5} (hw {:.5}, {completed} / {run} completed)",
                model,
                sim.unwrap_or(f64::NAN),
                (model - sim.unwrap_or(f64::NAN)).abs(),
                tol.unwrap_or(f64::NAN),
                hw.unwrap_or(f64::NAN),
            )
        };
        self.cells
            .iter()
            .filter(|c| c.status == CellStatus::Fail)
            .map(|c| {
                render(
                    c.coordinates(),
                    c.model_waste,
                    c.sim_waste,
                    c.tolerance,
                    c.half_width,
                    c.completed,
                    c.replications_run,
                )
            })
            .chain(
                self.prediction_cells
                    .iter()
                    .filter(|c| c.status == CellStatus::Fail)
                    .map(|c| {
                        render(
                            c.coordinates(),
                            c.model_waste,
                            c.sim_waste,
                            c.tolerance,
                            c.half_width,
                            c.completed,
                            c.replications_run,
                        )
                    }),
            )
            .chain(
                self.adaptation_cells
                    .iter()
                    .filter(|c| c.status == CellStatus::Fail)
                    .map(|c| {
                        // Regret cells fail on a different axis than
                        // model-vs-sim deviation: name the gate.
                        let gate = if c.drift {
                            format!(
                                "adaptive {:.5} did not beat static {:.5}",
                                c.adaptive_waste.unwrap_or(f64::NAN),
                                c.static_waste.unwrap_or(f64::NAN)
                            )
                        } else {
                            format!(
                                "regret ratio {:.4} > tolerance {:.4} (adaptive {:.5}, oracle {:.5})",
                                c.regret_ratio.unwrap_or(f64::NAN),
                                c.tolerance.unwrap_or(f64::NAN),
                                c.adaptive_waste.unwrap_or(f64::NAN),
                                c.oracle_waste.unwrap_or(f64::NAN)
                            )
                        };
                        format!(
                            "{}: {gate} ({} / {} completed)",
                            c.coordinates(),
                            c.completed,
                            c.replications_run
                        )
                    }),
            )
            .collect()
    }

    /// Internal consistency of a (possibly externally supplied) report:
    /// schema tag is current, grid shape matches the spec, cell counts
    /// (waste and prediction) match the spec, and the verdict tallies
    /// match the cells.
    ///
    /// # Errors
    /// The first inconsistency found.
    pub fn check_consistent(&self) -> Result<(), String> {
        if self.schema != SCHEMA {
            return Err(format!(
                "schema {:?} but this tool reads {SCHEMA:?} — regenerate the artifact",
                self.schema
            ));
        }
        let spec_cells = self.spec.cell_count();
        if self.grid.cells != spec_cells {
            return Err(format!(
                "grid claims {} cells but the spec's grid has {spec_cells}",
                self.grid.cells
            ));
        }
        if self.cells.len() != spec_cells {
            return Err(format!(
                "{} cells recorded but the spec's grid has {spec_cells}",
                self.cells.len()
            ));
        }
        let spec_pred = self.spec.prediction_cell_count();
        if self.prediction_cells.len() != spec_pred {
            return Err(format!(
                "{} prediction cells recorded but the spec's grid has {spec_pred}",
                self.prediction_cells.len()
            ));
        }
        let spec_adapt = self.spec.adaptation_cell_count();
        if self.adaptation_cells.len() != spec_adapt {
            return Err(format!(
                "{} adaptation cells recorded but the spec's grid has {spec_adapt}",
                self.adaptation_cells.len()
            ));
        }
        let count = |s: CellStatus| {
            self.cells.iter().filter(|c| c.status == s).count()
                + self
                    .prediction_cells
                    .iter()
                    .filter(|c| c.status == s)
                    .count()
                + self
                    .adaptation_cells
                    .iter()
                    .filter(|c| c.status == s)
                    .count()
        };
        for (label, claimed, actual) in [
            ("passed", self.passed, count(CellStatus::Pass)),
            ("failed", self.failed, count(CellStatus::Fail)),
            ("degenerate", self.degenerate, count(CellStatus::Degenerate)),
        ] {
            if claimed != actual {
                return Err(format!("{label} tally {claimed} but {actual} such cells"));
            }
        }
        Ok(())
    }

    /// Serializes to pretty JSON (the artifact format).
    ///
    /// # Errors
    /// A serde message (practically unreachable for this plain struct).
    pub fn to_json(&self) -> Result<String, String> {
        let mut s =
            serde_json::to_string_pretty(self).map_err(|e| format!("report serialization: {e}"))?;
        s.push('\n');
        Ok(s)
    }

    /// Parses and consistency-checks a report.
    ///
    /// # Errors
    /// Parse or consistency error as a message.
    pub fn from_json(json: &str) -> Result<Self, String> {
        let report: ConformanceReport =
            serde_json::from_str(json).map_err(|e| format!("invalid ConformanceReport: {e}"))?;
        report.check_consistent()?;
        Ok(report)
    }
}

/// Runs the differential grid.
///
/// # Errors
/// Invalid parameters or infeasible operating points from the model
/// layer.
pub fn run_conformance(spec: &ConformanceSpec) -> Result<ConformanceReport, ModelError> {
    let mut cells = Vec::with_capacity(spec.cell_count());
    for (proto_i, &protocol) in spec.protocols.iter().enumerate() {
        for (alpha_i, &alpha) in spec.alphas.iter().enumerate() {
            let mut params = spec.base;
            params.alpha = alpha;
            let mut sweep = SweepSpec::new(
                protocol,
                params,
                spec.phi_ratios.clone(),
                spec.mtbfs.clone(),
            );
            sweep.replications = spec.replications;
            sweep.work_in_mtbfs = spec.work_in_mtbfs;
            sweep.workers = spec.workers;
            // Decorrelate the (protocol, α) planes: the sweep already
            // separates its own (MTBF, φ) cells via (mi << 32) + pi.
            sweep.seed = spec
                .seed
                .wrapping_add((proto_i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
                .wrapping_add((alpha_i as u64 + 1).wrapping_mul(0xD1B5_4A32_D192_ED03));
            let result = run_sweep(&sweep)?;
            for c in result.cells {
                let (status, tolerance) = judge(
                    c.model_waste,
                    c.sim_waste,
                    c.half_width,
                    c.completed,
                    c.replications_run,
                    spec,
                );
                cells.push(ConformanceCell {
                    protocol,
                    mtbf: c.mtbf,
                    alpha,
                    phi_ratio: c.phi_ratio,
                    period: c.period,
                    model_waste: c.model_waste,
                    sim_waste: c.sim_waste,
                    half_width: c.half_width,
                    tolerance,
                    completed: c.completed,
                    replications_run: c.replications_run,
                    status,
                });
            }
        }
    }

    let prediction_cells = run_prediction_cells(spec)?;
    let adaptation_cells = run_adaptation_cells(spec)?;

    let count = |s: CellStatus| {
        cells.iter().filter(|c| c.status == s).count()
            + prediction_cells.iter().filter(|c| c.status == s).count()
            + adaptation_cells.iter().filter(|c| c.status == s).count()
    };
    let passed = count(CellStatus::Pass);
    let failed = count(CellStatus::Fail);
    let degenerate = count(CellStatus::Degenerate);
    let max_abs_deviation = cells
        .iter()
        .filter(|c| c.status != CellStatus::Degenerate)
        .filter_map(|c| c.sim_waste.map(|s| (c.model_waste - s).abs()))
        .chain(
            prediction_cells
                .iter()
                .filter(|c| c.status != CellStatus::Degenerate)
                .filter_map(|c| c.sim_waste.map(|s| (c.model_waste - s).abs())),
        )
        .fold(0.0, f64::max);
    Ok(ConformanceReport {
        schema: SCHEMA.to_string(),
        grid: GridSummary {
            protocols: spec.protocols.len(),
            mtbfs: spec.mtbfs.len(),
            alphas: spec.alphas.len(),
            phi_ratios: spec.phi_ratios.len(),
            cells: spec.cell_count(),
        },
        cells,
        prediction_cells,
        adaptation_cells,
        passed,
        failed,
        degenerate,
        max_abs_deviation,
        spec: spec.clone(),
    })
}

/// Runs the adaptive-controller regret section: one harness call with
/// the grid's stationary factors plus the optional drift ramp, each
/// judged by its own gate (stationary: regret ratio within tolerance;
/// drift: strictly beats the misspecified static arm). Cells whose
/// adaptive arm completed fewer than 80% of its replications are
/// degenerate, matching the waste-grid soundness rule.
fn run_adaptation_cells(spec: &ConformanceSpec) -> Result<Vec<AdaptationCell>, ModelError> {
    let Some(grid) = &spec.adaptation else {
        return Ok(Vec::new());
    };
    let mut cases: Vec<RegretCase> = grid
        .factors
        .iter()
        .map(|&factor| RegretCase {
            name: format!("misspecified-x{factor}"),
            scenario: RegretScenario::Misspecified { factor },
        })
        .collect();
    if let Some(end_factor) = grid.drift_end_factor {
        cases.push(RegretCase {
            name: format!("drift-x{end_factor}"),
            scenario: RegretScenario::Drift { end_factor },
        });
    }
    let regret_spec = RegretSpec {
        protocol: grid.protocol,
        params: spec.base,
        phi: spec.base.theta_min,
        true_mtbf: grid.mtbf,
        work_in_mtbfs: grid.work_in_mtbfs,
        replications: grid.replications,
        seed: spec.seed.wrapping_add(0xADA7_0CE1),
        controller: ControllerConfig::default(),
        cases,
    };
    let results = run_regret(&regret_spec)?;
    Ok(results
        .iter()
        .map(|r| {
            let drift = matches!(r.scenario, RegretScenario::Drift { .. });
            let factor = match r.scenario {
                RegretScenario::Misspecified { factor }
                | RegretScenario::Predicted { factor, .. } => factor,
                RegretScenario::Drift { end_factor } => end_factor,
            };
            let sound = r.adaptive.completed * 5 >= grid.replications * 4
                && r.static_arm.completed > 0
                && r.oracle.completed > 0;
            let measured = r.adaptive.completed > 0;
            let status = if !sound {
                CellStatus::Degenerate
            } else if drift {
                if r.beats_static {
                    CellStatus::Pass
                } else {
                    CellStatus::Fail
                }
            } else if r.regret_ratio <= grid.tolerance {
                CellStatus::Pass
            } else {
                CellStatus::Fail
            };
            AdaptationCell {
                protocol: grid.protocol,
                mtbf: grid.mtbf,
                factor,
                drift,
                adaptive_waste: measured.then_some(r.adaptive.mean_waste),
                static_waste: (r.static_arm.completed > 0).then_some(r.static_arm.mean_waste),
                oracle_waste: (r.oracle.completed > 0).then_some(r.oracle.mean_waste),
                regret_ratio: measured.then_some(r.regret_ratio),
                beats_static: measured.then_some(r.beats_static),
                retunes_mean: r.retunes_mean,
                tolerance: (!drift).then_some(grid.tolerance),
                completed: r.adaptive.completed,
                replications_run: grid.replications,
                status,
            }
        })
        .collect())
}

/// Runs the fault-prediction section of the grid: for each
/// `(protocol, MTBF, p, r)` both sides share the model-optimal
/// predicted period, then `dck_sim::predict`'s mechanistic estimate is
/// judged against `dck_core::predict`'s closed form with the same
/// tolerance policy as the waste grid. Runs at `φ = 0` (the prediction
/// model's fault-free term is the unpredicted one, already swept by the
/// waste grid).
fn run_prediction_cells(spec: &ConformanceSpec) -> Result<Vec<PredictionCell>, ModelError> {
    let Some(grid) = &spec.prediction else {
        return Ok(Vec::new());
    };
    let mut out = Vec::with_capacity(grid.cell_count());
    for (proto_i, &protocol) in grid.protocols.iter().enumerate() {
        for (mtbf_i, &mtbf) in grid.mtbfs.iter().enumerate() {
            for (p_i, &precision) in grid.precisions.iter().enumerate() {
                for (r_i, &recall) in grid.recalls.iter().enumerate() {
                    let predictor = PredictorSpec::new(precision, recall, grid.window);
                    let opt = dck_core::predicted_optimal_period(
                        protocol, &spec.base, 0.0, &predictor, mtbf,
                    )?;
                    let mut cfg = RunConfig::new(protocol, spec.base, 0.0, mtbf);
                    cfg.period = PeriodChoice::Explicit(opt.period);
                    let mut mc = MonteCarloConfig::new(spec.replications, 0);
                    mc.workers = spec.workers;
                    // Decorrelate cells from each other and from the
                    // waste planes (which mix from spec.seed directly).
                    mc.seed = spec
                        .seed
                        .wrapping_add(0x51D1_C7ED)
                        .wrapping_add((proto_i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
                        .wrapping_add((mtbf_i as u64 + 1).wrapping_mul(0xD1B5_4A32_D192_ED03))
                        .wrapping_add((p_i as u64 + 1).wrapping_mul(0xBF58_476D_1CE4_E5B9))
                        .wrapping_add((r_i as u64 + 1).wrapping_mul(0x94D0_49BB_1331_11EB));
                    let t_base = spec.work_in_mtbfs * mtbf;
                    let est = estimate_predicted_waste(&cfg, &predictor, t_base, &mc)?;
                    let sim_waste = est.ci95.map(|ci| ci.mean);
                    let half_width = est.ci95.map(|ci| ci.half_width);
                    let (status, tolerance) = judge(
                        opt.total,
                        sim_waste,
                        half_width,
                        est.completed,
                        spec.replications,
                        spec,
                    );
                    out.push(PredictionCell {
                        protocol,
                        mtbf,
                        precision,
                        recall,
                        window: grid.window,
                        period: opt.period,
                        model_waste: opt.total,
                        sim_waste,
                        half_width,
                        tolerance,
                        completed: est.completed,
                        replications_run: spec.replications,
                        status,
                    });
                }
            }
        }
    }
    Ok(out)
}

fn judge(
    model: f64,
    sim: Option<f64>,
    half_width: Option<f64>,
    completed: usize,
    run: usize,
    spec: &ConformanceSpec,
) -> (CellStatus, Option<f64>) {
    // An estimate built from fewer than 80% completed replications is
    // survivorship-biased (the harsh runs died fatally) — judge it
    // degenerate rather than pretend it measures the waste.
    let sound = completed * 5 >= run * 4;
    match (sim, half_width) {
        (Some(s), Some(hw)) if sound => {
            let tol = spec.ci_slack * hw + spec.bias_allowance;
            let status = if (model - s).abs() <= tol {
                CellStatus::Pass
            } else {
                CellStatus::Fail
            };
            (status, Some(tol))
        }
        _ => (CellStatus::Degenerate, None),
    }
}

/// Convenience for harnesses: a [`FaultScript`] exercising the same
/// operating point as a conformance cell — lets a failing cell be
/// turned into a deterministic repro script mechanically.
pub fn cell_repro_script(cell: &ConformanceCell, spec: &ConformanceSpec) -> FaultScript {
    let mut platform = spec.base;
    platform.alpha = cell.alpha;
    FaultScript {
        name: format!(
            "repro_{}_m{}_a{}_p{}",
            cell.protocol.id(),
            cell.mtbf as i64,
            cell.alpha as i64,
            (cell.phi_ratio * 100.0) as i64
        ),
        description: format!(
            "failure-free repro of conformance cell {}",
            cell.coordinates()
        ),
        protocol: cell.protocol,
        platform,
        phi_ratio: cell.phi_ratio,
        mtbf: cell.mtbf,
        period: PeriodChoice::Explicit(cell.period),
        work: crate::script::WorkSpec::Periods(10.0),
        faults: vec![],
        expect: crate::script::Expectation {
            reason: Some(dck_sim::StopReason::WorkComplete),
            failures: Some(0),
            survives: Some(true),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> ConformanceSpec {
        let mut spec = ConformanceSpec::coarse();
        spec.protocols = vec![Protocol::DoubleNbl];
        spec.mtbfs = vec![3_600.0];
        spec.alphas = vec![10.0];
        spec.phi_ratios = vec![0.25, 0.75];
        spec.replications = 16;
        spec.work_in_mtbfs = 8.0;
        spec.prediction = None;
        spec.adaptation = None;
        spec
    }

    #[test]
    fn tiny_grid_passes_and_is_consistent() {
        let spec = tiny_spec();
        let report = run_conformance(&spec).unwrap();
        assert_eq!(report.cells.len(), 2);
        report.check_consistent().unwrap();
        assert!(report.all_pass(), "{:?}", report.failures());
        assert!(report.max_abs_deviation < 0.1);
        for c in &report.cells {
            assert_eq!(c.status, CellStatus::Pass);
            assert!(c.tolerance.unwrap() > 0.0);
        }
    }

    #[test]
    fn prediction_cells_run_and_count_toward_the_tallies() {
        let mut spec = tiny_spec();
        spec.phi_ratios = vec![0.25];
        spec.prediction = Some(PredictionGrid {
            protocols: vec![Protocol::DoubleNbl],
            mtbfs: vec![3_600.0],
            precisions: vec![0.9],
            recalls: vec![0.0, 0.7],
            window: 30.0,
        });
        let report = run_conformance(&spec).unwrap();
        assert_eq!(report.prediction_cells.len(), 2);
        report.check_consistent().unwrap();
        assert_eq!(
            report.passed + report.failed + report.degenerate,
            report.cells.len() + report.prediction_cells.len()
        );
        assert!(report.all_pass(), "{:?}", report.failures());
        for c in &report.prediction_cells {
            assert!(c.period > 0.0);
            assert!(c.model_waste > 0.0 && c.model_waste < 1.0);
        }
        // The r = 0 cell degenerates to the unpredicted model; the
        // r = 0.7 cell must not share its estimate.
        assert_ne!(
            report.prediction_cells[0].sim_waste,
            report.prediction_cells[1].sim_waste
        );
    }

    #[test]
    fn adaptation_cells_run_and_count_toward_the_tallies() {
        let mut spec = tiny_spec();
        spec.phi_ratios = vec![0.25];
        spec.adaptation = Some(AdaptationGrid {
            protocol: Protocol::DoubleNbl,
            mtbf: 3_600.0,
            factors: vec![4.0],
            drift_end_factor: Some(0.25),
            replications: 8,
            work_in_mtbfs: 60.0,
            tolerance: 0.10,
        });
        let report = run_conformance(&spec).unwrap();
        assert_eq!(report.adaptation_cells.len(), 2);
        report.check_consistent().unwrap();
        assert_eq!(
            report.passed + report.failed + report.degenerate,
            report.cells.len() + report.adaptation_cells.len()
        );
        assert!(report.all_pass(), "{:?}", report.failures());
        let stationary = &report.adaptation_cells[0];
        assert!(!stationary.drift);
        assert!(stationary.regret_ratio.unwrap() <= 0.10);
        assert!(stationary.retunes_mean >= 1.0);
        let drift = &report.adaptation_cells[1];
        assert!(drift.drift);
        assert_eq!(drift.beats_static, Some(true));
        assert!(drift.tolerance.is_none());
        // A tampered count must be caught.
        let mut short = report;
        short.adaptation_cells.pop();
        assert!(short
            .check_consistent()
            .unwrap_err()
            .contains("adaptation cells"));
    }

    #[test]
    fn impossible_adaptation_gate_fails_and_names_the_cell() {
        let mut spec = tiny_spec();
        spec.phi_ratios = vec![0.25];
        spec.adaptation = Some(AdaptationGrid {
            protocol: Protocol::DoubleNbl,
            mtbf: 3_600.0,
            factors: vec![4.0],
            drift_end_factor: None,
            replications: 8,
            work_in_mtbfs: 60.0,
            // Even a perfect controller pays some learning-phase waste;
            // a negative-regret demand cannot be met.
            tolerance: -1.0,
        });
        let report = run_conformance(&spec).unwrap();
        assert!(report.failed > 0);
        let failures = report.failures();
        assert!(
            failures.iter().any(|f| f.contains("regret ratio")),
            "{failures:?}"
        );
    }

    #[test]
    fn reports_without_the_current_schema_are_rejected() {
        let report = run_conformance(&tiny_spec()).unwrap();
        assert_eq!(report.schema, SCHEMA);
        let mut stale = report.clone();
        stale.schema = String::new(); // what a v1 artifact deserializes to
        let err = ConformanceReport::from_json(&stale.to_json().unwrap()).unwrap_err();
        assert!(err.contains("schema"), "{err}");
        let mut wrong = report;
        wrong.schema = "dck-conformance/v1".to_string();
        assert!(wrong.check_consistent().is_err());
    }

    #[test]
    fn report_json_roundtrip() {
        let report = run_conformance(&tiny_spec()).unwrap();
        let back = ConformanceReport::from_json(&report.to_json().unwrap()).unwrap();
        assert_eq!(report, back);
    }

    #[test]
    fn from_json_rejects_tampered_tallies() {
        let report = run_conformance(&tiny_spec()).unwrap();
        let mut tampered = report.clone();
        tampered.passed = 99;
        let err = ConformanceReport::from_json(&tampered.to_json().unwrap()).unwrap_err();
        assert!(err.contains("tally"), "{err}");
        let mut short = report;
        short.cells.pop();
        let err = short.check_consistent().unwrap_err();
        assert!(err.contains("cells"), "{err}");
    }

    #[test]
    fn zero_tolerance_fails_and_names_the_cell() {
        let mut spec = tiny_spec();
        // The estimator has statistical error and the model first-order
        // bias; with both allowances zeroed the cells must fail — the
        // negative control proving the harness *can* fail.
        spec.ci_slack = 0.0;
        spec.bias_allowance = 0.0;
        let report = run_conformance(&spec).unwrap();
        assert!(report.failed > 0);
        let failures = report.failures();
        assert_eq!(failures.len(), report.failed);
        assert!(
            failures[0].contains("MTBF=3600s")
                && failures[0].contains("alpha=10")
                && failures[0].contains("phi/R="),
            "{}",
            failures[0]
        );
    }

    #[test]
    fn degenerate_cells_are_not_failures() {
        let mut spec = tiny_spec();
        // MTBF close to the period: most replications die fatally.
        spec.mtbfs = vec![90.0];
        spec.phi_ratios = vec![1.0];
        spec.replications = 8;
        spec.work_in_mtbfs = 200.0;
        match run_conformance(&spec) {
            Ok(report) => {
                report.check_consistent().unwrap();
                for c in &report.cells {
                    if c.status == CellStatus::Degenerate {
                        assert!(c.tolerance.is_none());
                    }
                }
            }
            // The operating point may be infeasible outright — equally
            // explicit.
            Err(ModelError::Infeasible { .. }) => {}
            Err(e) => panic!("unexpected error {e:?}"),
        }
    }

    #[test]
    fn repro_script_compiles_to_the_cell_operating_point() {
        let spec = tiny_spec();
        let report = run_conformance(&spec).unwrap();
        let cell = &report.cells[0];
        let script = cell_repro_script(cell, &spec);
        let compiled = script.compile().unwrap();
        assert!((compiled.period - cell.period).abs() < 1e-12);
        let out = compiled.execute().unwrap();
        script.expect.check(&out.outcome).unwrap();
    }

    #[test]
    fn planes_use_decorrelated_seeds() {
        let mut spec = tiny_spec();
        spec.protocols = vec![Protocol::DoubleNbl, Protocol::DoubleBof];
        let report = run_conformance(&spec).unwrap();
        // Same (mtbf, α, φ) coordinates across protocols must not share
        // identical estimates (they would under a seed collision only
        // if waste were protocol-independent — it is not, but the seeds
        // differ regardless).
        let a = report.cells[0].sim_waste;
        let b = report.cells[2].sim_waste;
        assert_ne!(a, b);
    }
}
