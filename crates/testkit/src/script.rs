//! The `FaultScript` DSL: exact, deterministic failure injection.
//!
//! A script is a JSON document that pins down one protocol run
//! completely — platform, protocol, period, amount of work, and the
//! exact failure times — so a paper scenario reads as data:
//!
//! ```json
//! {
//!   "name": "nbl_buddy_inside_risk_window",
//!   "description": "buddy fails 10s into the victim's window: fatal",
//!   "protocol": "DoubleNbl",
//!   "platform": {"downtime": 0.0, "delta": 2.0, "theta_min": 4.0,
//!                "alpha": 10.0, "nodes": 8},
//!   "phi_ratio": 0.25,
//!   "mtbf": 3600.0,
//!   "period": {"Explicit": 100.0},
//!   "work": {"Periods": 10.0},
//!   "faults": [{"at": 250.0, "node": 0}, {"at": 260.0, "node": 1}],
//!   "expect": {"reason": "Fatal", "failures": 2, "survives": false}
//! }
//! ```
//!
//! Failures address a victim either directly (`"node": 3`) or
//! positionally (`"group": 1, "member": 0`) — positional addressing
//! keeps a scenario valid when the platform is resized, since "the
//! second pair" never renumbers. Compilation resolves both forms to a
//! time-ordered [`FailureTrace`] and executes it through the exact
//! `sim::run` code path Monte-Carlo replications use; nothing in the
//! simulator is mocked.
//!
//! Scripts use only serde features the vendored stack supports: every
//! enum is externally tagged with the Rust variant name, optional
//! fields are `Option`, and absent keys deserialize as `None`.

use dck_core::{PlatformParams, Protocol, RiskModel};
use dck_failures::{FailureEvent, FailureTrace};
use dck_protocols::GroupLayout;
use dck_sim::{
    run_to_completion_traced, PeriodChoice, RunConfig, RunOutcome, StopReason, TimelineEvent,
};
use dck_simcore::SimTime;
use serde::{Deserialize, Serialize};

/// How much useful work the scripted run must complete.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum WorkSpec {
    /// Whole checkpoint periods of useful work (resolved against the
    /// script's period, so `{"Periods": 10.0}` stays meaningful when
    /// the period changes).
    Periods(f64),
    /// Useful work in seconds at unit speed.
    Seconds(f64),
}

/// One injected failure. Exactly one addressing form must be used:
/// `node`, or `group` + `member`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fault {
    /// Wall-clock failure time (seconds).
    pub at: f64,
    /// Direct victim node id in `0..usable_nodes`.
    pub node: Option<u64>,
    /// Positional addressing: buddy-group index.
    pub group: Option<u64>,
    /// Positional addressing: member index within the group
    /// (`0..group_size`).
    pub member: Option<u64>,
}

impl Fault {
    /// A fault addressing a node directly.
    pub fn on_node(at: f64, node: u64) -> Fault {
        Fault {
            at,
            node: Some(node),
            group: None,
            member: None,
        }
    }

    /// A fault addressing `member` of `group`.
    pub fn on_member(at: f64, group: u64, member: u64) -> Fault {
        Fault {
            at,
            node: None,
            group: Some(group),
            member: Some(member),
        }
    }
}

/// Optional assertions checked after the run; absent fields are not
/// checked.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Expectation {
    /// Expected stop reason.
    pub reason: Option<StopReason>,
    /// Expected number of processed failures.
    pub failures: Option<u64>,
    /// Expected survival (no fatal failure).
    pub survives: Option<bool>,
}

impl Expectation {
    /// Checks the outcome, returning every mismatch in one message.
    ///
    /// # Errors
    /// A semicolon-joined list of `field: expected X, got Y` clauses.
    pub fn check(&self, out: &RunOutcome) -> Result<(), String> {
        let mut mismatches = Vec::new();
        if let Some(reason) = self.reason {
            if out.reason != reason {
                mismatches.push(format!("reason: expected {reason:?}, got {:?}", out.reason));
            }
        }
        if let Some(failures) = self.failures {
            if out.failures != failures {
                mismatches.push(format!(
                    "failures: expected {failures}, got {}",
                    out.failures
                ));
            }
        }
        if let Some(survives) = self.survives {
            if out.survived() != survives {
                mismatches.push(format!(
                    "survives: expected {survives}, got {} (fatal_at {:?})",
                    out.survived(),
                    out.fatal_at
                ));
            }
        }
        if mismatches.is_empty() {
            Ok(())
        } else {
            Err(mismatches.join("; "))
        }
    }
}

/// A deterministic fault-injection scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultScript {
    /// Scenario identifier (also the golden-corpus file stem).
    pub name: String,
    /// Human-readable intent — what paper behaviour this pins down.
    pub description: String,
    /// Protocol under test.
    pub protocol: Protocol,
    /// Platform parameters (Table I shape).
    pub platform: PlatformParams,
    /// Overhead ratio `φ/R ∈ [0, 1]`; `φ = ratio · θmin`.
    pub phi_ratio: f64,
    /// Platform MTBF (seconds) — only consulted when `period` is
    /// `Optimal`; the injected failures ignore it.
    pub mtbf: f64,
    /// Period selection (`"Optimal"` or `{"Explicit": seconds}`).
    pub period: PeriodChoice,
    /// Work the run must complete.
    pub work: WorkSpec,
    /// The injected failures, in any order (compilation sorts).
    pub faults: Vec<Fault>,
    /// Post-run assertions.
    pub expect: Expectation,
}

/// A script resolved against the simulator: ready to execute.
#[derive(Debug, Clone)]
pub struct CompiledScript {
    /// The run configuration (explicit resolved period).
    pub config: RunConfig,
    /// The injected failures as a validated, time-ordered trace over
    /// the usable nodes.
    pub trace: FailureTrace,
    /// Useful work the run must complete (seconds at unit speed).
    pub work: f64,
    /// The resolved checkpoint period (seconds).
    pub period: f64,
    /// The protocol's risk-window length at this operating point.
    pub risk_window: f64,
}

/// What a scripted run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct ScriptOutcome {
    /// The measured outcome.
    pub outcome: RunOutcome,
    /// The full event timeline (failures, outage ends, completion).
    pub timeline: Vec<TimelineEvent>,
}

impl FaultScript {
    /// Parses a script from JSON.
    ///
    /// # Errors
    /// A serde message; semantic validation happens in
    /// [`compile`](Self::compile).
    pub fn from_json(json: &str) -> Result<Self, String> {
        serde_json::from_str(json).map_err(|e| format!("invalid FaultScript: {e}"))
    }

    /// Serializes to pretty JSON.
    ///
    /// # Errors
    /// A serde message (practically unreachable for this plain struct).
    pub fn to_json(&self) -> Result<String, String> {
        let mut s =
            serde_json::to_string_pretty(self).map_err(|e| format!("script serialization: {e}"))?;
        s.push('\n');
        Ok(s)
    }

    /// Resolves the script against the model and simulator: validates
    /// the platform and operating point, resolves the period and the
    /// per-fault victim nodes, and assembles the failure trace.
    ///
    /// # Errors
    /// A message naming the offending field or fault index.
    pub fn compile(&self) -> Result<CompiledScript, String> {
        self.platform
            .validate()
            .map_err(|e| format!("script `{}`: platform: {e}", self.name))?;
        if !(0.0..=1.0).contains(&self.phi_ratio) {
            return Err(format!(
                "script `{}`: phi_ratio must lie in [0, 1], got {}",
                self.name, self.phi_ratio
            ));
        }
        let phi = self.phi_ratio * self.platform.theta_min;
        let mut config = RunConfig::new(self.protocol, self.platform, phi, self.mtbf);
        config.period = self.period;
        let period = config
            .resolve_period()
            .map_err(|e| format!("script `{}`: period: {e}", self.name))?;
        config.period = PeriodChoice::Explicit(period);
        let (sched, _, _) = config
            .build()
            .map_err(|e| format!("script `{}`: {e}", self.name))?;
        let risk_window = RiskModel::new(self.protocol, &self.platform, phi)
            .map_err(|e| format!("script `{}`: risk model: {e}", self.name))?
            .risk_window();

        let layout = GroupLayout::new(self.protocol, config.usable_nodes())
            .map_err(|e| format!("script `{}`: {e}", self.name))?;
        let mut events = Vec::with_capacity(self.faults.len());
        for (i, fault) in self.faults.iter().enumerate() {
            let node = resolve_victim(fault, &layout)
                .map_err(|e| format!("script `{}`: fault #{i}: {e}", self.name))?;
            if !(fault.at.is_finite() && fault.at >= 0.0) {
                return Err(format!(
                    "script `{}`: fault #{i}: time must be finite and >= 0, got {}",
                    self.name, fault.at
                ));
            }
            events.push(FailureEvent {
                at: SimTime::seconds(fault.at),
                node,
            });
        }
        events.sort_by_key(|e| e.at);

        let work = match self.work {
            WorkSpec::Periods(k) => {
                if !(k.is_finite() && k > 0.0) {
                    return Err(format!(
                        "script `{}`: work periods must be finite and > 0, got {k}",
                        self.name
                    ));
                }
                sched.work_at(k * period)
            }
            WorkSpec::Seconds(s) => {
                if !(s.is_finite() && s > 0.0) {
                    return Err(format!(
                        "script `{}`: work seconds must be finite and > 0, got {s}",
                        self.name
                    ));
                }
                s
            }
        };

        Ok(CompiledScript {
            trace: FailureTrace::new(config.usable_nodes(), events),
            config,
            work,
            period,
            risk_window,
        })
    }

    /// Compiles and executes the script. The expectation is *not*
    /// checked here — harnesses decide how to report mismatches (see
    /// [`Expectation::check`]).
    ///
    /// # Errors
    /// Compilation or simulation errors as a message.
    pub fn run(&self) -> Result<ScriptOutcome, String> {
        self.compile()?.execute()
    }
}

impl CompiledScript {
    /// Executes the compiled script through the traced simulator.
    ///
    /// # Errors
    /// Simulation configuration errors as a message.
    pub fn execute(&self) -> Result<ScriptOutcome, String> {
        let (outcome, timeline) =
            run_to_completion_traced(&self.config, self.work, &mut self.trace.replay())
                .map_err(|e| e.to_string())?;
        Ok(ScriptOutcome { outcome, timeline })
    }
}

fn resolve_victim(fault: &Fault, layout: &GroupLayout) -> Result<u64, String> {
    match (fault.node, fault.group, fault.member) {
        (Some(node), None, None) => {
            if node >= layout.nodes() {
                return Err(format!(
                    "node {node} out of range (usable nodes: {})",
                    layout.nodes()
                ));
            }
            Ok(node)
        }
        (None, Some(group), Some(member)) => {
            if group >= layout.groups() {
                return Err(format!(
                    "group {group} out of range ({} groups)",
                    layout.groups()
                ));
            }
            if member >= layout.group_size() {
                return Err(format!(
                    "member {member} out of range (group size {})",
                    layout.group_size()
                ));
            }
            Ok(group * layout.group_size() + member)
        }
        _ => Err("exactly one of `node` or `group`+`member` must be given".into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_script() -> FaultScript {
        FaultScript {
            name: "unit".into(),
            description: "unit-test scenario".into(),
            protocol: Protocol::DoubleNbl,
            platform: PlatformParams::new(0.0, 2.0, 4.0, 10.0, 8).unwrap(),
            phi_ratio: 0.25,
            mtbf: 3_600.0,
            period: PeriodChoice::Explicit(100.0),
            work: WorkSpec::Periods(10.0),
            faults: vec![],
            expect: Expectation::default(),
        }
    }

    #[test]
    fn failure_free_script_completes_exactly() {
        // φ = 1 ⇒ θ = 34, P = 100, W = 97: ten periods in 1000 s.
        let out = base_script().run().unwrap();
        assert_eq!(out.outcome.reason, StopReason::WorkComplete);
        assert!((out.outcome.total_time - 1000.0).abs() < 1e-9);
        assert!((out.outcome.useful_work - 970.0).abs() < 1e-9);
    }

    #[test]
    fn node_and_group_addressing_agree() {
        let mut by_node = base_script();
        by_node.faults = vec![Fault::on_node(250.0, 2), Fault::on_node(260.0, 3)];
        let mut by_member = base_script();
        by_member.faults = vec![Fault::on_member(250.0, 1, 0), Fault::on_member(260.0, 1, 1)];
        let a = by_node.run().unwrap();
        let b = by_member.run().unwrap();
        assert_eq!(a, b);
        assert_eq!(a.outcome.reason, StopReason::Fatal);
    }

    #[test]
    fn compile_sorts_faults_and_reports_risk_window() {
        let mut s = base_script();
        s.faults = vec![Fault::on_node(500.0, 4), Fault::on_node(250.0, 0)];
        let c = s.compile().unwrap();
        assert_eq!(c.trace.events()[0].node, 0);
        assert_eq!(c.trace.events()[1].node, 4);
        // NBL window at φ = 1: D + R + θ = 38.
        assert!((c.risk_window - 38.0).abs() < 1e-12);
        assert!((c.period - 100.0).abs() < 1e-12);
        assert!((c.work - 970.0).abs() < 1e-9);
    }

    #[test]
    fn optimal_period_resolves_to_explicit() {
        let mut s = base_script();
        s.period = PeriodChoice::Optimal;
        let c = s.compile().unwrap();
        assert!(matches!(c.config.period, PeriodChoice::Explicit(_)));
        assert!(c.period > 0.0);
    }

    #[test]
    fn compile_rejects_bad_addressing() {
        let cases: Vec<(Fault, &str)> = vec![
            (Fault::on_node(1.0, 99), "out of range"),
            (Fault::on_member(1.0, 99, 0), "group 99 out of range"),
            (Fault::on_member(1.0, 0, 7), "member 7 out of range"),
            (
                Fault {
                    at: 1.0,
                    node: Some(0),
                    group: Some(0),
                    member: Some(0),
                },
                "exactly one",
            ),
            (
                Fault {
                    at: 1.0,
                    node: None,
                    group: Some(0),
                    member: None,
                },
                "exactly one",
            ),
            (Fault::on_node(f64::NAN, 0), "finite"),
            (Fault::on_node(-5.0, 0), "finite"),
        ];
        for (fault, needle) in cases {
            let mut s = base_script();
            s.faults = vec![fault];
            let err = s.compile().unwrap_err();
            assert!(err.contains(needle), "{fault:?}: {err}");
            assert!(err.contains("fault #0"), "{err}");
        }
    }

    #[test]
    fn compile_rejects_bad_operating_point() {
        let mut s = base_script();
        s.phi_ratio = 1.5;
        assert!(s.compile().unwrap_err().contains("phi_ratio"));
        let mut s = base_script();
        s.period = PeriodChoice::Explicit(5.0); // < δ + θ
        assert!(s.compile().is_err());
        let mut s = base_script();
        s.work = WorkSpec::Periods(0.0);
        assert!(s.compile().unwrap_err().contains("periods"));
        let mut s = base_script();
        s.work = WorkSpec::Seconds(f64::INFINITY);
        assert!(s.compile().unwrap_err().contains("seconds"));
    }

    #[test]
    fn expectation_reports_every_mismatch() {
        let mut s = base_script();
        s.faults = vec![Fault::on_node(250.0, 0), Fault::on_node(260.0, 1)];
        s.expect = Expectation {
            reason: Some(StopReason::WorkComplete),
            failures: Some(0),
            survives: Some(true),
        };
        let out = s.run().unwrap();
        let err = s.expect.check(&out.outcome).unwrap_err();
        assert!(err.contains("reason"), "{err}");
        assert!(err.contains("failures"), "{err}");
        assert!(err.contains("survives"), "{err}");
        // And a matching expectation passes.
        let ok = Expectation {
            reason: Some(StopReason::Fatal),
            failures: Some(2),
            survives: Some(false),
        };
        ok.check(&out.outcome).unwrap();
    }

    #[test]
    fn json_roundtrip_preserves_script() {
        let mut s = base_script();
        s.faults = vec![Fault::on_node(250.0, 0), Fault::on_member(300.0, 2, 1)];
        s.expect.reason = Some(StopReason::WorkComplete);
        let back = FaultScript::from_json(&s.to_json().unwrap()).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn json_with_absent_optional_fields_parses() {
        // Hand-written form: `node` only, no `group`/`member`, sparse
        // expectation.
        let json = r#"{
            "name": "hand",
            "description": "hand-written scenario",
            "protocol": "DoubleNbl",
            "platform": {"downtime": 0.0, "delta": 2.0, "theta_min": 4.0,
                         "alpha": 10.0, "nodes": 8},
            "phi_ratio": 0.25,
            "mtbf": 3600.0,
            "period": {"Explicit": 100.0},
            "work": {"Periods": 10.0},
            "faults": [{"at": 250.0, "node": 3}],
            "expect": {"reason": "WorkComplete"}
        }"#;
        let s = FaultScript::from_json(json).unwrap();
        assert_eq!(s.faults[0].node, Some(3));
        assert_eq!(s.faults[0].group, None);
        assert_eq!(s.expect.reason, Some(StopReason::WorkComplete));
        assert_eq!(s.expect.failures, None);
        let out = s.run().unwrap();
        s.expect.check(&out.outcome).unwrap();
    }
}
