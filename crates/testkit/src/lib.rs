//! # dck-testkit — deterministic fault-injection and conformance
//!
//! Testing as a subsystem, in three layers:
//!
//! * [`script`] — the `FaultScript` DSL: a serde-loadable JSON document
//!   that replaces the stochastic failure stream with exact failure
//!   times per node (or per `(group, member)`), so any paper scenario —
//!   double failure inside the risk window, buddy failure mid-re-send,
//!   triple failure in one triple — is a ~10-line script executed
//!   through the same `sim::run` machinery as a Monte-Carlo sample.
//! * [`diff`] + [`golden`] — the golden-trace corpus harness: replay a
//!   script, compare the resulting event timeline *structurally*
//!   (variant by variant, floats within tolerance) against a stored
//!   JSONL trace, and name the first diverging event on regression.
//!   `DCK_UPDATE_GOLDEN=1` regenerates the corpus.
//! * [`conformance`] — the differential driver: sweep an
//!   `(MTBF, α, φ)` grid per protocol, run the closed-form waste
//!   (`core::waste`/`core::period`) against the Monte-Carlo estimate
//!   (`sim::sweep`), assert agreement within CI95, and emit a
//!   `conformance.json` report consumable by `dck validate`.
//! * [`killresume`] — the crash harness: SIGKILL a checkpointing
//!   command at seeded pseudo-random points and re-invoke it until one
//!   attempt completes, for kill-and-resume end-to-end tests.
//!
//! The crate is a *library of harness parts*: its own integration tests
//! (and the root tier-1 suite, the protocols property tests and the
//! `dck inject` CLI) are the consumers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod conformance;
pub mod diff;
pub mod golden;
pub mod killresume;
pub mod script;

pub use conformance::{
    run_conformance, AdaptationCell, AdaptationGrid, ConformanceCell, ConformanceReport,
    ConformanceSpec, GridSummary,
};
pub use diff::{diff_timelines, Divergence};
pub use golden::{load_cases, replay_case, GoldenCase, ReplayReport};
pub use killresume::{run_with_random_kills, CrashLoopOutcome, KillSchedule};
pub use script::{CompiledScript, Expectation, Fault, FaultScript, ScriptOutcome, WorkSpec};
