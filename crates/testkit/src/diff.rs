//! Structural timeline comparison.
//!
//! Golden-trace checks must not be byte-wise: a harmless change in
//! float formatting or serde layout would fail every golden file at
//! once and say nothing useful. Instead timelines are compared event
//! by event — same variant, same discrete fields, floats within an
//! absolute tolerance — and a regression names the *first* diverging
//! event with both sides printed.

use dck_sim::TimelineEvent;
use std::fmt;

/// Default absolute tolerance for timestamp/duration comparisons. The
/// simulator is pure f64 arithmetic over exact script inputs, so real
/// divergence is orders of magnitude larger; this only absorbs
/// last-bit noise from reformatting through JSON.
pub const FLOAT_TOLERANCE: f64 = 1e-9;

/// The first structural difference between two timelines.
#[derive(Debug, Clone, PartialEq)]
pub struct Divergence {
    /// Index of the first differing event (0-based).
    pub index: usize,
    /// The expected (golden) event, `None` if the golden timeline is
    /// shorter.
    pub expected: Option<TimelineEvent>,
    /// The actual event, `None` if the replay ended early.
    pub actual: Option<TimelineEvent>,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let side = |e: &Option<TimelineEvent>| match e {
            Some(ev) => format!("{ev:?}"),
            None => "<end of timeline>".to_string(),
        };
        write!(
            f,
            "first divergence at event {}: expected {}, got {}",
            self.index,
            side(&self.expected),
            side(&self.actual)
        )
    }
}

fn close(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol || (a.is_infinite() && b.is_infinite() && a == b)
}

/// Structural equality of single events under a float tolerance.
pub fn events_match(a: &TimelineEvent, b: &TimelineEvent, tol: f64) -> bool {
    use TimelineEvent::{Failure, Finished, OutageEnd, Retune};
    match (a, b) {
        (
            Failure {
                at: a_at,
                node: a_node,
                offset: a_off,
                outage: a_out,
                fatal: a_fatal,
                during_outage: a_during,
            },
            Failure {
                at: b_at,
                node: b_node,
                offset: b_off,
                outage: b_out,
                fatal: b_fatal,
                during_outage: b_during,
            },
        ) => {
            a_node == b_node
                && a_fatal == b_fatal
                && a_during == b_during
                && close(*a_at, *b_at, tol)
                && close(*a_off, *b_off, tol)
                && close(*a_out, *b_out, tol)
        }
        (OutageEnd { at: a_at }, OutageEnd { at: b_at }) => close(*a_at, *b_at, tol),
        (
            Retune {
                at: a_at,
                old_period: a_old,
                new_period: a_new,
                mtbf_estimate: a_m,
            },
            Retune {
                at: b_at,
                old_period: b_old,
                new_period: b_new,
                mtbf_estimate: b_m,
            },
        ) => {
            close(*a_at, *b_at, tol)
                && close(*a_old, *b_old, tol)
                && close(*a_new, *b_new, tol)
                && close(*a_m, *b_m, tol)
        }
        (
            Finished {
                at: a_at,
                reason: a_r,
            },
            Finished {
                at: b_at,
                reason: b_r,
            },
        ) => a_r == b_r && close(*a_at, *b_at, tol),
        _ => false,
    }
}

/// Compares two timelines structurally; `None` means they agree.
/// Length mismatches diverge at the first missing index, so an
/// appended or dropped tail event is reported just like a changed one.
pub fn diff_timelines(
    expected: &[TimelineEvent],
    actual: &[TimelineEvent],
    tol: f64,
) -> Option<Divergence> {
    let n = expected.len().max(actual.len());
    for i in 0..n {
        match (expected.get(i), actual.get(i)) {
            (Some(e), Some(a)) if events_match(e, a, tol) => {}
            (e, a) => {
                return Some(Divergence {
                    index: i,
                    expected: e.copied(),
                    actual: a.copied(),
                })
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use dck_sim::StopReason;

    fn failure(at: f64, node: u64) -> TimelineEvent {
        TimelineEvent::Failure {
            at,
            node,
            offset: at % 100.0,
            outage: 52.0,
            fatal: false,
            during_outage: false,
        }
    }

    #[test]
    fn identical_timelines_agree() {
        let t = vec![
            failure(250.0, 0),
            TimelineEvent::OutageEnd { at: 302.0 },
            TimelineEvent::Finished {
                at: 1052.0,
                reason: StopReason::WorkComplete,
            },
        ];
        assert_eq!(diff_timelines(&t, &t, FLOAT_TOLERANCE), None);
    }

    #[test]
    fn float_noise_is_absorbed_but_real_drift_is_not() {
        let a = vec![failure(250.0, 0)];
        let b = vec![failure(250.0 + 1e-12, 0)];
        assert_eq!(diff_timelines(&a, &b, FLOAT_TOLERANCE), None);
        let c = vec![failure(250.1, 0)];
        let d = diff_timelines(&a, &c, FLOAT_TOLERANCE).unwrap();
        assert_eq!(d.index, 0);
    }

    #[test]
    fn discrete_field_changes_diverge() {
        let a = vec![failure(250.0, 0)];
        let mut wrong_node = a.clone();
        wrong_node[0] = failure(250.0, 1);
        assert!(diff_timelines(&a, &wrong_node, FLOAT_TOLERANCE).is_some());
        let fatal = vec![TimelineEvent::Failure {
            at: 250.0,
            node: 0,
            offset: 50.0,
            outage: 52.0,
            fatal: true,
            during_outage: false,
        }];
        assert!(diff_timelines(&a, &fatal, FLOAT_TOLERANCE).is_some());
    }

    #[test]
    fn names_first_divergence_not_last() {
        let a = vec![failure(100.0, 0), failure(200.0, 2), failure(300.0, 4)];
        let mut b = a.clone();
        b[1] = failure(201.0, 2);
        b[2] = failure(301.0, 4);
        let d = diff_timelines(&a, &b, FLOAT_TOLERANCE).unwrap();
        assert_eq!(d.index, 1);
        let msg = d.to_string();
        assert!(msg.contains("event 1"), "{msg}");
    }

    #[test]
    fn length_mismatch_diverges_at_missing_index() {
        let a = vec![failure(100.0, 0), failure(200.0, 2)];
        let b = vec![failure(100.0, 0)];
        let d = diff_timelines(&a, &b, FLOAT_TOLERANCE).unwrap();
        assert_eq!(d.index, 1);
        assert!(d.actual.is_none());
        assert!(d.to_string().contains("<end of timeline>"));
        let d = diff_timelines(&b, &a, FLOAT_TOLERANCE).unwrap();
        assert!(d.expected.is_none());
    }

    #[test]
    fn variant_mismatch_diverges() {
        let a = vec![failure(100.0, 0)];
        let b = vec![TimelineEvent::OutageEnd { at: 100.0 }];
        assert!(diff_timelines(&a, &b, FLOAT_TOLERANCE).is_some());
    }
}
