//! Kill-and-resume crash harness for end-to-end checkpoint tests.
//!
//! Spawns a command, SIGKILLs it after a seeded pseudo-random delay,
//! and loops — re-invoking the command (the caller adds `--resume` or
//! equivalent) — until one attempt runs to completion. The delays come
//! from a [`KillSchedule`] so a failing seed reproduces the exact same
//! kill points; once the kill budget is spent the final attempt runs
//! uninterrupted, so the loop always terminates.
//!
//! Elapsed time is tracked by accumulating the poll sleeps rather than
//! reading a clock: the delays are *injected* test inputs, not
//! measurements, and keeping wall-clock reads out of the harness keeps
//! it deterministic enough to reason about.

use std::process::{Child, Command, Stdio};
use std::thread;
use std::time::Duration;

/// Milliseconds between `try_wait` polls while a kill is pending.
const POLL_MS: u64 = 2;

/// Deterministic kill-delay generator (SplitMix64): the same seed
/// yields the same sequence of kill points on every run.
#[derive(Debug, Clone)]
pub struct KillSchedule {
    state: u64,
}

impl KillSchedule {
    /// Creates a schedule from a seed.
    pub fn new(seed: u64) -> Self {
        KillSchedule { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The next kill delay, uniform in `[0, max_ms)` (0 when `max_ms`
    /// is 0 — kill immediately).
    pub fn next_delay_ms(&mut self, max_ms: u64) -> u64 {
        if max_ms == 0 {
            0
        } else {
            self.next_u64() % max_ms
        }
    }
}

/// What a crash loop produced once an attempt ran to completion.
#[derive(Debug)]
pub struct CrashLoopOutcome {
    /// Attempts SIGKILLed before one completed.
    pub kills: u32,
    /// Stdout of the completing attempt.
    pub stdout: String,
}

/// Runs `make_command(attempt)` repeatedly, killing each attempt after
/// the schedule's next delay, until an attempt exits on its own. The
/// attempt counter passed to `make_command` is the number of kills so
/// far, so the caller can inspect on-disk state between crashes.
/// Attempts past `max_kills` run uninterrupted, guaranteeing
/// termination.
///
/// # Errors
/// Spawn failures, wait failures, and any attempt that exits with a
/// non-success status (its stderr is included in the message).
pub fn run_with_random_kills<F>(
    mut make_command: F,
    schedule: &mut KillSchedule,
    max_kill_delay_ms: u64,
    max_kills: u32,
) -> Result<CrashLoopOutcome, String>
where
    F: FnMut(u32) -> Command,
{
    let mut kills = 0u32;
    loop {
        let mut cmd = make_command(kills);
        cmd.stdout(Stdio::piped()).stderr(Stdio::piped());
        let mut child = cmd
            .spawn()
            .map_err(|e| format!("attempt {kills}: cannot spawn: {e}"))?;
        let deadline_ms = if kills < max_kills {
            Some(schedule.next_delay_ms(max_kill_delay_ms))
        } else {
            None
        };
        if wait_or_kill(&mut child, deadline_ms)? {
            let out = child
                .wait_with_output()
                .map_err(|e| format!("attempt {kills}: cannot collect output: {e}"))?;
            if !out.status.success() {
                return Err(format!(
                    "attempt {kills}: exited with {}: {}",
                    out.status,
                    String::from_utf8_lossy(&out.stderr)
                ));
            }
            return Ok(CrashLoopOutcome {
                kills,
                stdout: String::from_utf8_lossy(&out.stdout).into_owned(),
            });
        }
        kills += 1;
    }
}

/// Waits for the child, killing it once `deadline_ms` of accumulated
/// poll sleep has passed (`None` waits indefinitely). Returns `true`
/// when the child exited on its own, `false` when it was killed.
fn wait_or_kill(child: &mut Child, deadline_ms: Option<u64>) -> Result<bool, String> {
    let mut slept = 0u64;
    loop {
        match child.try_wait() {
            Ok(Some(_)) => return Ok(true),
            Ok(None) => {}
            Err(e) => return Err(format!("wait failed: {e}")),
        }
        if let Some(d) = deadline_ms {
            if slept >= d {
                child.kill().map_err(|e| format!("kill failed: {e}"))?;
                let _ = child.wait();
                return Ok(false);
            }
        }
        thread::sleep(Duration::from_millis(POLL_MS));
        slept += POLL_MS;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sh(script: &str) -> Command {
        let mut c = Command::new("sh");
        c.arg("-c").arg(script);
        c
    }

    #[test]
    fn schedule_is_deterministic_and_bounded() {
        let mut a = KillSchedule::new(7);
        let mut b = KillSchedule::new(7);
        for _ in 0..64 {
            let d = a.next_delay_ms(50);
            assert_eq!(d, b.next_delay_ms(50));
            assert!(d < 50);
        }
        assert_eq!(KillSchedule::new(1).next_delay_ms(0), 0);
        // Different seeds diverge somewhere in the first few draws.
        let mut c = KillSchedule::new(8);
        let mut d = KillSchedule::new(9);
        assert!((0..8).any(|_| c.next_delay_ms(1000) != d.next_delay_ms(1000)));
    }

    #[test]
    fn completing_command_needs_no_kills() {
        let mut sched = KillSchedule::new(1);
        let out = run_with_random_kills(|_| sh("echo done"), &mut sched, 50, 0).unwrap();
        assert_eq!(out.kills, 0);
        assert_eq!(out.stdout.trim(), "done");
    }

    #[test]
    fn slow_attempts_are_killed_then_the_loop_converges() {
        // The first two attempts hang far past the kill window; the
        // third "resumes" instantly — mimicking a crash-recovery loop.
        let mut sched = KillSchedule::new(42);
        let out = run_with_random_kills(
            |attempt| {
                if attempt < 2 {
                    sh("sleep 30")
                } else {
                    sh("echo resumed")
                }
            },
            &mut sched,
            40,
            2,
        )
        .unwrap();
        assert_eq!(out.kills, 2);
        assert_eq!(out.stdout.trim(), "resumed");
    }

    #[test]
    fn failing_attempt_surfaces_its_stderr() {
        let mut sched = KillSchedule::new(3);
        let err =
            run_with_random_kills(|_| sh("echo boom >&2; exit 3"), &mut sched, 50, 0).unwrap_err();
        assert!(err.contains("boom"), "{err}");
        assert!(err.contains("attempt 0"), "{err}");
    }
}
