//! Golden-trace corpus: load, replay, diff, regenerate.
//!
//! Layout (repo-root `tests/golden/` by convention):
//!
//! ```text
//! tests/golden/
//!   scripts/<name>.json    # one FaultScript per file
//!   traces/<name>.jsonl    # its golden timeline, one event per line
//! ```
//!
//! [`replay_case`] executes a script, checks its embedded expectation,
//! and diffs the produced timeline structurally against the stored
//! golden. Setting `DCK_UPDATE_GOLDEN=1` rewrites the golden instead —
//! the one sanctioned way to bless a behaviour change, and the diff in
//! review then shows exactly which events moved.

use crate::diff::{diff_timelines, FLOAT_TOLERANCE};
use crate::script::FaultScript;
use dck_sim::TimelineEvent;
use std::path::{Path, PathBuf};

/// Environment variable that switches the harness from *compare* to
/// *regenerate*.
pub const UPDATE_ENV: &str = "DCK_UPDATE_GOLDEN";

/// True when the harness should rewrite goldens instead of diffing.
pub fn update_mode() -> bool {
    matches!(std::env::var(UPDATE_ENV), Ok(v) if !v.is_empty() && v != "0")
}

/// The workspace corpus directory (`tests/golden/` at the repo root).
pub fn default_corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden")
}

/// One corpus entry: a script and where its golden trace lives.
#[derive(Debug, Clone)]
pub struct GoldenCase {
    /// The script's `name` field (must match the file stem).
    pub name: String,
    /// Path of the script JSON.
    pub script_path: PathBuf,
    /// Path of the golden timeline JSONL.
    pub trace_path: PathBuf,
    /// The parsed script.
    pub script: FaultScript,
}

/// Loads every script under `dir/scripts/*.json`, sorted by filename
/// so corpus order (and with it failure output) is stable.
///
/// # Errors
/// I/O, parse, or a script whose `name` differs from its file stem.
pub fn load_cases(dir: &Path) -> Result<Vec<GoldenCase>, String> {
    let scripts_dir = dir.join("scripts");
    let mut paths: Vec<PathBuf> = std::fs::read_dir(&scripts_dir)
        .map_err(|e| format!("cannot read {}: {e}", scripts_dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
        .collect();
    paths.sort();
    let mut cases = Vec::with_capacity(paths.len());
    for path in paths {
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let script =
            FaultScript::from_json(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        let stem = path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or_default()
            .to_string();
        if script.name != stem {
            return Err(format!(
                "{}: script name `{}` does not match file stem `{stem}`",
                path.display(),
                script.name
            ));
        }
        cases.push(GoldenCase {
            trace_path: dir.join("traces").join(format!("{stem}.jsonl")),
            name: stem,
            script_path: path,
            script,
        });
    }
    Ok(cases)
}

/// Serializes a timeline to JSONL (one event per line).
///
/// # Errors
/// A serde message (practically unreachable for these plain enums).
pub fn timeline_to_jsonl(timeline: &[TimelineEvent]) -> Result<String, String> {
    let mut out = String::new();
    for ev in timeline {
        out.push_str(
            &serde_json::to_string(ev).map_err(|e| format!("timeline serialization: {e}"))?,
        );
        out.push('\n');
    }
    Ok(out)
}

/// Parses a timeline from JSONL, naming the offending line on error.
///
/// # Errors
/// A `line N: ...` message.
pub fn timeline_from_jsonl(text: &str) -> Result<Vec<TimelineEvent>, String> {
    text.lines()
        .enumerate()
        .map(|(i, line)| {
            serde_json::from_str(line).map_err(|e| format!("line {}: invalid event: {e}", i + 1))
        })
        .collect()
}

/// What replaying one golden case produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayReport {
    /// The case name.
    pub name: String,
    /// Timeline length.
    pub events: usize,
    /// True when the golden file was (re)written rather than compared.
    pub updated: bool,
}

/// Replays one case: run the script, check its expectation, then diff
/// against (or, in [`update_mode`], rewrite) the golden trace.
///
/// # Errors
/// A message naming the case and either the expectation mismatch or
/// the first diverging timeline event.
pub fn replay_case(case: &GoldenCase) -> Result<ReplayReport, String> {
    replay_case_mode(case, update_mode())
}

/// [`replay_case`] with the update/compare decision made explicit, so
/// callers (and tests) are independent of the ambient environment.
///
/// # Errors
/// Same contract as [`replay_case`].
pub fn replay_case_mode(case: &GoldenCase, update: bool) -> Result<ReplayReport, String> {
    let out = case
        .script
        .run()
        .map_err(|e| format!("golden `{}`: {e}", case.name))?;
    case.script
        .expect
        .check(&out.outcome)
        .map_err(|e| format!("golden `{}`: expectation failed: {e}", case.name))?;

    if update {
        if let Some(parent) = case.trace_path.parent() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("cannot create {}: {e}", parent.display()))?;
        }
        let jsonl = timeline_to_jsonl(&out.timeline)?;
        std::fs::write(&case.trace_path, jsonl)
            .map_err(|e| format!("cannot write {}: {e}", case.trace_path.display()))?;
        return Ok(ReplayReport {
            name: case.name.clone(),
            events: out.timeline.len(),
            updated: true,
        });
    }

    let text = std::fs::read_to_string(&case.trace_path).map_err(|e| {
        format!(
            "golden `{}`: cannot read {} ({e}); run with {UPDATE_ENV}=1 to generate it",
            case.name,
            case.trace_path.display()
        )
    })?;
    let golden = timeline_from_jsonl(&text)
        .map_err(|e| format!("golden `{}`: {}: {e}", case.name, case.trace_path.display()))?;
    if let Some(divergence) = diff_timelines(&golden, &out.timeline, FLOAT_TOLERANCE) {
        return Err(format!("golden `{}`: {divergence}", case.name));
    }
    Ok(ReplayReport {
        name: case.name.clone(),
        events: out.timeline.len(),
        updated: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::script::{Expectation, Fault, WorkSpec};
    use dck_core::{PlatformParams, Protocol};
    use dck_sim::{PeriodChoice, StopReason};

    fn script(name: &str) -> FaultScript {
        FaultScript {
            name: name.into(),
            description: "golden unit-test scenario".into(),
            protocol: Protocol::DoubleNbl,
            platform: PlatformParams::new(0.0, 2.0, 4.0, 10.0, 8).unwrap(),
            phi_ratio: 0.25,
            mtbf: 3_600.0,
            period: PeriodChoice::Explicit(100.0),
            work: WorkSpec::Periods(10.0),
            faults: vec![Fault::on_node(250.0, 0), Fault::on_node(300.0, 2)],
            expect: Expectation {
                reason: Some(StopReason::WorkComplete),
                failures: Some(2),
                survives: Some(true),
            },
        }
    }

    fn temp_corpus(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dck-golden-{}-{name}", std::process::id()));
        std::fs::create_dir_all(dir.join("scripts")).unwrap();
        std::fs::create_dir_all(dir.join("traces")).unwrap();
        dir
    }

    fn case_in(dir: &Path, s: &FaultScript) -> GoldenCase {
        let script_path = dir.join("scripts").join(format!("{}.json", s.name));
        std::fs::write(&script_path, s.to_json().unwrap()).unwrap();
        GoldenCase {
            name: s.name.clone(),
            trace_path: dir.join("traces").join(format!("{}.jsonl", s.name)),
            script_path,
            script: s.clone(),
        }
    }

    #[test]
    fn timeline_jsonl_roundtrip() {
        let out = script("rt").run().unwrap();
        assert!(!out.timeline.is_empty());
        let jsonl = timeline_to_jsonl(&out.timeline).unwrap();
        let back = timeline_from_jsonl(&jsonl).unwrap();
        assert_eq!(back, out.timeline);
        assert!(timeline_from_jsonl("garbage\n")
            .unwrap_err()
            .contains("line 1"));
    }

    #[test]
    fn replay_detects_divergence_and_missing_golden() {
        let dir = temp_corpus("diverge");
        let s = script("case_a");
        let case = case_in(&dir, &s);
        // No golden yet: the error points at the regeneration knob.
        let err = replay_case_mode(&case, false).unwrap_err();
        assert!(err.contains(UPDATE_ENV), "{err}");
        // Store a golden with a tampered event time: divergence at 0.
        let mut out = s.run().unwrap();
        if let Some(TimelineEvent::Failure { at, .. }) = out.timeline.first_mut() {
            *at += 7.0;
        }
        std::fs::write(&case.trace_path, timeline_to_jsonl(&out.timeline).unwrap()).unwrap();
        let err = replay_case_mode(&case, false).unwrap_err();
        assert!(err.contains("first divergence at event 0"), "{err}");
        // Store the true golden: replay passes.
        let out = s.run().unwrap();
        std::fs::write(&case.trace_path, timeline_to_jsonl(&out.timeline).unwrap()).unwrap();
        let report = replay_case_mode(&case, false).unwrap();
        assert_eq!(report.events, out.timeline.len());
        assert!(!report.updated);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn replay_fails_on_expectation_mismatch() {
        let dir = temp_corpus("expect");
        let mut s = script("case_b");
        s.expect.failures = Some(99);
        let case = case_in(&dir, &s);
        let err = replay_case(&case).unwrap_err();
        assert!(err.contains("expectation failed"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_cases_sorts_and_validates_names() {
        let dir = temp_corpus("load");
        for name in ["zeta", "alpha"] {
            case_in(&dir, &script(name));
        }
        let cases = load_cases(&dir).unwrap();
        assert_eq!(cases.len(), 2);
        assert_eq!(cases[0].name, "alpha");
        assert_eq!(cases[1].name, "zeta");
        // A name/stem mismatch is rejected.
        let mut bad = script("claims_to_be_x");
        bad.name = "actually_y".into();
        std::fs::write(
            dir.join("scripts").join("claims_to_be_x.json"),
            bad.to_json().unwrap(),
        )
        .unwrap();
        let err = load_cases(&dir).unwrap_err();
        assert!(err.contains("does not match file stem"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
