//! Differential conformance: the closed-form waste model vs Monte-Carlo
//! simulation over the coarse (MTBF, alpha, phi) grid. The resulting
//! report is written to `target/conformance.json` (override the path via
//! `DCK_CONFORMANCE_OUT`) so `dck validate --conformance` and CI can
//! consume it.

use std::path::PathBuf;

use dck_testkit::conformance::{run_conformance, ConformanceReport, ConformanceSpec};

fn output_path() -> PathBuf {
    match std::env::var("DCK_CONFORMANCE_OUT") {
        Ok(path) if !path.is_empty() => PathBuf::from(path),
        _ => PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/conformance.json"),
    }
}

#[test]
fn coarse_grid_model_matches_simulation() {
    let spec = ConformanceSpec::coarse();
    assert!(
        spec.cell_count() >= 27,
        "coarse grid must cover at least 27 (MTBF, alpha, phi) cells, got {}",
        spec.cell_count()
    );

    let report = run_conformance(&spec).expect("conformance sweep must run");

    // Persist before asserting so a failing grid still leaves the report
    // behind for inspection.
    let path = output_path();
    if let Some(parent) = path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    std::fs::write(&path, report.to_json().unwrap()).expect("write conformance.json");
    eprintln!("conformance report written to {}", path.display());

    assert_eq!(
        report.degenerate, 0,
        "grid contains degenerate cells (too few completed replications)"
    );
    assert!(
        report.all_pass(),
        "{} conformance cell(s) out of tolerance:\n{}",
        report.failed,
        report.failures().join("\n")
    );
    assert!(
        report.passed >= 27,
        "expected >= 27 passing cells, got {}",
        report.passed
    );

    // The emitted artifact must survive a parse + consistency check, since
    // `dck validate --conformance` consumes exactly this file.
    let text = std::fs::read_to_string(&path).expect("re-read conformance.json");
    let parsed = ConformanceReport::from_json(&text).expect("conformance.json must parse");
    assert_eq!(parsed.cells.len(), report.cells.len());
}
