//! Lossless round-trip guarantees for the fault-script pipeline:
//! script JSON -> compiled trace -> JSONL -> trace, over the whole corpus.

use dck_failures::FailureTrace;
use dck_simcore::SimTime;
use dck_testkit::golden::{default_corpus_dir, load_cases};
use dck_testkit::script::FaultScript;

#[test]
fn corpus_scripts_roundtrip_through_json() {
    let cases = load_cases(&default_corpus_dir()).expect("corpus must load");
    for case in &cases {
        let json = case.script.to_json().unwrap();
        let back = FaultScript::from_json(&json)
            .unwrap_or_else(|err| panic!("{}: reparse failed: {err}", case.name));
        let again = back.to_json().unwrap();
        assert_eq!(json, again, "{}: JSON round-trip is not stable", case.name);
    }
}

#[test]
fn compiled_traces_roundtrip_through_jsonl() {
    let cases = load_cases(&default_corpus_dir()).expect("corpus must load");
    for case in &cases {
        let compiled = case
            .script
            .compile()
            .unwrap_or_else(|err| panic!("{}: compile failed: {err}", case.name));
        let jsonl = compiled.trace.to_jsonl().unwrap();
        let back = FailureTrace::from_jsonl(&jsonl)
            .unwrap_or_else(|err| panic!("{}: JSONL reparse failed: {err}", case.name));
        assert_eq!(
            compiled.trace, back,
            "{}: trace JSONL round-trip is lossy",
            case.name
        );
    }
}

#[test]
fn truncated_traces_still_roundtrip() {
    let cases = load_cases(&default_corpus_dir()).expect("corpus must load");
    for case in &cases {
        let compiled = case.script.compile().expect("compile");
        // Cut the trace just after its first event (or keep it empty).
        let horizon = compiled
            .trace
            .events()
            .first()
            .map(|e| e.at + SimTime::seconds(1e-6))
            .unwrap_or(SimTime::seconds(0.0));
        let prefix = compiled.trace.truncated(horizon);
        let back = FailureTrace::from_jsonl(&prefix.to_jsonl().unwrap())
            .unwrap_or_else(|err| panic!("{}: truncated reparse failed: {err}", case.name));
        assert_eq!(
            prefix, back,
            "{}: truncated trace round-trip is lossy",
            case.name
        );
        assert!(back.events().len() <= compiled.trace.events().len());
    }
}
