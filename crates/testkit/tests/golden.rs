//! Golden-trace replay over the repository corpus in `tests/golden/`.
//!
//! Every script is compiled, executed, checked against its `expect` block,
//! and structurally diffed against its recorded timeline. Run with
//! `DCK_UPDATE_GOLDEN=1` to regenerate the recorded timelines after an
//! intentional semantic change.

use std::collections::BTreeMap;

use dck_core::Protocol;
use dck_testkit::golden::{default_corpus_dir, load_cases, replay_case, update_mode};

#[test]
fn corpus_covers_every_evaluated_protocol() {
    let cases = load_cases(&default_corpus_dir()).expect("corpus must load");
    assert!(!cases.is_empty(), "golden corpus is empty");

    let mut per_protocol: BTreeMap<String, usize> = BTreeMap::new();
    for case in &cases {
        *per_protocol.entry(case.script.protocol.id()).or_insert(0) += 1;
    }
    for protocol in Protocol::EVALUATED {
        let count = per_protocol.get(&protocol.id()).copied().unwrap_or(0);
        assert!(
            count >= 3,
            "protocol {} has only {count} golden scripts (need >= 3)",
            protocol.id()
        );
    }
}

#[test]
fn every_golden_case_replays_exactly() {
    let cases = load_cases(&default_corpus_dir()).expect("corpus must load");
    assert!(!cases.is_empty(), "golden corpus is empty");

    let mut failures = Vec::new();
    let mut updated = 0usize;
    for case in &cases {
        match replay_case(case) {
            Ok(report) => {
                if report.updated {
                    updated += 1;
                }
            }
            Err(err) => failures.push(format!("{}: {err}", case.name)),
        }
    }
    if update_mode() {
        eprintln!("regenerated {updated} golden traces");
    }
    assert!(
        failures.is_empty(),
        "{} golden case(s) failed:\n{}",
        failures.len(),
        failures.join("\n")
    );
}
