//! # dck-failures — failure modeling substrate
//!
//! The paper assumes node failures strike with "uniform distribution
//! over time" (i.e. a Poisson process: Exponential inter-arrivals) with
//! per-processor rate `λ = 1/(nM)` where `M` is the *platform* MTBF and
//! `n` the node count. This crate provides:
//!
//! * [`mtbf`] — the MTBF algebra relating individual-node and platform
//!   MTBFs and failure rates.
//! * [`distribution`] — inter-arrival distributions: Exponential (the
//!   paper's assumption), Weibull and LogNormal (the related-work
//!   distributions of refs [8–10], used for robustness studies), and
//!   Deterministic spacing for tests.
//! * [`process`] — infinite streams of `(time, node)` failure events
//!   over an `n`-node platform: an O(1)-per-event aggregated process for
//!   the memoryless Exponential case, and a heap-based per-node renewal
//!   process valid for any distribution.
//! * [`trace`] — record/replay of failure traces (serde-serializable)
//!   so experiments can be rerun bit-for-bit and traces can be shared.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod distribution;
pub mod drift;
pub mod mtbf;
pub mod process;
pub mod trace;

pub use distribution::{DistributionSpec, InterArrival};
pub use drift::DriftingExponential;
pub use mtbf::MtbfSpec;
pub use process::{AggregatedExponential, FailureEvent, FailureSource, NodeId, PerNodeRenewal};
pub use trace::{FailureTrace, OwnedTraceReplay, TraceReplay};
