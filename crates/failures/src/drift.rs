//! A non-stationary failure source: the platform MTBF drifts linearly
//! over a horizon.
//!
//! The paper's sources are stationary — calibrated to one platform
//! MTBF forever. Real machines age (or stabilize after burn-in), which
//! is exactly the regime an adaptive controller must win in. This
//! source models an inhomogeneous Poisson process whose platform MTBF
//! ramps linearly from `m0` at time 0 to `m1` at `horizon`, staying at
//! `m1` afterwards.
//!
//! Events are drawn by inverting the cumulative hazard
//! `Λ(t) = ∫₀ᵗ ds / m(s)` in closed form, so the source stays O(1)
//! per event like [`crate::AggregatedExponential`]: for the ramp
//! segment (`Δ = m1 − m0 ≠ 0`)
//!
//! ```text
//! Λ(t) = (h/Δ) · ln(1 + Δ·t/(m0·h)),   t⁻¹(Λ) = (m0·h/Δ)·(e^{Δ·Λ/h} − 1)
//! ```
//!
//! and linearly (`Λ = t/m0`) when `Δ = 0`. One exponential deviate and
//! one victim draw are consumed per event, in that order — the same
//! stream discipline as the stationary source.

use crate::process::{FailureEvent, FailureSource};
use dck_simcore::SimTime;
use rand::rngs::StdRng;
use rand::Rng;

/// Inhomogeneous Poisson failure source with linearly drifting MTBF.
#[derive(Debug)]
pub struct DriftingExponential {
    m0: f64,
    m1: f64,
    horizon: f64,
    nodes: u64,
    rng: StdRng,
    /// Cumulative hazard consumed so far (monotone).
    hazard: f64,
    now: SimTime,
}

impl DriftingExponential {
    /// Builds the source: platform MTBF `m0 → m1` (seconds) linearly
    /// over `horizon` seconds, constant `m1` afterwards. Victims are
    /// uniform over `nodes`.
    ///
    /// # Panics
    /// Panics when the MTBFs or horizon are non-positive/non-finite or
    /// `nodes == 0` — same contract as the stationary sources.
    pub fn new(m0: f64, m1: f64, horizon: f64, nodes: u64, rng: StdRng) -> Self {
        assert!(
            m0.is_finite() && m0 > 0.0 && m1.is_finite() && m1 > 0.0,
            "platform MTBFs must be positive"
        );
        assert!(
            horizon.is_finite() && horizon > 0.0,
            "drift horizon must be positive"
        );
        assert!(nodes > 0, "platform must have nodes");
        DriftingExponential {
            m0,
            m1,
            horizon,
            nodes,
            rng,
            hazard: 0.0,
            now: SimTime::ZERO,
        }
    }

    /// Cumulative hazard at absolute time `t`.
    fn hazard_at(&self, t: f64) -> f64 {
        let h = self.horizon;
        let d = self.m1 - self.m0;
        let ramp = |t: f64| {
            if d == 0.0 {
                t / self.m0
            } else {
                (h / d) * (1.0 + d * t / (self.m0 * h)).ln()
            }
        };
        if t <= h {
            ramp(t)
        } else {
            ramp(h) + (t - h) / self.m1
        }
    }

    /// Inverse of [`Self::hazard_at`].
    fn time_at_hazard(&self, l: f64) -> f64 {
        let h = self.horizon;
        let d = self.m1 - self.m0;
        let l_ramp = self.hazard_at(h);
        if l <= l_ramp {
            if d == 0.0 {
                self.m0 * l
            } else {
                (self.m0 * h / d) * ((d * l / h).exp() - 1.0)
            }
        } else {
            h + (l - l_ramp) * self.m1
        }
    }

    /// The time-averaged platform MTBF over the drift horizon,
    /// `h / Λ(h)` — the log-mean of `m0` and `m1`. This is the single
    /// stationary MTBF whose Poisson process produces the same
    /// expected failure count over the horizon, i.e. the best possible
    /// *static* belief for a run spanning it.
    pub fn effective_mtbf(&self) -> f64 {
        self.horizon / self.hazard_at(self.horizon)
    }
}

impl FailureSource for DriftingExponential {
    fn next_failure(&mut self) -> FailureEvent {
        let u: f64 = self.rng.gen();
        self.hazard += -(1.0 - u).ln();
        let node = self.rng.gen_range(0..self.nodes);
        self.now = SimTime::seconds(self.time_at_hazard(self.hazard));
        FailureEvent { at: self.now, node }
    }

    fn nodes(&self) -> u64 {
        self.nodes
    }

    fn platform_mtbf(&self) -> SimTime {
        SimTime::seconds(self.effective_mtbf())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dck_simcore::RngFactory;

    fn count_until(src: &mut DriftingExponential, lo: f64, hi: f64) -> u64 {
        let mut n = 0;
        loop {
            let at = src.next_failure().at.as_secs();
            if at >= hi {
                return n;
            }
            if at >= lo {
                n += 1;
            }
        }
    }

    #[test]
    fn hazard_inversion_round_trips() {
        let src = DriftingExponential::new(100.0, 400.0, 10_000.0, 8, RngFactory::new(1).stream(0));
        for t in [0.0, 1.0, 500.0, 5_000.0, 10_000.0, 20_000.0, 1e6] {
            let l = src.hazard_at(t);
            let back = src.time_at_hazard(l);
            assert!(
                (back - t).abs() < 1e-7 * t.max(1.0),
                "t {t} → Λ {l} → {back}"
            );
        }
        // Constant drift degenerates to the plain exponential hazard.
        let flat = DriftingExponential::new(100.0, 100.0, 1_000.0, 8, RngFactory::new(1).stream(0));
        assert!((flat.hazard_at(500.0) - 5.0).abs() < 1e-12);
        assert!((flat.time_at_hazard(5.0) - 500.0).abs() < 1e-9);
        assert!((flat.effective_mtbf() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn effective_mtbf_is_the_log_mean() {
        let src = DriftingExponential::new(100.0, 400.0, 10_000.0, 8, RngFactory::new(2).stream(0));
        let expect = (400.0 - 100.0) / (400.0_f64 / 100.0).ln();
        assert!((src.effective_mtbf() - expect).abs() < 1e-9);
    }

    #[test]
    fn failure_rate_tracks_the_ramp() {
        // MTBF degrades 400 → 100 over 200k s: the last quarter of the
        // ramp must see roughly 4× the failures of the first quarter.
        let mut src =
            DriftingExponential::new(400.0, 100.0, 200_000.0, 16, RngFactory::new(3).stream(0));
        let early = count_until(&mut src, 0.0, 50_000.0);
        let mut src =
            DriftingExponential::new(400.0, 100.0, 200_000.0, 16, RngFactory::new(3).stream(0));
        let late = count_until(&mut src, 150_000.0, 200_000.0);
        // E[early] ≈ 50k/⟨m⟩ on [400,325] ≈ 138; E[late] on [175,100] ≈ 373.
        assert!(
            (late as f64) > 2.0 * early as f64,
            "late {late} vs early {early}"
        );
        // Past the horizon the rate is constant at 1/m1 = 1/100.
        let mut src =
            DriftingExponential::new(400.0, 100.0, 200_000.0, 16, RngFactory::new(4).stream(0));
        let settled = count_until(&mut src, 300_000.0, 400_000.0) as f64;
        let tol = 5.0 * 1_000.0_f64.sqrt();
        assert!((settled - 1_000.0).abs() < tol, "settled {settled}");
    }

    #[test]
    fn times_nondecreasing_and_reproducible() {
        let draw = || -> Vec<FailureEvent> {
            let mut s =
                DriftingExponential::new(300.0, 60.0, 50_000.0, 32, RngFactory::new(9).stream(7));
            (0..500).map(|_| s.next_failure()).collect()
        };
        let a = draw();
        let b = draw();
        assert_eq!(a, b);
        let mut last = SimTime::ZERO;
        for ev in &a {
            assert!(ev.at >= last);
            assert!(ev.node < 32);
            last = ev.at;
        }
    }
}
