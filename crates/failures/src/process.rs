//! Platform-level failure event streams.
//!
//! A failure process answers one question forever: *when and where does
//! the next failure strike?* Two implementations are provided:
//!
//! * [`AggregatedExponential`] — exploits the memorylessness of the
//!   Exponential law: the superposition of `n` independent Poisson
//!   processes with rate `λ` is a single Poisson process with rate
//!   `nλ`, with the victim chosen uniformly. O(1) per event and valid
//!   even while nodes are being replaced (the replacement inherits the
//!   memoryless clock). This is the paper-faithful source.
//! * [`PerNodeRenewal`] — keeps one pending arrival per node in a
//!   [`dck_simcore::EventQueue`] and resamples a node's next arrival
//!   whenever one fires. Correct for *any* inter-arrival law (Weibull,
//!   LogNormal, ...), at O(log n) per event and O(n) memory.
//!
//! Both yield identical *distributions* in the Exponential case (tested
//! below), so experiments can switch sources without re-deriving
//! anything.

use crate::distribution::{DistributionSpec, InterArrival};
use crate::mtbf::MtbfSpec;
use dck_simcore::{fill_exponential_events, EventQueue, SimTime};
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// Index of a platform node, dense in `0..n`.
pub type NodeId = u64;

/// One failure: node `node` dies at absolute time `at`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FailureEvent {
    /// Absolute virtual time of the failure.
    pub at: SimTime,
    /// The node that fails.
    pub node: NodeId,
}

/// An infinite, ordered stream of failures over an `n`-node platform.
pub trait FailureSource {
    /// Returns the next failure (times are non-decreasing call-to-call).
    fn next_failure(&mut self) -> FailureEvent;

    /// Number of nodes the source covers.
    fn nodes(&self) -> u64;

    /// The calibrated platform MTBF of the stream (mean spacing between
    /// successive events, over all nodes).
    fn platform_mtbf(&self) -> SimTime;
}

/// Largest number of `(gap, victim)` pairs drawn per RNG refill once
/// the batch size has warmed up. Refills consume the generator in the
/// same per-event order as an unbatched loop (see
/// [`fill_exponential_events`]), so the emitted event stream is
/// bit-identical for a given seed regardless of batching.
const EVENT_BATCH_MAX: usize = 64;

/// First refill size. Short runs — a typical Monte-Carlo replication
/// consumes only a handful of events — should not pay for a full batch
/// of `ln()` transforms they never use, so refills start small and
/// double up to [`EVENT_BATCH_MAX`].
const EVENT_BATCH_FIRST: usize = 8;

/// O(1)-per-event Poisson failure source (Exponential law only).
///
/// Draws are buffered in batches so the hot replication loop runs a
/// straight array fill instead of alternating transform/consume per
/// event; batching never changes the emitted stream (the generator is
/// consumed in identical order).
#[derive(Debug)]
pub struct AggregatedExponential {
    now: SimTime,
    platform_mean: f64,
    nodes: u64,
    rng: StdRng,
    gaps: [f64; EVENT_BATCH_MAX],
    victims: [u64; EVENT_BATCH_MAX],
    filled: usize,
    next: usize,
    batch: usize,
}

impl AggregatedExponential {
    /// Builds the source from an MTBF specification and an RNG stream.
    pub fn new(mtbf: MtbfSpec, rng: StdRng) -> Self {
        let platform_mean = mtbf.platform_mtbf().as_secs();
        assert!(
            platform_mean > 0.0 && platform_mean.is_finite(),
            "platform MTBF must be positive"
        );
        AggregatedExponential {
            now: SimTime::ZERO,
            platform_mean,
            nodes: mtbf.nodes(),
            rng,
            gaps: [0.0; EVENT_BATCH_MAX],
            victims: [0; EVENT_BATCH_MAX],
            filled: 0,
            next: 0,
            batch: EVENT_BATCH_FIRST,
        }
    }

    fn refill(&mut self) {
        let n = self.batch;
        fill_exponential_events(
            &mut self.rng,
            self.platform_mean,
            self.nodes,
            &mut self.gaps[..n],
            &mut self.victims[..n],
        );
        self.filled = n;
        self.next = 0;
        self.batch = (self.batch * 2).min(EVENT_BATCH_MAX);
    }
}

impl FailureSource for AggregatedExponential {
    fn next_failure(&mut self) -> FailureEvent {
        if self.next == self.filled {
            self.refill();
        }
        let gap = self.gaps[self.next];
        let node = self.victims[self.next];
        self.next += 1;
        self.now += SimTime::seconds(gap);
        FailureEvent { at: self.now, node }
    }

    fn nodes(&self) -> u64 {
        self.nodes
    }

    fn platform_mtbf(&self) -> SimTime {
        SimTime::seconds(self.platform_mean)
    }
}

/// Heap-based per-node renewal failure source (any inter-arrival law).
///
/// Each node runs an independent renewal process with the supplied
/// *per-node* distribution (mean = individual MTBF). When a node's
/// arrival fires, its next arrival is sampled immediately — modeling a
/// replacement node drawn from the same hardware population.
pub struct PerNodeRenewal {
    queue: EventQueue<NodeId>,
    dist: Box<dyn InterArrival>,
    nodes: u64,
    rng: StdRng,
}

impl PerNodeRenewal {
    /// Builds the source. `per_node_spec.mean()` must equal the
    /// individual-node MTBF; the platform MTBF is derived from it.
    pub fn new(per_node_spec: DistributionSpec, nodes: u64, mut rng: StdRng) -> Self {
        assert!(nodes > 0, "platform must have nodes");
        let dist = per_node_spec.build();
        let mut queue = EventQueue::with_capacity(nodes as usize);
        for node in 0..nodes {
            let t = dist.sample(&mut rng);
            queue.push(t, node);
        }
        PerNodeRenewal {
            queue,
            dist,
            nodes,
            rng,
        }
    }

    /// Convenience: Exponential per-node renewal from an [`MtbfSpec`].
    pub fn exponential(mtbf: MtbfSpec, rng: StdRng) -> Self {
        Self::new(
            DistributionSpec::Exponential {
                mean: mtbf.individual_mtbf(),
            },
            mtbf.nodes(),
            rng,
        )
    }

    /// Builds a *warmed-up* renewal source: the process runs for
    /// `warmup` before time zero, so observations start from (an
    /// approximation of) the stationary regime rather than a fresh
    /// start. This matters for non-memoryless laws — a fresh-start
    /// Weibull with shape `k < 1` front-loads failures (infant
    /// mortality), inflating early-window failure counts well above the
    /// long-run rate. A warmup of several individual MTBFs washes that
    /// transient out. (Exponential sources are memoryless and
    /// unaffected.)
    pub fn with_warmup(
        per_node_spec: DistributionSpec,
        nodes: u64,
        rng: StdRng,
        warmup: SimTime,
    ) -> Self {
        let mut source = Self::new(per_node_spec, nodes, rng);
        // Advance past the warmup horizon: consume every arrival before
        // it (each pop resamples that node's next arrival)…
        while source.queue.peek().map(|e| e.at < warmup).unwrap_or(false) {
            let _ = source.next_failure();
        }
        // …then shift the pending arrivals back so time restarts at 0.
        let mut shifted = EventQueue::with_capacity(nodes as usize);
        while let Some(e) = source.queue.pop() {
            shifted.push(e.at - warmup, e.payload);
        }
        source.queue = shifted;
        source
    }
}

impl FailureSource for PerNodeRenewal {
    fn next_failure(&mut self) -> FailureEvent {
        let ev = self
            .queue
            .pop()
            .expect("renewal queue is never empty (one arrival per node)");
        let node = ev.payload;
        let next = ev.at + self.dist.sample(&mut self.rng);
        self.queue.push(next, node);
        FailureEvent { at: ev.at, node }
    }

    fn nodes(&self) -> u64 {
        self.nodes
    }

    fn platform_mtbf(&self) -> SimTime {
        self.dist.mean() / self.nodes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dck_simcore::{OnlineStats, RngFactory};

    fn mtbf_1h_64nodes() -> MtbfSpec {
        MtbfSpec::Platform {
            mtbf: SimTime::hours(1.0),
            nodes: 64,
        }
    }

    #[test]
    fn aggregated_times_are_nondecreasing() {
        let mut src = AggregatedExponential::new(mtbf_1h_64nodes(), RngFactory::new(1).stream(0));
        let mut last = SimTime::ZERO;
        for _ in 0..1000 {
            let ev = src.next_failure();
            assert!(ev.at >= last);
            assert!(ev.node < 64);
            last = ev.at;
        }
    }

    #[test]
    fn aggregated_platform_mtbf_calibrated() {
        let mut src = AggregatedExponential::new(mtbf_1h_64nodes(), RngFactory::new(2).stream(0));
        let mut stats = OnlineStats::new();
        let mut last = SimTime::ZERO;
        for _ in 0..30_000 {
            let ev = src.next_failure();
            stats.push((ev.at - last).as_secs());
            last = ev.at;
        }
        let se = stats.std_error();
        assert!(
            (stats.mean() - 3600.0).abs() < 5.0 * se,
            "mean {} se {se}",
            stats.mean()
        );
    }

    #[test]
    fn aggregated_victims_uniform() {
        let mut src = AggregatedExponential::new(mtbf_1h_64nodes(), RngFactory::new(3).stream(0));
        let mut counts = vec![0u64; 64];
        let n = 64_000;
        for _ in 0..n {
            counts[src.next_failure().node as usize] += 1;
        }
        let expected = n as f64 / 64.0;
        // Chi-squared-ish sanity: every node within ±20% of expectation.
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - expected).abs() < 0.2 * expected,
                "node {i}: {c} vs {expected}"
            );
        }
    }

    #[test]
    fn renewal_times_are_nondecreasing_and_cover_nodes() {
        let mut src = PerNodeRenewal::exponential(mtbf_1h_64nodes(), RngFactory::new(4).stream(0));
        let mut last = SimTime::ZERO;
        let mut seen = std::collections::HashSet::new();
        for _ in 0..5000 {
            let ev = src.next_failure();
            assert!(ev.at >= last);
            last = ev.at;
            seen.insert(ev.node);
        }
        // With 5000 events over 64 nodes, all nodes fail at least once
        // with overwhelming probability.
        assert_eq!(seen.len(), 64);
    }

    #[test]
    fn renewal_matches_aggregated_rate_for_exponential() {
        // Both sources should produce the same platform-level event
        // rate when the law is Exponential.
        let spec = mtbf_1h_64nodes();
        let horizon = SimTime::hours(2000.0);

        let mut agg = AggregatedExponential::new(spec, RngFactory::new(5).stream(0));
        let mut n_agg = 0u64;
        while agg.next_failure().at < horizon {
            n_agg += 1;
        }

        let mut ren = PerNodeRenewal::exponential(spec, RngFactory::new(5).stream(1));
        let mut n_ren = 0u64;
        while ren.next_failure().at < horizon {
            n_ren += 1;
        }

        let expected = horizon / SimTime::hours(1.0); // 2000 failures
        let tol = 5.0 * expected.sqrt(); // ~5 sigma for Poisson counts
        assert!(
            (n_agg as f64 - expected).abs() < tol,
            "aggregated count {n_agg} vs {expected}"
        );
        assert!(
            (n_ren as f64 - expected).abs() < tol,
            "renewal count {n_ren} vs {expected}"
        );
    }

    #[test]
    fn renewal_supports_weibull() {
        let spec = DistributionSpec::Weibull {
            mean: SimTime::hours(64.0), // individual MTBF
            shape: 0.7,
        };
        let mut src = PerNodeRenewal::new(spec, 64, RngFactory::new(6).stream(0));
        assert_eq!(src.nodes(), 64);
        assert!((src.platform_mtbf().as_hours() - 1.0).abs() < 1e-12);
        let mut last = SimTime::ZERO;
        for _ in 0..2000 {
            let ev = src.next_failure();
            assert!(ev.at >= last);
            last = ev.at;
        }
    }

    #[test]
    fn warmup_removes_weibull_infant_mortality() {
        // Fresh-start Weibull k = 0.5 front-loads failures: the first
        // window sees far more than rate × window. A warmed-up source
        // approaches the long-run rate. A single run of this process
        // has heavy-tailed count noise, so the assertion averages a
        // fixed seed ensemble: the ensemble means are deterministic
        // (seeded RNG) and far better separated than any single draw.
        let nodes = 64;
        let mean = SimTime::hours(64.0); // individual MTBF ⇒ platform 1 h
        let spec = DistributionSpec::Weibull { mean, shape: 0.5 };
        let window = SimTime::hours(50.0); // expect ~50 under stationarity
        const SEEDS: [u64; 8] = [21, 22, 23, 24, 25, 26, 27, 28];

        let count_in_window = |mut src: PerNodeRenewal| -> u64 {
            let mut n = 0;
            while src.next_failure().at < window {
                n += 1;
            }
            n
        };
        let mut fresh_mean = 0.0;
        let mut warmed_mean = 0.0;
        for seed in SEEDS {
            fresh_mean += count_in_window(PerNodeRenewal::new(
                spec,
                nodes,
                RngFactory::new(seed).stream(0),
            )) as f64;
            warmed_mean += count_in_window(PerNodeRenewal::with_warmup(
                spec,
                nodes,
                RngFactory::new(seed).stream(0),
                SimTime::hours(64.0 * 10.0), // ten individual MTBFs
            )) as f64;
        }
        fresh_mean /= SEEDS.len() as f64;
        warmed_mean /= SEEDS.len() as f64;

        // Fresh start massively over-produces early failures (the
        // k = 0.5 burn-in factor is ≫ 2× over this window)…
        assert!(fresh_mean > 80.0, "fresh mean {fresh_mean}");
        // …while the warmed-up ensemble sits near the stationary 50.
        // Band = ±60 % of the expectation, several ensemble standard
        // errors wide (σ/√8 ≈ 4 counts), so it tolerates RNG changes
        // without ever overlapping the fresh-start regime.
        assert!(
            (20.0..=80.0).contains(&warmed_mean),
            "warmed mean {warmed_mean} (expected near 50)"
        );
        assert!(warmed_mean < 0.6 * fresh_mean);
    }

    #[test]
    fn warmup_is_noop_for_exponential_statistics() {
        // Memoryless: warmed and fresh sources have the same rate.
        let spec = DistributionSpec::Exponential {
            mean: SimTime::hours(64.0),
        };
        let horizon = SimTime::hours(500.0);
        let count = |src: &mut PerNodeRenewal| {
            let mut n = 0u64;
            while src.next_failure().at < horizon {
                n += 1;
            }
            n as f64
        };
        let mut fresh = PerNodeRenewal::new(spec, 64, RngFactory::new(8).stream(0));
        let mut warmed = PerNodeRenewal::with_warmup(
            spec,
            64,
            RngFactory::new(8).stream(1),
            SimTime::hours(640.0),
        );
        let (a, b) = (count(&mut fresh), count(&mut warmed));
        // Both ≈ 500 (platform MTBF 1 h); 5σ Poisson band.
        let tol = 5.0 * 500.0_f64.sqrt();
        assert!((a - 500.0).abs() < tol, "fresh {a}");
        assert!((b - 500.0).abs() < tol, "warmed {b}");
    }

    #[test]
    fn batching_preserves_the_scalar_event_stream() {
        // The buffered source must emit exactly the events a scalar
        // draw-per-event loop would: one uniform → gap, one bounded
        // draw → victim, per event, in order. This pins the seeded
        // streams across the batching rewrite — every (seed, stream)
        // pair produces the same failures as before.
        use rand::Rng;
        let spec = mtbf_1h_64nodes();
        let mut src = AggregatedExponential::new(spec, RngFactory::new(41).stream(0));
        let mut rng = RngFactory::new(41).stream(0);
        let mean = spec.platform_mtbf().as_secs();
        let mut now = SimTime::ZERO;
        for i in 0..500 {
            let u: f64 = rng.gen();
            let gap = -mean * (1.0 - u).ln();
            now += SimTime::seconds(gap);
            let node = rng.gen_range(0..64u64);
            let ev = src.next_failure();
            assert_eq!(ev.at, now, "event {i} time");
            assert_eq!(ev.node, node, "event {i} victim");
        }
    }

    #[test]
    fn sources_are_reproducible() {
        let a: Vec<FailureEvent> = {
            let mut s = AggregatedExponential::new(mtbf_1h_64nodes(), RngFactory::new(9).stream(7));
            (0..100).map(|_| s.next_failure()).collect()
        };
        let b: Vec<FailureEvent> = {
            let mut s = AggregatedExponential::new(mtbf_1h_64nodes(), RngFactory::new(9).stream(7));
            (0..100).map(|_| s.next_failure()).collect()
        };
        assert_eq!(a, b);
    }
}
