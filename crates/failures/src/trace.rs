//! Recorded failure traces: capture, persist, replay.
//!
//! A trace pins down the *exact* failure history of a run, which gives
//! three things the raw stochastic sources cannot: (i) bit-for-bit
//! reproducible experiments across machines and crate versions, (ii) a
//! medium for sharing adversarial or regression scenarios as JSON, and
//! (iii) a place to compute empirical statistics (observed MTBF,
//! per-node counts) to validate the generators themselves.

use crate::process::{FailureEvent, FailureSource, NodeId};
use dck_simcore::{OnlineStats, SimTime};
use serde::{Deserialize, Serialize};

/// First line of the JSONL encoding: the platform size. Kept separate
/// from the event lines so a stream consumer knows the node range
/// before the first event arrives.
#[derive(Debug, Serialize, Deserialize)]
struct TraceHeader {
    nodes: u64,
}

/// An ordered, finite failure history over an `n`-node platform.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailureTrace {
    nodes: u64,
    events: Vec<FailureEvent>,
}

impl FailureTrace {
    /// Builds a trace from pre-sorted events.
    ///
    /// # Panics
    /// Panics if events are not in non-decreasing time order or name a
    /// node outside `0..nodes`.
    pub fn new(nodes: u64, events: Vec<FailureEvent>) -> Self {
        let mut last = SimTime::seconds(f64::NEG_INFINITY);
        for ev in &events {
            assert!(ev.at >= last, "trace events must be time-ordered");
            assert!(ev.node < nodes, "node {} out of range", ev.node);
            last = ev.at;
        }
        FailureTrace { nodes, events }
    }

    /// Records all failures of `source` strictly before `horizon`.
    pub fn record(source: &mut dyn FailureSource, horizon: SimTime) -> Self {
        let mut events = Vec::new();
        loop {
            let ev = source.next_failure();
            if ev.at >= horizon {
                break;
            }
            events.push(ev);
        }
        FailureTrace {
            nodes: source.nodes(),
            events,
        }
    }

    /// Number of nodes the trace covers.
    pub fn nodes(&self) -> u64 {
        self.nodes
    }

    /// The recorded events, time-ordered.
    pub fn events(&self) -> &[FailureEvent] {
        &self.events
    }

    /// Number of recorded failures.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if no failures were recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Time of the last recorded failure (None if empty).
    pub fn span(&self) -> Option<SimTime> {
        self.events.last().map(|e| e.at)
    }

    /// Empirical platform MTBF: mean gap between successive events.
    /// Returns `None` with fewer than 2 events.
    pub fn empirical_platform_mtbf(&self) -> Option<SimTime> {
        if self.events.len() < 2 {
            return None;
        }
        let mut stats = OnlineStats::new();
        for w in self.events.windows(2) {
            stats.push((w[1].at - w[0].at).as_secs());
        }
        Some(SimTime::seconds(stats.mean()))
    }

    /// Failure count per node.
    pub fn per_node_counts(&self) -> Vec<u64> {
        let mut counts = vec![0u64; self.nodes as usize];
        for ev in &self.events {
            counts[ev.node as usize] += 1;
        }
        counts
    }

    /// Keeps only events on nodes satisfying `keep`, renumbering nothing.
    pub fn filter_nodes(&self, keep: impl Fn(NodeId) -> bool) -> FailureTrace {
        FailureTrace {
            nodes: self.nodes,
            events: self
                .events
                .iter()
                .copied()
                .filter(|e| keep(e.node))
                .collect(),
        }
    }

    /// Serializes to pretty JSON.
    ///
    /// # Errors
    /// A serde message (practically unreachable for this plain struct).
    pub fn to_json(&self) -> Result<String, String> {
        serde_json::to_string_pretty(self).map_err(|e| format!("trace serialization: {e}"))
    }

    /// Parses a trace from JSON, re-validating ordering.
    pub fn from_json(json: &str) -> Result<Self, String> {
        let raw: FailureTrace = serde_json::from_str(json).map_err(|e| e.to_string())?;
        let mut last = SimTime::seconds(f64::NEG_INFINITY);
        for ev in &raw.events {
            if ev.at < last {
                return Err("trace events out of order".into());
            }
            if ev.node >= raw.nodes {
                return Err(format!("node {} out of range", ev.node));
            }
            last = ev.at;
        }
        Ok(raw)
    }

    /// Serializes to JSONL: a `{"nodes":N}` header line followed by one
    /// event object per line. The line-oriented form diffs cleanly,
    /// appends cheaply, and survives partial reads detectably —
    /// [`from_jsonl`](Self::from_jsonl) rejects a file cut mid-line.
    ///
    /// # Errors
    /// A serde message (practically unreachable for this plain struct).
    pub fn to_jsonl(&self) -> Result<String, String> {
        let mut out = serde_json::to_string(&TraceHeader { nodes: self.nodes })
            .map_err(|e| format!("trace header serialization: {e}"))?;
        out.push('\n');
        for ev in &self.events {
            out.push_str(
                &serde_json::to_string(ev)
                    .map_err(|e| format!("trace event serialization: {e}"))?,
            );
            out.push('\n');
        }
        Ok(out)
    }

    /// Parses the JSONL form produced by [`to_jsonl`](Self::to_jsonl),
    /// re-validating ordering and node range. A header with no events
    /// is a valid empty trace; a missing header, a malformed (e.g.
    /// truncated) line, disorder, or an out-of-range node is an error
    /// naming the line.
    pub fn from_jsonl(text: &str) -> Result<Self, String> {
        let mut lines = text.lines();
        let header = lines
            .next()
            .filter(|l| !l.trim().is_empty())
            .ok_or_else(|| r#"empty input: missing {"nodes":N} header"#.to_string())?;
        let header: TraceHeader =
            serde_json::from_str(header).map_err(|e| format!("line 1: invalid header: {e}"))?;
        let mut events = Vec::new();
        let mut last = SimTime::seconds(f64::NEG_INFINITY);
        for (i, line) in lines.enumerate() {
            let ev: FailureEvent = serde_json::from_str(line)
                .map_err(|e| format!("line {}: invalid event (truncated file?): {e}", i + 2))?;
            if ev.at < last {
                return Err(format!("line {}: events out of order", i + 2));
            }
            if ev.node >= header.nodes {
                return Err(format!("line {}: node {} out of range", i + 2, ev.node));
            }
            last = ev.at;
            events.push(ev);
        }
        Ok(FailureTrace {
            nodes: header.nodes,
            events,
        })
    }

    /// The prefix of the trace strictly before `horizon`.
    pub fn truncated(&self, horizon: SimTime) -> FailureTrace {
        FailureTrace {
            nodes: self.nodes,
            events: self
                .events
                .iter()
                .copied()
                .take_while(|e| e.at < horizon)
                .collect(),
        }
    }

    /// A replaying [`FailureSource`] over this trace. After the trace
    /// is exhausted the replayer reports failures at `SimTime::INFINITY`
    /// (i.e. never again), letting simulations run to their horizon.
    pub fn replay(&self) -> TraceReplay<'_> {
        TraceReplay {
            trace: self,
            next: 0,
        }
    }

    /// Like [`replay`](Self::replay) but consuming the trace — the
    /// owned form a `Box<dyn FailureSource>` plumbing layer needs.
    pub fn into_replay(self) -> OwnedTraceReplay {
        OwnedTraceReplay {
            trace: self,
            next: 0,
        }
    }
}

/// Replays a [`FailureTrace`] as a [`FailureSource`].
#[derive(Debug, Clone)]
pub struct TraceReplay<'a> {
    trace: &'a FailureTrace,
    next: usize,
}

impl FailureSource for TraceReplay<'_> {
    fn next_failure(&mut self) -> FailureEvent {
        match self.trace.events.get(self.next) {
            Some(ev) => {
                self.next += 1;
                *ev
            }
            None => FailureEvent {
                at: SimTime::INFINITY,
                node: 0,
            },
        }
    }

    fn nodes(&self) -> u64 {
        self.trace.nodes
    }

    fn platform_mtbf(&self) -> SimTime {
        self.trace
            .empirical_platform_mtbf()
            .unwrap_or(SimTime::INFINITY)
    }
}

/// Owning counterpart of [`TraceReplay`] (see
/// [`FailureTrace::into_replay`]).
#[derive(Debug, Clone)]
pub struct OwnedTraceReplay {
    trace: FailureTrace,
    next: usize,
}

impl OwnedTraceReplay {
    /// The trace being replayed.
    pub fn trace(&self) -> &FailureTrace {
        &self.trace
    }
}

impl FailureSource for OwnedTraceReplay {
    fn next_failure(&mut self) -> FailureEvent {
        match self.trace.events.get(self.next) {
            Some(ev) => {
                self.next += 1;
                *ev
            }
            None => FailureEvent {
                at: SimTime::INFINITY,
                node: 0,
            },
        }
    }

    fn nodes(&self) -> u64 {
        self.trace.nodes
    }

    fn platform_mtbf(&self) -> SimTime {
        self.trace
            .empirical_platform_mtbf()
            .unwrap_or(SimTime::INFINITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mtbf::MtbfSpec;
    use crate::process::AggregatedExponential;
    use dck_simcore::RngFactory;

    fn small_trace() -> FailureTrace {
        FailureTrace::new(
            4,
            vec![
                FailureEvent {
                    at: SimTime::seconds(10.0),
                    node: 1,
                },
                FailureEvent {
                    at: SimTime::seconds(25.0),
                    node: 3,
                },
                FailureEvent {
                    at: SimTime::seconds(25.0),
                    node: 0,
                },
                FailureEvent {
                    at: SimTime::seconds(40.0),
                    node: 1,
                },
            ],
        )
    }

    #[test]
    fn record_and_replay_roundtrip() {
        let spec = MtbfSpec::Platform {
            mtbf: SimTime::minutes(10.0),
            nodes: 8,
        };
        let mut src = AggregatedExponential::new(spec, RngFactory::new(42).stream(0));
        let trace = FailureTrace::record(&mut src, SimTime::hours(10.0));
        assert!(!trace.is_empty());
        assert!(trace.span().unwrap() < SimTime::hours(10.0));

        let mut replay = trace.replay();
        for ev in trace.events() {
            assert_eq!(replay.next_failure(), *ev);
        }
        // Exhausted: reports "never".
        assert_eq!(replay.next_failure().at, SimTime::INFINITY);
    }

    #[test]
    fn json_roundtrip() {
        let trace = small_trace();
        let json = trace.to_json().unwrap();
        let back = FailureTrace::from_json(&json).unwrap();
        assert_eq!(trace, back);
    }

    #[test]
    fn from_json_rejects_out_of_order() {
        let bad = r#"{"nodes":2,"events":[{"at":5.0,"node":0},{"at":1.0,"node":1}]}"#;
        assert!(FailureTrace::from_json(bad).is_err());
    }

    #[test]
    fn from_json_rejects_bad_node() {
        let bad = r#"{"nodes":2,"events":[{"at":5.0,"node":7}]}"#;
        assert!(FailureTrace::from_json(bad).is_err());
    }

    #[test]
    fn empirical_mtbf_of_even_spacing() {
        let trace = FailureTrace::new(
            1,
            (1..=10)
                .map(|i| FailureEvent {
                    at: SimTime::seconds(i as f64 * 5.0),
                    node: 0,
                })
                .collect(),
        );
        assert_eq!(
            trace.empirical_platform_mtbf().unwrap(),
            SimTime::seconds(5.0)
        );
    }

    #[test]
    fn per_node_counts_and_filter() {
        let trace = small_trace();
        assert_eq!(trace.per_node_counts(), vec![1, 2, 0, 1]);
        let only1 = trace.filter_nodes(|n| n == 1);
        assert_eq!(only1.len(), 2);
        assert!(only1.events().iter().all(|e| e.node == 1));
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn constructor_rejects_disorder() {
        let _ = FailureTrace::new(
            2,
            vec![
                FailureEvent {
                    at: SimTime::seconds(5.0),
                    node: 0,
                },
                FailureEvent {
                    at: SimTime::seconds(1.0),
                    node: 1,
                },
            ],
        );
    }

    #[test]
    fn jsonl_roundtrip_is_lossless() {
        for trace in [small_trace(), FailureTrace::new(3, vec![])] {
            let jsonl = trace.to_jsonl().unwrap();
            let back = FailureTrace::from_jsonl(&jsonl).unwrap();
            assert_eq!(trace, back);
            // And stable under a second round trip.
            assert_eq!(back.to_jsonl().unwrap(), jsonl);
        }
    }

    #[test]
    fn jsonl_of_recorded_trace_roundtrips() {
        let spec = MtbfSpec::Platform {
            mtbf: SimTime::minutes(10.0),
            nodes: 8,
        };
        let mut src = AggregatedExponential::new(spec, RngFactory::new(7).stream(0));
        let trace = FailureTrace::record(&mut src, SimTime::hours(20.0));
        assert!(trace.len() > 10);
        let back = FailureTrace::from_jsonl(&trace.to_jsonl().unwrap()).unwrap();
        assert_eq!(trace, back);
    }

    #[test]
    fn from_jsonl_rejects_truncated_input() {
        let jsonl = small_trace().to_jsonl().unwrap();
        // Cut the file mid-way through the last event line.
        let cut = &jsonl[..jsonl.len() - 8];
        let err = FailureTrace::from_jsonl(cut).unwrap_err();
        assert!(err.contains("invalid event"), "{err}");
        // Cutting at a line boundary silently shortens the trace — that
        // *is* detectable only by count, so it parses (by design: JSONL
        // appends are valid prefixes) but keeps fewer events.
        let boundary = &jsonl[..jsonl.rfind("{\"at\"").unwrap()];
        let short = FailureTrace::from_jsonl(boundary).unwrap();
        assert_eq!(short.len(), small_trace().len() - 1);
    }

    #[test]
    fn from_jsonl_rejects_missing_header_disorder_and_bad_node() {
        assert!(FailureTrace::from_jsonl("").unwrap_err().contains("header"));
        assert!(FailureTrace::from_jsonl("\n")
            .unwrap_err()
            .contains("header"));
        let err = FailureTrace::from_jsonl(
            "{\"nodes\":2}\n{\"at\":5.0,\"node\":0}\n{\"at\":1.0,\"node\":1}\n",
        )
        .unwrap_err();
        assert!(err.contains("out of order"), "{err}");
        let err = FailureTrace::from_jsonl("{\"nodes\":2}\n{\"at\":5.0,\"node\":7}\n").unwrap_err();
        assert!(err.contains("out of range"), "{err}");
    }

    #[test]
    fn owned_replay_matches_borrowed() {
        let trace = small_trace();
        let mut owned = trace.clone().into_replay();
        let mut borrowed = trace.replay();
        assert_eq!(owned.nodes(), borrowed.nodes());
        assert_eq!(owned.platform_mtbf(), borrowed.platform_mtbf());
        for _ in 0..trace.len() + 2 {
            assert_eq!(owned.next_failure(), borrowed.next_failure());
        }
        assert_eq!(owned.trace(), &trace);
    }

    #[test]
    fn truncated_keeps_strict_prefix() {
        let trace = small_trace();
        let t = trace.truncated(SimTime::seconds(25.0));
        assert_eq!(t.len(), 1);
        assert_eq!(t.nodes(), trace.nodes());
        let all = trace.truncated(SimTime::INFINITY);
        assert_eq!(all, trace);
        let none = trace.truncated(SimTime::seconds(0.0));
        assert!(none.is_empty());
        // An empty truncation still round-trips through JSONL.
        assert_eq!(
            FailureTrace::from_jsonl(&none.to_jsonl().unwrap()).unwrap(),
            none
        );
    }

    #[test]
    fn empty_trace_statistics() {
        let t = FailureTrace::new(3, vec![]);
        assert!(t.is_empty());
        assert!(t.span().is_none());
        assert!(t.empirical_platform_mtbf().is_none());
        assert_eq!(t.per_node_counts(), vec![0, 0, 0]);
    }
}
