//! Recorded failure traces: capture, persist, replay.
//!
//! A trace pins down the *exact* failure history of a run, which gives
//! three things the raw stochastic sources cannot: (i) bit-for-bit
//! reproducible experiments across machines and crate versions, (ii) a
//! medium for sharing adversarial or regression scenarios as JSON, and
//! (iii) a place to compute empirical statistics (observed MTBF,
//! per-node counts) to validate the generators themselves.

use crate::process::{FailureEvent, FailureSource, NodeId};
use dck_simcore::{OnlineStats, SimTime};
use serde::{Deserialize, Serialize};

/// An ordered, finite failure history over an `n`-node platform.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailureTrace {
    nodes: u64,
    events: Vec<FailureEvent>,
}

impl FailureTrace {
    /// Builds a trace from pre-sorted events.
    ///
    /// # Panics
    /// Panics if events are not in non-decreasing time order or name a
    /// node outside `0..nodes`.
    pub fn new(nodes: u64, events: Vec<FailureEvent>) -> Self {
        let mut last = SimTime::seconds(f64::NEG_INFINITY);
        for ev in &events {
            assert!(ev.at >= last, "trace events must be time-ordered");
            assert!(ev.node < nodes, "node {} out of range", ev.node);
            last = ev.at;
        }
        FailureTrace { nodes, events }
    }

    /// Records all failures of `source` strictly before `horizon`.
    pub fn record(source: &mut dyn FailureSource, horizon: SimTime) -> Self {
        let mut events = Vec::new();
        loop {
            let ev = source.next_failure();
            if ev.at >= horizon {
                break;
            }
            events.push(ev);
        }
        FailureTrace {
            nodes: source.nodes(),
            events,
        }
    }

    /// Number of nodes the trace covers.
    pub fn nodes(&self) -> u64 {
        self.nodes
    }

    /// The recorded events, time-ordered.
    pub fn events(&self) -> &[FailureEvent] {
        &self.events
    }

    /// Number of recorded failures.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if no failures were recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Time of the last recorded failure (None if empty).
    pub fn span(&self) -> Option<SimTime> {
        self.events.last().map(|e| e.at)
    }

    /// Empirical platform MTBF: mean gap between successive events.
    /// Returns `None` with fewer than 2 events.
    pub fn empirical_platform_mtbf(&self) -> Option<SimTime> {
        if self.events.len() < 2 {
            return None;
        }
        let mut stats = OnlineStats::new();
        for w in self.events.windows(2) {
            stats.push((w[1].at - w[0].at).as_secs());
        }
        Some(SimTime::seconds(stats.mean()))
    }

    /// Failure count per node.
    pub fn per_node_counts(&self) -> Vec<u64> {
        let mut counts = vec![0u64; self.nodes as usize];
        for ev in &self.events {
            counts[ev.node as usize] += 1;
        }
        counts
    }

    /// Keeps only events on nodes satisfying `keep`, renumbering nothing.
    pub fn filter_nodes(&self, keep: impl Fn(NodeId) -> bool) -> FailureTrace {
        FailureTrace {
            nodes: self.nodes,
            events: self
                .events
                .iter()
                .copied()
                .filter(|e| keep(e.node))
                .collect(),
        }
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("trace serialization cannot fail")
    }

    /// Parses a trace from JSON, re-validating ordering.
    pub fn from_json(json: &str) -> Result<Self, String> {
        let raw: FailureTrace = serde_json::from_str(json).map_err(|e| e.to_string())?;
        let mut last = SimTime::seconds(f64::NEG_INFINITY);
        for ev in &raw.events {
            if ev.at < last {
                return Err("trace events out of order".into());
            }
            if ev.node >= raw.nodes {
                return Err(format!("node {} out of range", ev.node));
            }
            last = ev.at;
        }
        Ok(raw)
    }

    /// A replaying [`FailureSource`] over this trace. After the trace
    /// is exhausted the replayer reports failures at `SimTime::INFINITY`
    /// (i.e. never again), letting simulations run to their horizon.
    pub fn replay(&self) -> TraceReplay<'_> {
        TraceReplay {
            trace: self,
            next: 0,
        }
    }
}

/// Replays a [`FailureTrace`] as a [`FailureSource`].
#[derive(Debug, Clone)]
pub struct TraceReplay<'a> {
    trace: &'a FailureTrace,
    next: usize,
}

impl FailureSource for TraceReplay<'_> {
    fn next_failure(&mut self) -> FailureEvent {
        match self.trace.events.get(self.next) {
            Some(ev) => {
                self.next += 1;
                *ev
            }
            None => FailureEvent {
                at: SimTime::INFINITY,
                node: 0,
            },
        }
    }

    fn nodes(&self) -> u64 {
        self.trace.nodes
    }

    fn platform_mtbf(&self) -> SimTime {
        self.trace
            .empirical_platform_mtbf()
            .unwrap_or(SimTime::INFINITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mtbf::MtbfSpec;
    use crate::process::AggregatedExponential;
    use dck_simcore::RngFactory;

    fn small_trace() -> FailureTrace {
        FailureTrace::new(
            4,
            vec![
                FailureEvent {
                    at: SimTime::seconds(10.0),
                    node: 1,
                },
                FailureEvent {
                    at: SimTime::seconds(25.0),
                    node: 3,
                },
                FailureEvent {
                    at: SimTime::seconds(25.0),
                    node: 0,
                },
                FailureEvent {
                    at: SimTime::seconds(40.0),
                    node: 1,
                },
            ],
        )
    }

    #[test]
    fn record_and_replay_roundtrip() {
        let spec = MtbfSpec::Platform {
            mtbf: SimTime::minutes(10.0),
            nodes: 8,
        };
        let mut src = AggregatedExponential::new(spec, RngFactory::new(42).stream(0));
        let trace = FailureTrace::record(&mut src, SimTime::hours(10.0));
        assert!(!trace.is_empty());
        assert!(trace.span().unwrap() < SimTime::hours(10.0));

        let mut replay = trace.replay();
        for ev in trace.events() {
            assert_eq!(replay.next_failure(), *ev);
        }
        // Exhausted: reports "never".
        assert_eq!(replay.next_failure().at, SimTime::INFINITY);
    }

    #[test]
    fn json_roundtrip() {
        let trace = small_trace();
        let json = trace.to_json();
        let back = FailureTrace::from_json(&json).unwrap();
        assert_eq!(trace, back);
    }

    #[test]
    fn from_json_rejects_out_of_order() {
        let bad = r#"{"nodes":2,"events":[{"at":5.0,"node":0},{"at":1.0,"node":1}]}"#;
        assert!(FailureTrace::from_json(bad).is_err());
    }

    #[test]
    fn from_json_rejects_bad_node() {
        let bad = r#"{"nodes":2,"events":[{"at":5.0,"node":7}]}"#;
        assert!(FailureTrace::from_json(bad).is_err());
    }

    #[test]
    fn empirical_mtbf_of_even_spacing() {
        let trace = FailureTrace::new(
            1,
            (1..=10)
                .map(|i| FailureEvent {
                    at: SimTime::seconds(i as f64 * 5.0),
                    node: 0,
                })
                .collect(),
        );
        assert_eq!(
            trace.empirical_platform_mtbf().unwrap(),
            SimTime::seconds(5.0)
        );
    }

    #[test]
    fn per_node_counts_and_filter() {
        let trace = small_trace();
        assert_eq!(trace.per_node_counts(), vec![1, 2, 0, 1]);
        let only1 = trace.filter_nodes(|n| n == 1);
        assert_eq!(only1.len(), 2);
        assert!(only1.events().iter().all(|e| e.node == 1));
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn constructor_rejects_disorder() {
        let _ = FailureTrace::new(
            2,
            vec![
                FailureEvent {
                    at: SimTime::seconds(5.0),
                    node: 0,
                },
                FailureEvent {
                    at: SimTime::seconds(1.0),
                    node: 1,
                },
            ],
        );
    }

    #[test]
    fn empty_trace_statistics() {
        let t = FailureTrace::new(3, vec![]);
        assert!(t.is_empty());
        assert!(t.span().is_none());
        assert!(t.empirical_platform_mtbf().is_none());
        assert_eq!(t.per_node_counts(), vec![0, 0, 0]);
    }
}
