//! Inter-arrival distributions for failure processes.
//!
//! The paper's analysis assumes Exponential inter-arrivals ("failures
//! strike with uniform distribution over time", §III-C). The related
//! work it cites ([8–10]) models real machines with Weibull and similar
//! laws, so the simulator also supports Weibull and LogNormal renewal
//! processes for robustness experiments, plus a Deterministic spacing
//! for unit tests that need exact failure placement.
//!
//! All distributions are driven through the object-safe [`InterArrival`]
//! trait so failure processes can hold `Box<dyn InterArrival>` without
//! generics leaking into every simulator signature.

use dck_simcore::SimTime;
use rand::Rng;
use rand_distr::{Distribution as _, LogNormal, Weibull};
use serde::{Deserialize, Serialize};

/// A positive inter-arrival time sampler.
pub trait InterArrival: Send + Sync {
    /// Samples the time until the next arrival.
    fn sample(&self, rng: &mut dyn rand::RngCore) -> SimTime;

    /// The distribution mean (time units), used for MTBF calibration
    /// and sanity checks.
    fn mean(&self) -> SimTime;
}

/// Serializable description of an inter-arrival distribution,
/// parameterized by its **mean** so that every law can be calibrated to
/// the same MTBF and compared apples-to-apples.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DistributionSpec {
    /// Exponential with the given mean (the paper's assumption).
    Exponential {
        /// Mean inter-arrival time (= MTBF for a renewal process).
        mean: SimTime,
    },
    /// Weibull with the given mean and shape `k` (k < 1: infant
    /// mortality, the empirically observed HPC regime; k = 1 reduces to
    /// Exponential).
    Weibull {
        /// Mean inter-arrival time.
        mean: SimTime,
        /// Shape parameter `k > 0`.
        shape: f64,
    },
    /// LogNormal with the given mean and `sigma` (log-scale std-dev).
    LogNormal {
        /// Mean inter-arrival time.
        mean: SimTime,
        /// Standard deviation of the underlying normal.
        sigma: f64,
    },
    /// Every arrival exactly `period` apart (testing/debugging).
    Deterministic {
        /// Fixed spacing.
        period: SimTime,
    },
}

impl DistributionSpec {
    /// Convenience: Exponential with the given mean.
    pub fn exponential(mean: SimTime) -> Self {
        DistributionSpec::Exponential { mean }
    }

    /// Builds the sampler described by this spec.
    ///
    /// # Panics
    /// Panics if parameters are out of range (non-positive mean/shape).
    pub fn build(&self) -> Box<dyn InterArrival> {
        match *self {
            DistributionSpec::Exponential { mean } => Box::new(Exponential::with_mean(mean)),
            DistributionSpec::Weibull { mean, shape } => {
                Box::new(WeibullArrival::with_mean(mean, shape))
            }
            DistributionSpec::LogNormal { mean, sigma } => {
                Box::new(LogNormalArrival::with_mean(mean, sigma))
            }
            DistributionSpec::Deterministic { period } => Box::new(Deterministic { period }),
        }
    }

    /// The mean of the described distribution.
    pub fn mean(&self) -> SimTime {
        match *self {
            DistributionSpec::Exponential { mean }
            | DistributionSpec::Weibull { mean, .. }
            | DistributionSpec::LogNormal { mean, .. } => mean,
            DistributionSpec::Deterministic { period } => period,
        }
    }

    /// Re-targets the spec to a new mean, keeping the shape parameters.
    pub fn with_mean(&self, mean: SimTime) -> DistributionSpec {
        match *self {
            DistributionSpec::Exponential { .. } => DistributionSpec::Exponential { mean },
            DistributionSpec::Weibull { shape, .. } => DistributionSpec::Weibull { mean, shape },
            DistributionSpec::LogNormal { sigma, .. } => {
                DistributionSpec::LogNormal { mean, sigma }
            }
            DistributionSpec::Deterministic { .. } => {
                DistributionSpec::Deterministic { period: mean }
            }
        }
    }
}

/// Exponential inter-arrivals, sampled by inverse CDF
/// (`−mean·ln(1−u)`), implemented directly so the hot path of the
/// paper-faithful simulations does not depend on `rand_distr`.
#[derive(Debug, Clone, Copy)]
pub struct Exponential {
    mean: f64,
}

impl Exponential {
    /// Exponential with the given mean.
    ///
    /// # Panics
    /// Panics if `mean` is not strictly positive and finite.
    pub fn with_mean(mean: SimTime) -> Self {
        let m = mean.as_secs();
        assert!(
            m > 0.0 && m.is_finite(),
            "Exponential mean must be positive"
        );
        Exponential { mean: m }
    }

    /// The rate `1/mean`.
    pub fn rate(&self) -> f64 {
        1.0 / self.mean
    }
}

impl InterArrival for Exponential {
    fn sample(&self, rng: &mut dyn rand::RngCore) -> SimTime {
        // 1 - u ∈ (0, 1]: ln never sees 0, sample is finite and ≥ 0.
        let u: f64 = rng.gen::<f64>();
        SimTime::seconds(-self.mean * (1.0 - u).ln())
    }

    fn mean(&self) -> SimTime {
        SimTime::seconds(self.mean)
    }
}

/// Weibull renewal inter-arrivals calibrated by mean.
#[derive(Debug, Clone, Copy)]
pub struct WeibullArrival {
    inner: Weibull<f64>,
    mean: f64,
}

impl WeibullArrival {
    /// Weibull with shape `k` whose mean equals `mean`.
    ///
    /// The scale is derived from `mean = scale · Γ(1 + 1/k)`.
    ///
    /// # Panics
    /// Panics on non-positive mean or shape.
    pub fn with_mean(mean: SimTime, shape: f64) -> Self {
        let m = mean.as_secs();
        assert!(m > 0.0 && m.is_finite(), "Weibull mean must be positive");
        assert!(shape > 0.0, "Weibull shape must be positive");
        let scale = m / gamma(1.0 + 1.0 / shape);
        WeibullArrival {
            inner: Weibull::new(scale, shape).expect("validated parameters"),
            mean: m,
        }
    }
}

impl InterArrival for WeibullArrival {
    fn sample(&self, rng: &mut dyn rand::RngCore) -> SimTime {
        SimTime::seconds(self.inner.sample(rng))
    }

    fn mean(&self) -> SimTime {
        SimTime::seconds(self.mean)
    }
}

/// LogNormal renewal inter-arrivals calibrated by mean.
#[derive(Debug, Clone, Copy)]
pub struct LogNormalArrival {
    inner: LogNormal<f64>,
    mean: f64,
}

impl LogNormalArrival {
    /// LogNormal with log-scale std-dev `sigma` whose mean equals
    /// `mean` (so `mu = ln(mean) − sigma²/2`).
    ///
    /// # Panics
    /// Panics on non-positive mean or negative sigma.
    pub fn with_mean(mean: SimTime, sigma: f64) -> Self {
        let m = mean.as_secs();
        assert!(m > 0.0 && m.is_finite(), "LogNormal mean must be positive");
        assert!(sigma >= 0.0, "LogNormal sigma must be non-negative");
        let mu = m.ln() - sigma * sigma / 2.0;
        LogNormalArrival {
            inner: LogNormal::new(mu, sigma).expect("validated parameters"),
            mean: m,
        }
    }
}

impl InterArrival for LogNormalArrival {
    fn sample(&self, rng: &mut dyn rand::RngCore) -> SimTime {
        SimTime::seconds(self.inner.sample(rng))
    }

    fn mean(&self) -> SimTime {
        SimTime::seconds(self.mean)
    }
}

/// Exact fixed spacing (for tests that need failures at known times).
#[derive(Debug, Clone, Copy)]
pub struct Deterministic {
    period: SimTime,
}

impl InterArrival for Deterministic {
    fn sample(&self, _rng: &mut dyn rand::RngCore) -> SimTime {
        self.period
    }

    fn mean(&self) -> SimTime {
        self.period
    }
}

/// Lanczos approximation of the Gamma function (g = 7, n = 9), accurate
/// to ~1e-13 on the positive reals we use for Weibull calibration.
fn gamma(x: f64) -> f64 {
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        std::f64::consts::PI / ((std::f64::consts::PI * x).sin() * gamma(1.0 - x))
    } else {
        let x = x - 1.0;
        let mut a = COEF[0];
        let t = x + G + 0.5;
        for (i, &c) in COEF.iter().enumerate().skip(1) {
            a += c / (x + i as f64);
        }
        (2.0 * std::f64::consts::PI).sqrt() * t.powf(x + 0.5) * (-t).exp() * a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dck_simcore::{OnlineStats, RngFactory};

    fn sample_mean(spec: DistributionSpec, n: usize) -> (f64, f64) {
        let d = spec.build();
        let mut rng = RngFactory::new(123).stream(0);
        let mut stats = OnlineStats::new();
        for _ in 0..n {
            let x = d.sample(&mut rng).as_secs();
            assert!(x >= 0.0, "negative inter-arrival");
            stats.push(x);
        }
        (stats.mean(), stats.std_error())
    }

    #[test]
    fn gamma_reference_values() {
        assert!((gamma(1.0) - 1.0).abs() < 1e-12);
        assert!((gamma(2.0) - 1.0).abs() < 1e-12);
        assert!((gamma(5.0) - 24.0).abs() < 1e-9);
        assert!((gamma(0.5) - std::f64::consts::PI.sqrt()).abs() < 1e-12);
        assert!((gamma(1.5) - 0.5 * std::f64::consts::PI.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn exponential_mean_calibrated() {
        let mean = SimTime::hours(1.0);
        let (m, se) = sample_mean(DistributionSpec::Exponential { mean }, 40_000);
        assert!((m - 3600.0).abs() < 5.0 * se.max(1.0), "mean {m}, se {se}");
    }

    #[test]
    fn weibull_mean_calibrated_across_shapes() {
        for shape in [0.5, 0.7, 1.0, 2.0] {
            let mean = SimTime::seconds(100.0);
            let (m, se) = sample_mean(DistributionSpec::Weibull { mean, shape }, 60_000);
            assert!(
                (m - 100.0).abs() < 6.0 * se.max(0.05),
                "shape {shape}: mean {m}, se {se}"
            );
        }
    }

    #[test]
    fn weibull_shape_one_is_exponential() {
        // With k = 1 the Weibull *is* Exponential; compare CDFs via
        // sample quantiles loosely: both should have ~63.2% of mass
        // below the mean.
        let spec = DistributionSpec::Weibull {
            mean: SimTime::seconds(50.0),
            shape: 1.0,
        };
        let d = spec.build();
        let mut rng = RngFactory::new(5).stream(1);
        let below = (0..50_000)
            .filter(|_| d.sample(&mut rng).as_secs() < 50.0)
            .count() as f64
            / 50_000.0;
        assert!((below - 0.632).abs() < 0.01, "below-mean mass {below}");
    }

    #[test]
    fn lognormal_mean_calibrated() {
        let mean = SimTime::seconds(10.0);
        let (m, se) = sample_mean(DistributionSpec::LogNormal { mean, sigma: 1.0 }, 80_000);
        assert!((m - 10.0).abs() < 6.0 * se.max(0.01), "mean {m}, se {se}");
    }

    #[test]
    fn deterministic_is_exact() {
        let d = DistributionSpec::Deterministic {
            period: SimTime::seconds(7.0),
        }
        .build();
        let mut rng = RngFactory::new(0).stream(0);
        for _ in 0..5 {
            assert_eq!(d.sample(&mut rng), SimTime::seconds(7.0));
        }
        assert_eq!(d.mean(), SimTime::seconds(7.0));
    }

    #[test]
    fn with_mean_retargets() {
        let spec = DistributionSpec::Weibull {
            mean: SimTime::seconds(1.0),
            shape: 0.7,
        };
        let re = spec.with_mean(SimTime::hours(2.0));
        assert_eq!(re.mean(), SimTime::hours(2.0));
        match re {
            DistributionSpec::Weibull { shape, .. } => assert_eq!(shape, 0.7),
            _ => panic!("shape family changed"),
        }
    }

    #[test]
    fn spec_roundtrips_serde() {
        let spec = DistributionSpec::LogNormal {
            mean: SimTime::minutes(3.0),
            sigma: 0.5,
        };
        let json = serde_json::to_string(&spec).unwrap();
        let back: DistributionSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_mean_rejected() {
        let _ = Exponential::with_mean(SimTime::ZERO);
    }
}
