//! MTBF algebra.
//!
//! The paper (§III-C, §VII) uses two views of reliability:
//!
//! * the **platform MTBF** `M`: mean time between failures *anywhere*
//!   on the machine — the quantity the waste model consumes;
//! * the **individual (per-node) MTBF** `M_ind = n·M`, equivalently the
//!   per-node instantaneous rate `λ = 1/(nM)` — the quantity the risk
//!   model consumes.
//!
//! "a parallel job using n processors of individual MTBF `M_ind` can be
//! viewed as a single processor job with MTBF `M = M_ind / n`" (§VII).
//! [`MtbfSpec`] captures either specification and converts exactly.

use dck_simcore::SimTime;
use serde::{Deserialize, Serialize};

/// Reliability of an `n`-node platform, specified either way.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MtbfSpec {
    /// Mean time between failures across the whole platform.
    Platform {
        /// Platform MTBF `M`.
        mtbf: SimTime,
        /// Node count `n`.
        nodes: u64,
    },
    /// Mean time between failures of one node.
    Individual {
        /// Per-node MTBF `M_ind`.
        mtbf: SimTime,
        /// Node count `n`.
        nodes: u64,
    },
}

impl MtbfSpec {
    /// Platform MTBF `M` (seconds between platform-level failures).
    pub fn platform_mtbf(&self) -> SimTime {
        match *self {
            MtbfSpec::Platform { mtbf, .. } => mtbf,
            MtbfSpec::Individual { mtbf, nodes } => {
                assert!(nodes > 0, "platform must have nodes");
                mtbf / nodes as f64
            }
        }
    }

    /// Individual node MTBF `M_ind = n·M`.
    pub fn individual_mtbf(&self) -> SimTime {
        match *self {
            MtbfSpec::Platform { mtbf, nodes } => mtbf * nodes as f64,
            MtbfSpec::Individual { mtbf, .. } => mtbf,
        }
    }

    /// Number of nodes `n`.
    pub fn nodes(&self) -> u64 {
        match *self {
            MtbfSpec::Platform { nodes, .. } | MtbfSpec::Individual { nodes, .. } => nodes,
        }
    }

    /// Per-node instantaneous failure rate `λ = 1/(nM)` in s⁻¹.
    pub fn node_rate(&self) -> f64 {
        1.0 / self.individual_mtbf().as_secs()
    }

    /// Platform-level failure rate `nλ = 1/M` in s⁻¹.
    pub fn platform_rate(&self) -> f64 {
        1.0 / self.platform_mtbf().as_secs()
    }

    /// Probability that a given node survives a window of length `w`
    /// under Exponential failures: `exp(−λw)`.
    pub fn node_survival(&self, w: SimTime) -> f64 {
        (-self.node_rate() * w.as_secs()).exp()
    }

    /// Probability that the whole platform sees no failure during a
    /// window of length `w`: `exp(−nλw)`.
    pub fn platform_survival(&self, w: SimTime) -> f64 {
        (-self.platform_rate() * w.as_secs()).exp()
    }

    /// Expected number of failures anywhere on the platform during a
    /// window of length `w`.
    pub fn expected_failures(&self, w: SimTime) -> f64 {
        w.as_secs() * self.platform_rate()
    }

    /// Rescales to a different node count keeping the *individual* MTBF
    /// fixed (the physically meaningful scaling when growing a machine
    /// from the same component class: platform MTBF shrinks as 1/n).
    pub fn with_nodes(&self, nodes: u64) -> MtbfSpec {
        MtbfSpec::Individual {
            mtbf: self.individual_mtbf(),
            nodes,
        }
    }
}

/// Computes the introduction's headline number: the probability that at
/// least one of `n` independent components fails within a window, given
/// per-component survival probability `p_unit` for that window.
///
/// The paper's example: a 50-year component MTBF gives p ≈ 0.999998 of
/// surviving one hour, yet a million-node machine fails within the hour
/// with probability `1 − 0.999998^1e6 > 0.86`.
pub fn any_component_failure_probability(p_unit_survival: f64, n: u64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&p_unit_survival),
        "survival probability must be in [0,1]"
    );
    1.0 - p_unit_survival.powf(n as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn platform_and_individual_views_convert() {
        let spec = MtbfSpec::Individual {
            mtbf: SimTime::years(50.0),
            nodes: 1_000_000,
        };
        let m = spec.platform_mtbf();
        // 50 years / 1e6 ≈ 1577 s ≈ 26 min.
        assert!((m.as_secs() - 50.0 * 365.0 * 86_400.0 / 1e6).abs() < 1e-6);
        let back = MtbfSpec::Platform {
            mtbf: m,
            nodes: 1_000_000,
        };
        assert!((back.individual_mtbf().as_secs() - spec.individual_mtbf().as_secs()).abs() < 1e-3);
    }

    #[test]
    fn rates_are_reciprocal_mtbfs() {
        let spec = MtbfSpec::Platform {
            mtbf: SimTime::hours(1.0),
            nodes: 100,
        };
        assert!((spec.platform_rate() - 1.0 / 3600.0).abs() < 1e-15);
        assert!((spec.node_rate() - 1.0 / 360_000.0).abs() < 1e-15);
        assert_eq!(spec.nodes(), 100);
    }

    #[test]
    fn paper_introduction_example() {
        // 0.999998 hourly survival per node, one million nodes → > 0.86.
        let p = any_component_failure_probability(0.999998, 1_000_000);
        assert!(p > 0.86, "got {p}");
        assert!(p < 0.87, "got {p}");
    }

    #[test]
    fn survival_probabilities() {
        let spec = MtbfSpec::Platform {
            mtbf: SimTime::hours(1.0),
            nodes: 10,
        };
        // Platform survives one platform-MTBF with probability 1/e.
        let p = spec.platform_survival(SimTime::hours(1.0));
        assert!((p - (-1.0f64).exp()).abs() < 1e-12);
        // Node survival over the same window is much higher.
        assert!(spec.node_survival(SimTime::hours(1.0)) > p);
        // Expected failures over 3 platform MTBFs is 3.
        assert!((spec.expected_failures(SimTime::hours(3.0)) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn with_nodes_keeps_individual_mtbf() {
        let spec = MtbfSpec::Platform {
            mtbf: SimTime::hours(10.0),
            nodes: 100,
        };
        let grown = spec.with_nodes(1000);
        assert_eq!(grown.nodes(), 1000);
        assert!(
            (grown.individual_mtbf().as_secs() - spec.individual_mtbf().as_secs()).abs() < 1e-9
        );
        // Platform MTBF shrank 10x.
        assert!((grown.platform_mtbf().as_secs() - 3600.0).abs() < 1e-9);
    }
}
