//! `dck-bench` — the tracked perf-trajectory harness.
//!
//! Measures the two workloads ROADMAP item 2 cares about and writes
//! them as schema-validated artifacts (see [`dck_bench::report`]):
//!
//! * `BENCH_reps.json` — Monte-Carlo replication throughput of one
//!   operating point, fast (monomorphized `ChunkRunner`) path vs the
//!   boxed per-replication reference path, across worker counts.
//! * `BENCH_sweep.json` — wall-clock and throughput of a small
//!   parameter sweep across worker counts.
//!
//! Usage: `dck-bench [--out DIR] [--quick] [--seed N] [--reps N]
//! [--workers CSV]`. `--quick` shrinks the grid for CI smoke runs.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

use dck_bench::{BenchConfig, BenchKind, BenchReport, BenchSeries, BenchSummary, SCHEMA};
use dck_core::{PlatformParams, Protocol};
use dck_sim::{
    estimate_waste, estimate_waste_reference, run_sweep, MonteCarloConfig, RunConfig, SweepSpec,
    WasteEstimate,
};
use dck_simcore::fsio;

struct Options {
    out: PathBuf,
    quick: bool,
    seed: u64,
    reps: usize,
    workers: Vec<usize>,
}

const USAGE: &str = "usage: dck-bench [--out DIR] [--quick] [--seed N] [--reps N] [--workers CSV]";

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        out: PathBuf::from("."),
        quick: false,
        seed: 0xBE9C,
        reps: 0, // resolved after --quick is known
        workers: vec![1, 2, 4, 8],
    };
    let mut reps: Option<usize> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value\n{USAGE}"))
        };
        match arg.as_str() {
            "--out" => opts.out = PathBuf::from(value("--out")?),
            "--quick" => opts.quick = true,
            "--seed" => {
                opts.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--reps" => {
                reps = Some(
                    value("--reps")?
                        .parse()
                        .map_err(|e| format!("--reps: {e}"))?,
                )
            }
            "--workers" => {
                opts.workers = value("--workers")?
                    .split(',')
                    .map(|w| w.trim().parse().map_err(|e| format!("--workers: {e}")))
                    .collect::<Result<_, _>>()?
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}\n{USAGE}")),
        }
    }
    if opts.workers.is_empty() || opts.workers.contains(&0) {
        return Err("--workers needs a non-empty list of positive counts".to_string());
    }
    opts.reps = reps.unwrap_or(if opts.quick { 4096 } else { 65536 });
    if opts.reps == 0 {
        return Err("--reps must be positive".to_string());
    }
    Ok(opts)
}

/// Times `f` once. The single `Instant` touchpoint of the harness —
/// wall-clock is inherently nondeterministic, which is the point of a
/// benchmark; everything the timer wraps stays seeded and bit-stable.
fn time_once<F: FnMut()>(mut f: F) -> f64 {
    let start = Instant::now();
    f();
    start.elapsed().as_secs_f64()
}

/// Best (minimum) wall-clock of `repeats` timed runs of `f` after one
/// untimed warmup, in seconds. The minimum is the standard throughput
/// estimator under one-sided scheduler/throttling noise: every
/// disturbance only ever makes a run slower.
fn time_best<F: FnMut()>(repeats: usize, mut f: F) -> f64 {
    f(); // warmup: page in code and data before measuring
    (0..repeats)
        .map(|_| time_once(&mut f))
        .fold(f64::INFINITY, f64::min)
}

fn platform(nodes: u64) -> PlatformParams {
    PlatformParams::new(0.0, 2.0, 4.0, 10.0, nodes).expect("benchmark platform params are valid")
}

fn estimates_bit_identical(a: &WasteEstimate, b: &WasteEstimate) -> bool {
    a.completed == b.completed
        && a.fatal == b.fatal
        && a.truncated == b.truncated
        && a.waste.mean().to_bits() == b.waste.mean().to_bits()
        && a.waste.variance().to_bits() == b.waste.variance().to_bits()
        && a.failures.mean().to_bits() == b.failures.mean().to_bits()
}

/// Replication-throughput report: the `dck simulate` workload shape
/// (optimal period resolved from the model, so the reference path pays
/// that resolution per replication while the fast path amortizes it
/// per chunk).
fn bench_reps(opts: &Options) -> Result<BenchReport, String> {
    let nodes = 64;
    let mtbf = 1800.0;
    let phi_ratio = 0.5;
    let work_in_mtbfs = 4.0;
    let params = platform(nodes);
    let run_cfg = RunConfig::new(
        Protocol::DoubleNbl,
        params,
        phi_ratio * params.theta_min,
        mtbf,
    );
    let t_base = work_in_mtbfs * mtbf;
    let repeats = if opts.quick { 3 } else { 5 };

    let mc_at = |workers: usize| {
        let mut mc = MonteCarloConfig::new(opts.reps, opts.seed);
        mc.workers = workers;
        mc
    };
    // Parity check first: the two paths must agree bit-for-bit or the
    // speedup below compares different computations.
    let fast = estimate_waste(&run_cfg, t_base, &mc_at(1)).map_err(|e| e.to_string())?;
    let reference =
        estimate_waste_reference(&run_cfg, t_base, &mc_at(1)).map_err(|e| e.to_string())?;
    let identical = estimates_bit_identical(&fast, &reference);

    let mut series = Vec::new();
    for &workers in &opts.workers {
        let mc = mc_at(workers);
        for (label, use_fast) in [("fast", true), ("reference", false)] {
            let elapsed = time_best(repeats, || {
                let result = if use_fast {
                    estimate_waste(&run_cfg, t_base, &mc)
                } else {
                    estimate_waste_reference(&run_cfg, t_base, &mc)
                };
                result.expect("benchmark configuration is valid");
            });
            let reps_per_sec = opts.reps as f64 / elapsed;
            eprintln!("reps  {label:>9} workers={workers}: {reps_per_sec:>12.0} reps/s");
            series.push(BenchSeries {
                label: label.to_string(),
                workers,
                replications: opts.reps,
                elapsed_s: elapsed,
                reps_per_sec,
            });
        }
    }

    let max_workers = *opts.workers.iter().max().expect("workers is non-empty");
    let throughput = |label: &str, workers: usize| {
        series
            .iter()
            .find(|s| s.label == label && s.workers == workers)
            .map(|s| s.reps_per_sec)
    };
    let speedup = match (
        throughput("fast", max_workers),
        throughput("reference", max_workers),
    ) {
        (Some(f), Some(r)) => Some(f / r),
        _ => None,
    };
    let scaling = match (
        throughput("fast", max_workers),
        throughput("fast", *opts.workers.iter().min().expect("non-empty")),
    ) {
        (Some(hi), Some(lo)) => Some(hi / lo),
        _ => None,
    };

    Ok(BenchReport {
        schema: SCHEMA.to_string(),
        kind: BenchKind::Replications,
        config: BenchConfig {
            protocol: Protocol::DoubleNbl.to_string(),
            nodes,
            mtbf_s: vec![mtbf],
            phi_ratio: vec![phi_ratio],
            work_in_mtbfs,
            replications: opts.reps,
            seed: opts.seed,
            quick: opts.quick,
        },
        series,
        summary: BenchSummary {
            max_workers,
            speedup_fast_vs_reference_at_max_workers: speedup,
            scaling_max_vs_one_worker: scaling,
            estimates_bit_identical: Some(identical),
        },
    })
}

/// Sweep wall-clock report over a small φ × MTBF grid.
fn bench_sweep(opts: &Options) -> Result<BenchReport, String> {
    let nodes = 64;
    let phi_ratios = vec![0.0, 0.5, 1.0];
    let mtbfs = vec![900.0, 1800.0, 3600.0];
    let per_cell = if opts.quick { 32 } else { 256 };
    let work_in_mtbfs = 4.0;
    let repeats = if opts.quick { 3 } else { 5 };

    let mut series = Vec::new();
    for &workers in &opts.workers {
        let mut spec = SweepSpec::new(
            Protocol::DoubleNbl,
            platform(nodes),
            phi_ratios.clone(),
            mtbfs.clone(),
        );
        spec.replications = per_cell;
        spec.work_in_mtbfs = work_in_mtbfs;
        spec.seed = opts.seed;
        spec.workers = workers;
        let mut total_reps = 0usize;
        let elapsed = time_best(repeats, || {
            let result = run_sweep(&spec).expect("benchmark sweep spec is valid");
            total_reps = result.total_replications_run();
        });
        let reps_per_sec = total_reps as f64 / elapsed;
        eprintln!("sweep workers={workers}: {elapsed:>8.3} s wall, {reps_per_sec:>12.0} reps/s");
        series.push(BenchSeries {
            label: "sweep".to_string(),
            workers,
            replications: total_reps,
            elapsed_s: elapsed,
            reps_per_sec,
        });
    }

    let max_workers = *opts.workers.iter().max().expect("workers is non-empty");
    let min_workers = *opts.workers.iter().min().expect("workers is non-empty");
    let tp = |workers: usize| {
        series
            .iter()
            .find(|s| s.workers == workers)
            .map(|s| s.reps_per_sec)
    };
    let scaling = match (tp(max_workers), tp(min_workers)) {
        (Some(hi), Some(lo)) => Some(hi / lo),
        _ => None,
    };

    Ok(BenchReport {
        schema: SCHEMA.to_string(),
        kind: BenchKind::Sweep,
        config: BenchConfig {
            protocol: Protocol::DoubleNbl.to_string(),
            nodes,
            mtbf_s: mtbfs,
            phi_ratio: phi_ratios,
            work_in_mtbfs,
            replications: per_cell,
            seed: opts.seed,
            quick: opts.quick,
        },
        series,
        summary: BenchSummary {
            max_workers,
            speedup_fast_vs_reference_at_max_workers: None,
            scaling_max_vs_one_worker: scaling,
            estimates_bit_identical: None,
        },
    })
}

fn write_report(dir: &Path, name: &str, report: &BenchReport) -> Result<(), String> {
    report.validate().map_err(|e| format!("{name}: {e}"))?;
    let json = report.to_json().map_err(|e| format!("{name}: {e}"))?;
    let dest = dir.join(name);
    fsio::atomic_write(&dest, json.as_bytes()).map_err(|e| format!("{}: {e}", dest.display()))?;
    println!("wrote {}", dest.display());
    Ok(())
}

fn run() -> Result<(), String> {
    let opts = parse_args()?;
    std::fs::create_dir_all(&opts.out)
        .map_err(|e| format!("creating {}: {e}", opts.out.display()))?;

    let reps = bench_reps(&opts)?;
    if let Some(speedup) = reps.summary.speedup_fast_vs_reference_at_max_workers {
        println!(
            "fast path speedup vs reference @ {} workers: {speedup:.2}x",
            reps.summary.max_workers
        );
    }
    write_report(&opts.out, "BENCH_reps.json", &reps)?;

    let sweep = bench_sweep(&opts)?;
    write_report(&opts.out, "BENCH_sweep.json", &sweep)?;
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("dck-bench: {e}");
            ExitCode::FAILURE
        }
    }
}
