//! # dck-bench — Criterion benchmark harness
//!
//! The benches live in `benches/`, one target per paper artifact plus
//! kernel microbenchmarks and design ablations:
//!
//! | Target | Regenerates / measures |
//! |---|---|
//! | `table1` | Table I |
//! | `fig4_waste_base`, `fig7_waste_exa` | Figures 4 / 7 waste surfaces |
//! | `fig5_ratio_base`, `fig8_ratio_exa` | Figures 5 / 8 waste ratios |
//! | `fig6_risk_base`, `fig9_risk_exa` | Figures 6 / 9 risk surfaces |
//! | `validate_model_vs_sim` | V1 Monte-Carlo validation throughput |
//! | `period_check` | V2 closed-form vs golden-section optimizer |
//! | `extensions` | E3 φ*-tuning, E4 hierarchical K*, E5 refined waste |
//! | `kernel` | event queue vs sorted-Vec ablation, aggregated vs renewal failure sources, single-run throughput, Monte-Carlo worker scaling, parallel map |
//!
//! Each figure bench prints its headline series once, so `cargo bench`
//! output doubles as a quick reproduction record.
//!
//! Besides the Criterion targets, the crate ships the `dck-bench`
//! binary — the tracked perf-trajectory harness. It writes
//! `BENCH_reps.json` / `BENCH_sweep.json` artifacts conforming to the
//! schema in [`report`], validated by `dck validate --bench` and
//! uploaded by the `bench-smoke` CI job.

#![forbid(unsafe_code)]

pub mod adapt_report;
pub mod report;
pub mod serve_report;

pub use adapt_report::{
    AdaptBenchConfig, AdaptReport, AdaptScenarioReport, AdaptSummary, ADAPT_SCHEMA,
    DEFAULT_STATIONARY_TOLERANCE,
};
pub use report::{BenchConfig, BenchKind, BenchReport, BenchSeries, BenchSummary, SCHEMA};
pub use serve_report::{
    latency_ladder, nearest_rank, ServeBenchConfig, ServeBenchReport, ServeLatency,
    LATENCY_LADDER_PERMILLE, SERVE_SCHEMA,
};
