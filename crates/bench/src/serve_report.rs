//! `BENCH_serve.json` report schema for the `dck loadgen` harness.
//!
//! `dck serve` turns the model into a service; `dck loadgen` measures
//! that service under load and writes one of these artifacts so
//! serving throughput and tail latency join the perf trajectory that
//! CI tracks. `dck validate --bench` sniffs the `schema` field to tell
//! this report apart from the harness [`crate::report`] artifacts.
//!
//! Percentiles are computed from the *raw* latency samples (nearest-
//! rank on the sorted set), not from the `dck-obs` histogram — its
//! power-of-two buckets are too coarse for a meaningful p999. The
//! histogram still receives every sample, so an obs snapshot and this
//! report can be cross-checked.

use serde::{Deserialize, Serialize};

/// Schema tag carried by every serve report.
pub const SERVE_SCHEMA: &str = "dck-bench/serve-v1";

/// The load shape a serve report was measured under.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeBenchConfig {
    /// Server address targeted.
    pub addr: String,
    /// Client threads.
    pub threads: usize,
    /// Connections per thread (total connections = threads × this).
    pub concurrency: usize,
    /// Requested run duration, seconds.
    pub duration_s: f64,
    /// Seed of the deterministic request mix.
    pub seed: u64,
    /// Methods exercised by the mix, in rotation order.
    pub methods: Vec<String>,
}

/// Latency percentiles over all successful requests, microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServeLatency {
    /// Median.
    pub p50_us: u64,
    /// 90th percentile.
    pub p90_us: u64,
    /// 99th percentile.
    pub p99_us: u64,
    /// 99.9th percentile.
    pub p999_us: u64,
    /// Slowest observed request.
    pub max_us: u64,
    /// Arithmetic mean.
    pub mean_us: f64,
}

/// A complete `BENCH_serve.json` artifact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeBenchReport {
    /// Schema tag; always [`SERVE_SCHEMA`].
    pub schema: String,
    /// Load shape.
    pub config: ServeBenchConfig,
    /// Wall-clock actually spent driving load, seconds.
    pub elapsed_s: f64,
    /// Requests that received an `ok` response.
    pub ok_requests: u64,
    /// Requests that received an `err` response or no parseable
    /// response at all (protocol errors — the smoke test requires 0).
    pub errors: u64,
    /// Successful requests per second of elapsed time.
    pub req_per_sec: f64,
    /// Latency distribution of successful requests.
    pub latency: ServeLatency,
}

impl ServeBenchReport {
    /// Serializes the report as pretty JSON with a trailing newline.
    ///
    /// # Errors
    /// Propagates serializer errors ([`ServeBenchReport::validate`]
    /// rejects the non-finite floats that could cause them).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self).map(|mut s| {
            s.push('\n');
            s
        })
    }

    /// Parses a report from JSON.
    ///
    /// # Errors
    /// Propagates parse errors.
    pub fn from_json(text: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(text)
    }

    /// Checks the report for internal consistency: schema tag, a
    /// non-empty load shape, at least one successful request, positive
    /// finite timings/throughput, and monotone percentiles.
    ///
    /// # Errors
    /// Returns a human-readable description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.schema != SERVE_SCHEMA {
            return Err(format!(
                "schema {:?} is not the expected {SERVE_SCHEMA:?}",
                self.schema
            ));
        }
        if self.config.threads == 0 || self.config.concurrency == 0 {
            return Err("load shape has zero client connections".to_string());
        }
        if self.config.methods.is_empty() {
            return Err("request mix exercises no methods".to_string());
        }
        if !(self.config.duration_s.is_finite() && self.config.duration_s > 0.0) {
            return Err(format!(
                "duration {} not a positive finite time",
                self.config.duration_s
            ));
        }
        if self.ok_requests == 0 {
            return Err("no request succeeded — the measurement is vacuous".to_string());
        }
        if !(self.elapsed_s.is_finite() && self.elapsed_s > 0.0) {
            return Err(format!(
                "elapsed {} not a positive finite time",
                self.elapsed_s
            ));
        }
        if !(self.req_per_sec.is_finite() && self.req_per_sec > 0.0) {
            return Err(format!(
                "throughput {} not positive finite",
                self.req_per_sec
            ));
        }
        let l = &self.latency;
        let ladder = [
            ("p50", l.p50_us),
            ("p90", l.p90_us),
            ("p99", l.p99_us),
            ("p999", l.p999_us),
            ("max", l.max_us),
        ];
        for pair in ladder.windows(2) {
            let (lo_name, lo) = pair[0];
            let (hi_name, hi) = pair[1];
            if lo > hi {
                return Err(format!(
                    "latency {lo_name} ({lo}us) exceeds {hi_name} ({hi}us) — percentiles must be monotone"
                ));
            }
        }
        if !(l.mean_us.is_finite() && l.mean_us > 0.0) {
            return Err(format!("mean latency {} not positive finite", l.mean_us));
        }
        if l.mean_us > l.max_us as f64 {
            return Err(format!(
                "mean latency {}us exceeds max {}us",
                l.mean_us, l.max_us
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ServeBenchReport {
        ServeBenchReport {
            schema: SERVE_SCHEMA.to_string(),
            config: ServeBenchConfig {
                addr: "127.0.0.1:4717".to_string(),
                threads: 2,
                concurrency: 2,
                duration_s: 2.0,
                seed: 0x10ad,
                methods: vec![
                    "waste".to_string(),
                    "risk".to_string(),
                    "pstar".to_string(),
                    "sweep_cell".to_string(),
                ],
            },
            elapsed_s: 2.01,
            ok_requests: 12_345,
            errors: 0,
            req_per_sec: 6_141.8,
            latency: ServeLatency {
                p50_us: 110,
                p90_us: 240,
                p99_us: 900,
                p999_us: 2_400,
                max_us: 5_100,
                mean_us: 151.2,
            },
        }
    }

    #[test]
    fn sample_round_trips_and_validates() {
        let r = sample();
        r.validate().unwrap();
        let json = r.to_json().unwrap();
        let back = ServeBenchReport::from_json(&json).unwrap();
        assert_eq!(back, r);
        back.validate().unwrap();
    }

    #[test]
    fn validation_catches_schema_and_monotonicity_violations() {
        let mut r = sample();
        r.schema = "dck-bench/v1".to_string();
        assert!(r.validate().unwrap_err().contains("schema"));

        let mut r = sample();
        r.latency.p99_us = r.latency.p90_us - 1;
        assert!(r.validate().unwrap_err().contains("monotone"));

        let mut r = sample();
        r.ok_requests = 0;
        assert!(r.validate().unwrap_err().contains("vacuous"));

        let mut r = sample();
        r.req_per_sec = -1.0;
        assert!(r.validate().unwrap_err().contains("throughput"));

        let mut r = sample();
        r.config.methods.clear();
        assert!(r.validate().unwrap_err().contains("methods"));
    }
}
