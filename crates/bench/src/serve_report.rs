//! `BENCH_serve.json` report schema for the `dck loadgen` harness.
//!
//! `dck serve` turns the model into a service; `dck loadgen` measures
//! that service under load and writes one of these artifacts so
//! serving throughput and tail latency join the perf trajectory that
//! CI tracks. `dck validate --bench` sniffs the `schema` field to tell
//! this report apart from the harness [`crate::report`] artifacts.
//!
//! Percentiles are computed from the *raw* latency samples (nearest-
//! rank on the sorted set), not from the `dck-obs` histogram — its
//! power-of-two buckets are too coarse for a meaningful p999. The
//! histogram still receives every sample, so an obs snapshot and this
//! report can be cross-checked.

use serde::{Deserialize, Serialize};

/// Schema tag carried by every serve report.
pub const SERVE_SCHEMA: &str = "dck-bench/serve-v1";

/// The permille ranks of the report's latency ladder, ascending:
/// p50, p90, p99, p999.
pub const LATENCY_LADDER_PERMILLE: [u32; 4] = [500, 900, 990, 999];

/// Nearest-rank percentile at `permille`/1000 on an ascending-sorted
/// sample set, in exact integer arithmetic.
///
/// The rank is `ceil(n·q)` per the nearest-rank definition. Computing
/// it as `(q * n as f64).ceil()` is wrong at small and awkward sample
/// counts: `0.999 × 3000 = 2997.0000000000005` in binary floating
/// point, which ceils to 2998 — one rank past the true p999 — and the
/// same overshoot can select ranks past the end of the sample set.
/// `(n·permille).div_ceil(1000)` is exact; the result is clamped to
/// `[1, n]` so any permille in `[0, 1000]` lands on a real sample (the
/// clamp to `n` keeps out-of-range requests on the max sample).
pub fn nearest_rank(sorted: &[u64], permille: u32) -> u64 {
    let n = sorted.len();
    if n == 0 {
        return 0;
    }
    let rank = ((n as u128 * permille as u128).div_ceil(1000) as usize).clamp(1, n);
    sorted[rank - 1]
}

/// The full [`ServeLatency`] ladder of an ascending-sorted sample set
/// via [`nearest_rank`], so every producer shares one rank formula.
///
/// Returns `None` on an empty sample set (a vacuous measurement has no
/// latency distribution — [`ServeBenchReport::validate`] rejects it
/// anyway).
pub fn latency_ladder(sorted: &[u64]) -> Option<ServeLatency> {
    let last = *sorted.last()?;
    let mean_us = sorted.iter().map(|&x| x as f64).sum::<f64>() / sorted.len() as f64;
    let [p50, p90, p99, p999] = LATENCY_LADDER_PERMILLE.map(|pm| nearest_rank(sorted, pm));
    Some(ServeLatency {
        p50_us: p50,
        p90_us: p90,
        p99_us: p99,
        p999_us: p999,
        max_us: last,
        mean_us,
    })
}

/// The load shape a serve report was measured under.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeBenchConfig {
    /// Server address targeted.
    pub addr: String,
    /// Client threads.
    pub threads: usize,
    /// Connections per thread (total connections = threads × this).
    pub concurrency: usize,
    /// Requested run duration, seconds.
    pub duration_s: f64,
    /// Seed of the deterministic request mix.
    pub seed: u64,
    /// Methods exercised by the mix, in rotation order.
    pub methods: Vec<String>,
}

/// Latency percentiles over all successful requests, microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServeLatency {
    /// Median.
    pub p50_us: u64,
    /// 90th percentile.
    pub p90_us: u64,
    /// 99th percentile.
    pub p99_us: u64,
    /// 99.9th percentile.
    pub p999_us: u64,
    /// Slowest observed request.
    pub max_us: u64,
    /// Arithmetic mean.
    pub mean_us: f64,
}

/// A complete `BENCH_serve.json` artifact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeBenchReport {
    /// Schema tag; always [`SERVE_SCHEMA`].
    pub schema: String,
    /// Load shape.
    pub config: ServeBenchConfig,
    /// Wall-clock actually spent driving load, seconds.
    pub elapsed_s: f64,
    /// Requests that received an `ok` response.
    pub ok_requests: u64,
    /// Requests that received an `err` response or no parseable
    /// response at all (protocol errors — the smoke test requires 0).
    pub errors: u64,
    /// Successful requests per second of elapsed time.
    pub req_per_sec: f64,
    /// Latency distribution of successful requests.
    pub latency: ServeLatency,
}

impl ServeBenchReport {
    /// Serializes the report as pretty JSON with a trailing newline.
    ///
    /// # Errors
    /// Propagates serializer errors ([`ServeBenchReport::validate`]
    /// rejects the non-finite floats that could cause them).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self).map(|mut s| {
            s.push('\n');
            s
        })
    }

    /// Parses a report from JSON.
    ///
    /// # Errors
    /// Propagates parse errors.
    pub fn from_json(text: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(text)
    }

    /// Checks the report for internal consistency: schema tag, a
    /// non-empty load shape, at least one successful request, positive
    /// finite timings/throughput, and monotone percentiles.
    ///
    /// # Errors
    /// Returns a human-readable description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.schema != SERVE_SCHEMA {
            return Err(format!(
                "schema {:?} is not the expected {SERVE_SCHEMA:?}",
                self.schema
            ));
        }
        if self.config.threads == 0 || self.config.concurrency == 0 {
            return Err("load shape has zero client connections".to_string());
        }
        if self.config.methods.is_empty() {
            return Err("request mix exercises no methods".to_string());
        }
        if !(self.config.duration_s.is_finite() && self.config.duration_s > 0.0) {
            return Err(format!(
                "duration {} not a positive finite time",
                self.config.duration_s
            ));
        }
        if self.ok_requests == 0 {
            return Err("no request succeeded — the measurement is vacuous".to_string());
        }
        if !(self.elapsed_s.is_finite() && self.elapsed_s > 0.0) {
            return Err(format!(
                "elapsed {} not a positive finite time",
                self.elapsed_s
            ));
        }
        if !(self.req_per_sec.is_finite() && self.req_per_sec > 0.0) {
            return Err(format!(
                "throughput {} not positive finite",
                self.req_per_sec
            ));
        }
        let l = &self.latency;
        let ladder = [
            ("p50", l.p50_us),
            ("p90", l.p90_us),
            ("p99", l.p99_us),
            ("p999", l.p999_us),
            ("max", l.max_us),
        ];
        for pair in ladder.windows(2) {
            let (lo_name, lo) = pair[0];
            let (hi_name, hi) = pair[1];
            if lo > hi {
                return Err(format!(
                    "latency {lo_name} ({lo}us) exceeds {hi_name} ({hi}us) — percentiles must be monotone"
                ));
            }
        }
        // Every rung must be a real sample: measured latencies are
        // clamped to >= 1us at the source, so a 0 means the rank
        // formula walked off the sample set (the float-ceil bug) or the
        // ladder was fabricated.
        for (name, v) in ladder {
            if v == 0 {
                return Err(format!(
                    "latency {name} is 0us — below the 1us measurement floor, not a real sample"
                ));
            }
        }
        if !(l.mean_us.is_finite() && l.mean_us > 0.0) {
            return Err(format!("mean latency {} not positive finite", l.mean_us));
        }
        if l.mean_us > l.max_us as f64 {
            return Err(format!(
                "mean latency {}us exceeds max {}us",
                l.mean_us, l.max_us
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ServeBenchReport {
        ServeBenchReport {
            schema: SERVE_SCHEMA.to_string(),
            config: ServeBenchConfig {
                addr: "127.0.0.1:4717".to_string(),
                threads: 2,
                concurrency: 2,
                duration_s: 2.0,
                seed: 0x10ad,
                methods: vec![
                    "waste".to_string(),
                    "risk".to_string(),
                    "pstar".to_string(),
                    "sweep_cell".to_string(),
                ],
            },
            elapsed_s: 2.01,
            ok_requests: 12_345,
            errors: 0,
            req_per_sec: 6_141.8,
            latency: ServeLatency {
                p50_us: 110,
                p90_us: 240,
                p99_us: 900,
                p999_us: 2_400,
                max_us: 5_100,
                mean_us: 151.2,
            },
        }
    }

    #[test]
    fn sample_round_trips_and_validates() {
        let r = sample();
        r.validate().unwrap();
        let json = r.to_json().unwrap();
        let back = ServeBenchReport::from_json(&json).unwrap();
        assert_eq!(back, r);
        back.validate().unwrap();
    }

    #[test]
    fn validation_catches_schema_and_monotonicity_violations() {
        let mut r = sample();
        r.schema = "dck-bench/v1".to_string();
        assert!(r.validate().unwrap_err().contains("schema"));

        let mut r = sample();
        r.latency.p99_us = r.latency.p90_us - 1;
        assert!(r.validate().unwrap_err().contains("monotone"));

        let mut r = sample();
        r.ok_requests = 0;
        assert!(r.validate().unwrap_err().contains("vacuous"));

        let mut r = sample();
        r.req_per_sec = -1.0;
        assert!(r.validate().unwrap_err().contains("throughput"));

        let mut r = sample();
        r.config.methods.clear();
        assert!(r.validate().unwrap_err().contains("methods"));

        let mut r = sample();
        r.latency.p50_us = 0;
        r.latency.p90_us = 0;
        r.latency.p99_us = 0;
        r.latency.p999_us = 0;
        r.latency.max_us = 0;
        r.latency.mean_us = 0.5;
        assert!(r.validate().unwrap_err().contains("measurement floor"));
    }

    // --- nearest-rank golden cases -----------------------------------
    //
    // These pin the exact-integer rank formula at the sample counts
    // where the old `(q * n as f64).ceil()` implementation went wrong.

    #[test]
    fn nearest_rank_small_n_goldens() {
        // n = 1: every percentile is the single sample.
        for pm in [0, 1, 500, 900, 990, 999, 1000] {
            assert_eq!(nearest_rank(&[7], pm), 7, "n=1 permille={pm}");
        }
        // n = 2: rank ceil(2q) — p50 is the first sample, p90+ the
        // second.
        let two = [10, 20];
        assert_eq!(nearest_rank(&two, 500), 10);
        assert_eq!(nearest_rank(&two, 900), 20);
        assert_eq!(nearest_rank(&two, 999), 20);
        // n = 5.
        let five = [1, 2, 3, 4, 5];
        assert_eq!(nearest_rank(&five, 500), 3); // ceil(2.5) = 3
        assert_eq!(nearest_rank(&five, 900), 5); // ceil(4.5) = 5
        assert_eq!(nearest_rank(&five, 990), 5);
        assert_eq!(nearest_rank(&five, 999), 5);
        // p999 with fewer than 1000 samples is always the max sample,
        // never out of range.
        for n in [1usize, 3, 10, 99, 999] {
            let xs: Vec<u64> = (1..=n as u64).collect();
            assert_eq!(nearest_rank(&xs, 999), n as u64, "n={n}");
        }
        // Degenerate permilles stay on real samples.
        assert_eq!(nearest_rank(&five, 0), 1, "rank clamps up to 1");
        assert_eq!(nearest_rank(&five, 1000), 5);
        assert_eq!(nearest_rank(&[], 500), 0, "empty set sentinel");
    }

    #[test]
    fn nearest_rank_is_exact_where_float_ceil_overshoots() {
        // 0.035 × 200 = 7.000000000000001 in f64: a float-ceil rank
        // formula ceils that to rank 8. The true nearest rank is
        // exactly 7 — integer arithmetic cannot overshoot.
        let overshot = ((0.035f64 * 200.0).ceil()) as usize;
        assert_eq!(overshot, 8, "the float formula really is off by one");
        let xs: Vec<u64> = (1..=200).collect();
        assert_eq!(nearest_rank(&xs, 35), 7);
        // Exhaustive agreement with the definition rank = ceil(n·q)
        // over every permille at a few awkward sample counts.
        for n in [1usize, 2, 3, 7, 200, 1000, 3000] {
            let xs: Vec<u64> = (1..=n as u64).collect();
            for pm in 1..=1000u32 {
                let exact = (n as u128 * pm as u128).div_ceil(1000) as u64;
                assert_eq!(nearest_rank(&xs, pm), exact, "n={n} pm={pm}");
            }
        }
    }

    #[test]
    fn latency_ladder_is_monotone_and_validates() {
        let xs: Vec<u64> = (1..=3000).collect();
        let l = latency_ladder(&xs).unwrap();
        assert_eq!(
            (l.p50_us, l.p90_us, l.p99_us, l.p999_us, l.max_us),
            (1500, 2700, 2970, 2997, 3000)
        );
        let mut r = sample();
        r.latency = l;
        r.validate().unwrap();
        assert!(latency_ladder(&[]).is_none());
    }
}
