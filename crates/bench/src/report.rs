//! `BENCH_*.json` report schema for the `dck-bench` harness.
//!
//! Every harness run writes two artifacts — `BENCH_reps.json`
//! (replications/sec of the Monte-Carlo inner loop, fast path vs the
//! boxed reference path, across worker counts) and `BENCH_sweep.json`
//! (sweep wall-clock and throughput across worker counts) — so the
//! perf trajectory of the hot path is tracked by CI rather than
//! anecdote. `dck validate --bench` checks files against this schema.

use serde::{Deserialize, Serialize};

/// Schema tag carried by every report (`BenchReport::SCHEMA`).
pub const SCHEMA: &str = "dck-bench/v1";

/// Which workload a report measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BenchKind {
    /// Monte-Carlo replication throughput of one operating point.
    Replications,
    /// Wall-clock of a full parameter sweep.
    Sweep,
}

/// The workload configuration a report was measured on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchConfig {
    /// Protocol name (display form).
    pub protocol: String,
    /// Platform node count.
    pub nodes: u64,
    /// Node MTBF in seconds (reps) / MTBF grid (sweep uses the list).
    pub mtbf_s: Vec<f64>,
    /// Checkpoint-cost ratio grid `phi / theta_min`.
    pub phi_ratio: Vec<f64>,
    /// Work per run, in multiples of the MTBF.
    pub work_in_mtbfs: f64,
    /// Replications per measurement (per cell for sweeps).
    pub replications: usize,
    /// Master seed.
    pub seed: u64,
    /// True when the harness ran with `--quick` (CI smoke grid).
    pub quick: bool,
}

/// One measured series: a labelled implementation at one worker count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchSeries {
    /// Implementation label (`"fast"`, `"reference"`, `"sweep"`).
    pub label: String,
    /// Worker threads used.
    pub workers: usize,
    /// Replications executed.
    pub replications: usize,
    /// Median wall-clock of the measured repeats, seconds.
    pub elapsed_s: f64,
    /// Throughput, replications per second.
    pub reps_per_sec: f64,
}

/// Headline numbers derived from the series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchSummary {
    /// Largest worker count measured.
    pub max_workers: usize,
    /// `fast` throughput over `reference` throughput at `max_workers`
    /// (replication reports only).
    pub speedup_fast_vs_reference_at_max_workers: Option<f64>,
    /// `fast` (or sweep) throughput at `max_workers` over one worker.
    pub scaling_max_vs_one_worker: Option<f64>,
    /// Whether the fast and reference paths produced bit-identical
    /// estimates (replication reports only; must never be `false`).
    pub estimates_bit_identical: Option<bool>,
}

/// A complete `BENCH_*.json` artifact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchReport {
    /// Schema tag; always [`SCHEMA`].
    pub schema: String,
    /// Workload kind.
    pub kind: BenchKind,
    /// Workload configuration.
    pub config: BenchConfig,
    /// Measured series, one per (label, workers) pair.
    pub series: Vec<BenchSeries>,
    /// Derived headline numbers.
    pub summary: BenchSummary,
}

impl BenchReport {
    /// Serializes the report as pretty JSON with a trailing newline.
    ///
    /// # Errors
    /// Propagates serializer errors (unbounded floats would be the only
    /// realistic cause; [`BenchReport::validate`] rejects them first).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self).map(|mut s| {
            s.push('\n');
            s
        })
    }

    /// Parses a report from JSON.
    ///
    /// # Errors
    /// Propagates parse errors.
    pub fn from_json(text: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(text)
    }

    /// Checks the report for internal consistency: schema tag, at
    /// least one series, positive finite timings and throughputs,
    /// summary agreeing with the series, and — for replication
    /// reports — fast/reference estimate parity.
    ///
    /// # Errors
    /// Returns a human-readable description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.schema != SCHEMA {
            return Err(format!(
                "schema {:?} is not the expected {SCHEMA:?}",
                self.schema
            ));
        }
        if self.series.is_empty() {
            return Err("report contains no series".to_string());
        }
        for s in &self.series {
            if s.workers == 0 {
                return Err(format!("series {:?}: zero workers", s.label));
            }
            if s.replications == 0 {
                return Err(format!("series {:?}: zero replications", s.label));
            }
            if !(s.elapsed_s.is_finite() && s.elapsed_s > 0.0) {
                return Err(format!(
                    "series {:?} @ {} workers: elapsed {} not a positive finite time",
                    s.label, s.workers, s.elapsed_s
                ));
            }
            if !(s.reps_per_sec.is_finite() && s.reps_per_sec > 0.0) {
                return Err(format!(
                    "series {:?} @ {} workers: throughput {} not positive finite",
                    s.label, s.workers, s.reps_per_sec
                ));
            }
        }
        let max_workers = self.series.iter().map(|s| s.workers).max().unwrap_or(0);
        if self.summary.max_workers != max_workers {
            return Err(format!(
                "summary.max_workers {} disagrees with series maximum {max_workers}",
                self.summary.max_workers
            ));
        }
        for (name, v) in [
            (
                "speedup_fast_vs_reference_at_max_workers",
                self.summary.speedup_fast_vs_reference_at_max_workers,
            ),
            (
                "scaling_max_vs_one_worker",
                self.summary.scaling_max_vs_one_worker,
            ),
        ] {
            if let Some(x) = v {
                if !(x.is_finite() && x > 0.0) {
                    return Err(format!("summary.{name} {x} not positive finite"));
                }
            }
        }
        if self.kind == BenchKind::Replications {
            if self.summary.estimates_bit_identical == Some(false) {
                return Err(
                    "fast and reference estimator paths disagree (estimates_bit_identical = false)"
                        .to_string(),
                );
            }
            if self
                .summary
                .speedup_fast_vs_reference_at_max_workers
                .is_none()
            {
                return Err("replication report is missing its fast-vs-reference speedup".into());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchReport {
        BenchReport {
            schema: SCHEMA.to_string(),
            kind: BenchKind::Replications,
            config: BenchConfig {
                protocol: "double-nbl".to_string(),
                nodes: 64,
                mtbf_s: vec![1800.0],
                phi_ratio: vec![0.5],
                work_in_mtbfs: 4.0,
                replications: 1024,
                seed: 7,
                quick: true,
            },
            series: vec![
                BenchSeries {
                    label: "fast".to_string(),
                    workers: 1,
                    replications: 1024,
                    elapsed_s: 0.5,
                    reps_per_sec: 2048.0,
                },
                BenchSeries {
                    label: "reference".to_string(),
                    workers: 8,
                    replications: 1024,
                    elapsed_s: 1.0,
                    reps_per_sec: 1024.0,
                },
            ],
            summary: BenchSummary {
                max_workers: 8,
                speedup_fast_vs_reference_at_max_workers: Some(2.0),
                scaling_max_vs_one_worker: Some(1.5),
                estimates_bit_identical: Some(true),
            },
        }
    }

    #[test]
    fn valid_report_round_trips() {
        let r = sample();
        r.validate().unwrap();
        let json = r.to_json().unwrap();
        let back = BenchReport::from_json(&json).unwrap();
        assert_eq!(back, r);
        back.validate().unwrap();
    }

    #[test]
    fn validation_rejects_defects() {
        let mut r = sample();
        r.schema = "dck-bench/v0".to_string();
        assert!(r.validate().is_err());

        let mut r = sample();
        r.series.clear();
        assert!(r.validate().is_err());

        let mut r = sample();
        r.series[0].elapsed_s = 0.0;
        assert!(r.validate().is_err());

        let mut r = sample();
        r.series[0].reps_per_sec = f64::NAN;
        assert!(r.validate().is_err());

        let mut r = sample();
        r.summary.max_workers = 4;
        assert!(r.validate().is_err());

        let mut r = sample();
        r.summary.estimates_bit_identical = Some(false);
        assert!(r.validate().is_err());

        let mut r = sample();
        r.summary.speedup_fast_vs_reference_at_max_workers = None;
        assert!(r.validate().is_err());

        // Sweep reports need no speedup entry.
        let mut r = sample();
        r.kind = BenchKind::Sweep;
        r.summary.speedup_fast_vs_reference_at_max_workers = None;
        r.summary.estimates_bit_identical = None;
        r.validate().unwrap();
    }
}
