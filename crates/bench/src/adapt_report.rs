//! `BENCH_adapt.json` — the adaptive-controller regret artifact.
//!
//! The regret harness ([`dck_sim::run_regret`]) measures how much
//! waste the online controller gives up against a clairvoyant static
//! tuning, and how much it recovers against a misspecified one. This
//! module freezes those numbers into a schema-tagged artifact with the
//! acceptance gates *inside* `validate()`:
//!
//! - every **stationary** scenario's regret ratio must sit within the
//!   configured tolerance of the oracle (the ISSUE gate is 10%), and
//! - every **drift** scenario must strictly beat the static arm that
//!   trusts the nameplate MTBF forever.
//!
//! `dck validate --bench BENCH_adapt.json` re-checks all of this from
//! the file alone, so CI needs no knowledge of the harness.

use dck_sim::{RegretResult, RegretScenario};
use serde::{Deserialize, Serialize};

/// Schema tag carried by every adapt report.
pub const ADAPT_SCHEMA: &str = "dck-adapt/v1";

/// The harness configuration the report was produced under.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaptBenchConfig {
    /// Protocol name (display form).
    pub protocol: String,
    /// Platform nodes.
    pub nodes: u64,
    /// True platform MTBF at time 0 (seconds).
    pub true_mtbf_s: f64,
    /// Overhead ratio `φ/θmin`.
    pub phi_ratio: f64,
    /// Useful work per replication in multiples of the true MTBF.
    pub work_in_mtbfs: f64,
    /// Replications per arm per scenario.
    pub replications: usize,
    /// Master seed.
    pub seed: u64,
    /// Controller hysteresis dead band (relative MTBF change).
    pub hysteresis: f64,
    /// Minimum observed failures before the first retune.
    pub min_failures: u64,
    /// Estimator window half-life (seconds), if windowed.
    pub half_life_s: Option<f64>,
}

/// One scenario row: the three arms and the derived regret numbers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaptScenarioReport {
    /// Scenario name.
    pub name: String,
    /// Scenario family: `"misspecified"`, `"drift"` or `"predicted"`.
    pub kind: String,
    /// Misspecification factor (believed = factor × true), or the
    /// drift end factor.
    pub factor: f64,
    /// The nameplate MTBF the static/adaptive arms start from (s).
    pub believed_mtbf_s: f64,
    /// The clairvoyant planning MTBF (s).
    pub oracle_mtbf_s: f64,
    /// Period of the misspecified static arm (s).
    pub static_period_s: f64,
    /// Period of the oracle arm (s).
    pub oracle_period_s: f64,
    /// Mean waste of the adaptive arm over completed replications.
    pub adaptive_waste: f64,
    /// Mean waste of the misspecified static arm.
    pub static_waste: f64,
    /// Mean waste of the oracle arm.
    pub oracle_waste: f64,
    /// 95% CI half-width on the adaptive mean waste.
    pub adaptive_ci95: f64,
    /// Completed replications (adaptive arm).
    pub completed: usize,
    /// Fatal replications (adaptive arm).
    pub fatal: usize,
    /// Cap-truncated replications (adaptive arm).
    pub truncated: usize,
    /// `adaptive_waste − oracle_waste`.
    pub regret: f64,
    /// `regret / oracle_waste`.
    pub regret_ratio: f64,
    /// Whether the adaptive arm strictly beats the static arm.
    pub beats_static: bool,
    /// Mean retunes applied per adaptive replication.
    pub retunes_mean: f64,
}

/// Headline verdicts, recomputable from the scenario rows.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptSummary {
    /// The acceptance tolerance on stationary regret ratios.
    pub stationary_tolerance: f64,
    /// Worst regret ratio over the stationary (non-drift) scenarios.
    pub max_stationary_regret_ratio: f64,
    /// `max_stationary_regret_ratio <= stationary_tolerance`.
    pub stationary_within_tolerance: bool,
    /// Every drift scenario's adaptive arm beat its static arm.
    pub drift_beats_static: bool,
}

/// The full artifact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaptReport {
    /// Schema tag; always [`ADAPT_SCHEMA`].
    pub schema: String,
    /// Harness configuration.
    pub config: AdaptBenchConfig,
    /// One row per scenario.
    pub scenarios: Vec<AdaptScenarioReport>,
    /// Headline verdicts.
    pub summary: AdaptSummary,
}

/// The default acceptance tolerance on stationary regret (the ISSUE
/// gate: adaptive within 10% of the oracle's waste).
pub const DEFAULT_STATIONARY_TOLERANCE: f64 = 0.10;

fn scenario_row(r: &RegretResult) -> AdaptScenarioReport {
    let (kind, factor) = match r.scenario {
        RegretScenario::Misspecified { factor } => ("misspecified", factor),
        RegretScenario::Drift { end_factor } => ("drift", end_factor),
        RegretScenario::Predicted { factor, .. } => ("predicted", factor),
    };
    AdaptScenarioReport {
        name: r.name.clone(),
        kind: kind.to_string(),
        factor,
        believed_mtbf_s: r.believed_mtbf,
        oracle_mtbf_s: r.oracle_mtbf,
        static_period_s: r.static_period,
        oracle_period_s: r.oracle_period,
        adaptive_waste: r.adaptive.mean_waste,
        static_waste: r.static_arm.mean_waste,
        oracle_waste: r.oracle.mean_waste,
        adaptive_ci95: r.adaptive.ci95_half_width,
        completed: r.adaptive.completed,
        fatal: r.adaptive.fatal,
        truncated: r.adaptive.truncated,
        regret: r.regret,
        regret_ratio: r.regret_ratio,
        beats_static: r.beats_static,
        retunes_mean: r.retunes_mean,
    }
}

fn summarize(scenarios: &[AdaptScenarioReport], tolerance: f64) -> AdaptSummary {
    let max_stationary = scenarios
        .iter()
        .filter(|s| s.kind != "drift")
        .map(|s| s.regret_ratio)
        .fold(f64::NEG_INFINITY, f64::max);
    let max_stationary = if max_stationary.is_finite() {
        max_stationary
    } else {
        0.0
    };
    AdaptSummary {
        stationary_tolerance: tolerance,
        max_stationary_regret_ratio: max_stationary,
        stationary_within_tolerance: max_stationary <= tolerance,
        drift_beats_static: scenarios
            .iter()
            .filter(|s| s.kind == "drift")
            .all(|s| s.beats_static),
    }
}

impl AdaptReport {
    /// Builds a report from harness results.
    pub fn from_results(
        config: AdaptBenchConfig,
        results: &[RegretResult],
        tolerance: f64,
    ) -> AdaptReport {
        let scenarios: Vec<AdaptScenarioReport> = results.iter().map(scenario_row).collect();
        let summary = summarize(&scenarios, tolerance);
        AdaptReport {
            schema: ADAPT_SCHEMA.to_string(),
            config,
            scenarios,
            summary,
        }
    }

    /// Serializes as pretty JSON with a trailing newline.
    ///
    /// # Errors
    /// Propagates serializer errors.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self).map(|mut s| {
            s.push('\n');
            s
        })
    }

    /// Parses a report from JSON.
    ///
    /// # Errors
    /// Propagates parse errors.
    pub fn from_json(text: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(text)
    }

    /// Checks internal consistency and the acceptance gates: schema
    /// tag, well-formed rows (wastes are fractions, oracle never above
    /// the arms it bounds by more than noise allows, completions
    /// present), a summary that matches its rows, stationary regret
    /// within tolerance, and drift beating static.
    ///
    /// # Errors
    /// Returns a human-readable description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.schema != ADAPT_SCHEMA {
            return Err(format!(
                "schema {:?} is not the expected {ADAPT_SCHEMA:?}",
                self.schema
            ));
        }
        if self.scenarios.is_empty() {
            return Err("report contains no scenarios".to_string());
        }
        if !(self.summary.stationary_tolerance.is_finite()
            && self.summary.stationary_tolerance > 0.0)
        {
            return Err(format!(
                "stationary tolerance {} not positive finite",
                self.summary.stationary_tolerance
            ));
        }
        for s in &self.scenarios {
            if !matches!(s.kind.as_str(), "misspecified" | "drift" | "predicted") {
                return Err(format!("scenario {:?}: unknown kind {:?}", s.name, s.kind));
            }
            if s.completed == 0 {
                return Err(format!("scenario {:?}: no completed replications", s.name));
            }
            for (field, v) in [
                ("adaptive_waste", s.adaptive_waste),
                ("static_waste", s.static_waste),
                ("oracle_waste", s.oracle_waste),
            ] {
                if !(v.is_finite() && (0.0..1.0).contains(&v)) {
                    return Err(format!(
                        "scenario {:?}: {field} {v} is not a waste fraction in [0, 1)",
                        s.name
                    ));
                }
            }
            let regret = s.adaptive_waste - s.oracle_waste;
            if (s.regret - regret).abs() > 1e-9 {
                return Err(format!(
                    "scenario {:?}: regret {} disagrees with arms ({regret})",
                    s.name, s.regret
                ));
            }
        }
        let expect = summarize(&self.scenarios, self.summary.stationary_tolerance);
        if (expect.max_stationary_regret_ratio - self.summary.max_stationary_regret_ratio).abs()
            > 1e-9
            || expect.stationary_within_tolerance != self.summary.stationary_within_tolerance
            || expect.drift_beats_static != self.summary.drift_beats_static
        {
            return Err("summary disagrees with the scenario rows".to_string());
        }
        if !self.summary.stationary_within_tolerance {
            return Err(format!(
                "stationary regret ratio {:.4} exceeds the {:.2} tolerance",
                self.summary.max_stationary_regret_ratio, self.summary.stationary_tolerance
            ));
        }
        if !self.summary.drift_beats_static {
            return Err("a drift scenario's adaptive arm lost to the static arm".to_string());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> AdaptBenchConfig {
        AdaptBenchConfig {
            protocol: "double-nbl".into(),
            nodes: 16,
            true_mtbf_s: 3600.0,
            phi_ratio: 1.0,
            work_in_mtbfs: 80.0,
            replications: 24,
            seed: 7,
            hysteresis: 0.10,
            min_failures: 5,
            half_life_s: None,
        }
    }

    fn row(name: &str, kind: &str, adaptive: f64, stat: f64, oracle: f64) -> AdaptScenarioReport {
        AdaptScenarioReport {
            name: name.into(),
            kind: kind.into(),
            factor: 4.0,
            believed_mtbf_s: 14_400.0,
            oracle_mtbf_s: 3600.0,
            static_period_s: 600.0,
            oracle_period_s: 300.0,
            adaptive_waste: adaptive,
            static_waste: stat,
            oracle_waste: oracle,
            adaptive_ci95: 0.002,
            completed: 24,
            fatal: 0,
            truncated: 0,
            regret: adaptive - oracle,
            regret_ratio: (adaptive - oracle) / oracle,
            beats_static: adaptive < stat,
            retunes_mean: 2.5,
        }
    }

    fn report() -> AdaptReport {
        let scenarios = vec![
            row("over", "misspecified", 0.105, 0.13, 0.10),
            row("drifting", "drift", 0.14, 0.18, 0.13),
        ];
        let summary = summarize(&scenarios, DEFAULT_STATIONARY_TOLERANCE);
        AdaptReport {
            schema: ADAPT_SCHEMA.to_string(),
            config: config(),
            scenarios,
            summary,
        }
    }

    #[test]
    fn valid_report_round_trips() {
        let r = report();
        r.validate().unwrap();
        let json = r.to_json().unwrap();
        assert!(json.ends_with('\n'));
        let back = AdaptReport::from_json(&json).unwrap();
        assert_eq!(back, r);
        back.validate().unwrap();
    }

    #[test]
    fn schema_and_shape_violations_are_named() {
        let mut r = report();
        r.schema = "dck-adapt/v0".into();
        assert!(r.validate().unwrap_err().contains("schema"));

        let mut r = report();
        r.scenarios.clear();
        assert!(r.validate().unwrap_err().contains("no scenarios"));

        let mut r = report();
        r.scenarios[0].kind = "mystery".into();
        assert!(r.validate().unwrap_err().contains("unknown kind"));

        let mut r = report();
        r.scenarios[0].completed = 0;
        assert!(r.validate().unwrap_err().contains("completed"));

        let mut r = report();
        r.scenarios[0].adaptive_waste = 1.5;
        assert!(r.validate().unwrap_err().contains("waste fraction"));

        let mut r = report();
        r.scenarios[0].regret = 0.5;
        assert!(r.validate().unwrap_err().contains("disagrees with arms"));

        let mut r = report();
        r.summary.max_stationary_regret_ratio = 0.0;
        assert!(r.validate().unwrap_err().contains("summary disagrees"));
    }

    #[test]
    fn acceptance_gates_fail_closed() {
        // Stationary regret above tolerance.
        let mut r = report();
        r.scenarios[0].adaptive_waste = 0.12;
        r.scenarios[0].regret = 0.12 - 0.10;
        r.scenarios[0].regret_ratio = 0.2;
        r.summary = summarize(&r.scenarios, DEFAULT_STATIONARY_TOLERANCE);
        let err = r.validate().unwrap_err();
        assert!(err.contains("exceeds"), "{err}");

        // Drift losing to static.
        let mut r = report();
        r.scenarios[1].adaptive_waste = 0.19;
        r.scenarios[1].beats_static = false;
        r.scenarios[1].regret = 0.19 - 0.13;
        r.scenarios[1].regret_ratio = r.scenarios[1].regret / 0.13;
        r.summary = summarize(&r.scenarios, DEFAULT_STATIONARY_TOLERANCE);
        let err = r.validate().unwrap_err();
        assert!(err.contains("drift"), "{err}");
    }

    #[test]
    fn summary_ignores_drift_for_the_stationary_gate() {
        // A drift row with terrible regret ratio must not trip the
        // stationary tolerance — it is judged by beats_static instead.
        let scenarios = vec![
            row("over", "misspecified", 0.105, 0.13, 0.10),
            row("drifting", "drift", 0.16, 0.18, 0.10),
        ];
        let summary = summarize(&scenarios, DEFAULT_STATIONARY_TOLERANCE);
        assert!(summary.stationary_within_tolerance);
        assert!(summary.drift_beats_static);
    }
}
