//! F8 — waste ratios at M = 7 h, Exa scenario (Figure 8).

// criterion_group! expands to undocumented public items.
#![allow(missing_docs)]

use criterion::{criterion_group, criterion_main, Criterion};
use dck_core::Scenario;
use dck_experiments::waste_ratio;
use std::hint::black_box;

fn bench_fig8(c: &mut Criterion) {
    let scenario = Scenario::exa();
    let fig = waste_ratio::run(&scenario, 41).unwrap();
    println!("\nFigure 8 (Exa, M = 7h): waste relative to DOUBLENBL");
    println!("  phi/R | BoF/NBL | Triple/NBL");
    for p in fig.points.iter().step_by(5) {
        println!(
            "  {:>5.2} | {:>7.4} | {:>10.4}",
            p.phi_ratio, p.bof_over_nbl, p.triple_over_nbl
        );
    }

    c.bench_function("fig8_ratio_exa/41_points", |b| {
        b.iter(|| black_box(waste_ratio::run(&scenario, 41).unwrap()))
    });
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);
