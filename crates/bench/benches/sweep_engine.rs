//! Sweep execution engines on a Fig-4-sized grid.
//!
//! Compares the seed per-cell engine (fresh worker fan-out and barrier
//! per cell) against the global work pool (all `(cell, chunk)` units in
//! one work-stealing index space) at several worker counts, plus the
//! global pool with early stopping. The acceptance target for this
//! workspace is ≥ 2× for the global pool at 8 workers on this grid.

// criterion_group! expands to undocumented public items.
#![allow(missing_docs)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dck_core::{Protocol, Scenario};
use dck_sim::{run_sweep, EarlyStop, SweepEngine, SweepSpec};
use std::hint::black_box;

/// A Fig-4-shaped grid kept bench-sized: 6 φ-ratios × 5 MTBFs = 30
/// cells, short replications so per-cell overhead (the quantity under
/// test) is not drowned out by simulation time.
fn grid_spec() -> SweepSpec {
    let mut spec = SweepSpec::new(
        Protocol::DoubleNbl,
        Scenario::base().params,
        vec![0.0, 0.2, 0.4, 0.6, 0.8, 1.0],
        vec![900.0, 1_800.0, 3_600.0, 4.0 * 3_600.0, 7.0 * 3_600.0],
    );
    spec.replications = 16;
    spec.work_in_mtbfs = 5.0;
    spec.seed = 0xF194;
    spec
}

fn bench_sweep_engines(c: &mut Criterion) {
    let base = grid_spec();
    let cells = base.phi_ratios.len() * base.mtbfs.len();
    let reps = (cells * base.replications) as u64;

    let mut group = c.benchmark_group("sweep_engine");
    group.sample_size(10);
    group.throughput(Throughput::Elements(reps));

    for workers in [1usize, 2, 8] {
        let mut spec = base.clone();
        spec.workers = workers;

        spec.engine = SweepEngine::PerCell;
        group.bench_function(BenchmarkId::new("per_cell", workers), |b| {
            b.iter(|| black_box(run_sweep(&spec).unwrap()))
        });

        spec.engine = SweepEngine::GlobalPool;
        group.bench_function(BenchmarkId::new("global_pool", workers), |b| {
            b.iter(|| black_box(run_sweep(&spec).unwrap()))
        });

        // Same pool with metric recording on: quantifies the cost of
        // the observability layer (acceptance: obs-disabled baseline
        // above regresses < 2%, and this variant stays within noise of
        // it — the counters are a few relaxed atomic adds per round).
        group.bench_function(BenchmarkId::new("global_pool_obs", workers), |b| {
            let was = dck_obs::set_enabled(true);
            b.iter(|| black_box(run_sweep(&spec).unwrap()));
            dck_obs::set_enabled(was);
        });
    }

    // Early stopping on top of the pool: same grid, generous budget,
    // cells retire as they converge.
    let mut adaptive = base.clone();
    adaptive.workers = 8;
    adaptive.replications = 64;
    adaptive.early_stop = Some(EarlyStop {
        target_half_width: 0.01,
        min_replications: 16,
        batch: 16,
    });
    group.bench_function(BenchmarkId::new("global_pool_early_stop", 8), |b| {
        b.iter(|| black_box(run_sweep(&adaptive).unwrap()))
    });

    group.finish();
}

criterion_group!(benches, bench_sweep_engines);
criterion_main!(benches);
