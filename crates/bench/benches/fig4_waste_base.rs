//! F4 — waste surface on the Base scenario (Figure 4a–c).

// criterion_group! expands to undocumented public items.
#![allow(missing_docs)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dck_core::Scenario;
use dck_experiments::waste_surface::{self, Resolution};
use std::hint::black_box;

fn bench_fig4(c: &mut Criterion) {
    let scenario = Scenario::base();

    // Regenerate at paper resolution once and report the corner values
    // the paper describes in prose.
    let fig = waste_surface::run(&scenario, Resolution::default()).unwrap();
    println!("\nFigure 4 (Base): waste at optimal period");
    for s in &fig.surfaces {
        let z = fig.matrix(s);
        let (first, last) = (&z[0], z.last().unwrap());
        println!(
            "  {:<10} M=15s: waste {:.3}..{:.3} | M=1day: {:.5}..{:.5}",
            s.protocol.to_string(),
            first.iter().cloned().fold(f64::INFINITY, f64::min),
            first.iter().cloned().fold(0.0, f64::max),
            last.iter().cloned().fold(f64::INFINITY, f64::min),
            last.iter().cloned().fold(0.0, f64::max),
        );
    }

    let mut group = c.benchmark_group("fig4_waste_base");
    for (label, res) in [
        (
            "coarse",
            Resolution {
                mtbf_points: 9,
                phi_points: 9,
            },
        ),
        ("paper", Resolution::default()),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &res, |b, &res| {
            b.iter(|| black_box(waste_surface::run(&scenario, res).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
