//! V1 — model-vs-simulation validation as a bench target.
//!
//! Prints the validation verdict once, then times a representative
//! Monte-Carlo waste estimation (the dominant cost of the experiment).

// criterion_group! expands to undocumented public items.
#![allow(missing_docs)]

use criterion::{criterion_group, criterion_main, Criterion};
use dck_core::{PlatformParams, Protocol};
use dck_experiments::validate::{self, ValidateConfig};
use dck_sim::{estimate_waste, MonteCarloConfig, RunConfig};
use std::hint::black_box;

fn bench_validate(c: &mut Criterion) {
    let cfg = ValidateConfig::fast();
    let rows = validate::run_waste(&cfg).unwrap();
    let ok = rows.iter().filter(|r| r.within).count();
    println!(
        "\nValidation (fast): {}/{} waste points within tolerance; max |z| = {:.2}",
        ok,
        rows.len(),
        rows.iter().map(|r| r.z_score).fold(0.0, f64::max)
    );

    let params = PlatformParams::new(0.0, 2.0, 4.0, 10.0, 96).unwrap();
    let run_cfg = RunConfig::new(Protocol::DoubleNbl, params, 2.0, 3600.0);
    let mc = MonteCarloConfig::new(20, 7);
    let mut group = c.benchmark_group("validate_model_vs_sim");
    group.sample_size(10);
    group.bench_function("waste_20reps_20mtbf_work", |b| {
        b.iter(|| black_box(estimate_waste(&run_cfg, 20.0 * 3600.0, &mc).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_validate);
criterion_main!(benches);
