//! Simulation-kernel microbenchmarks and design ablations.
//!
//! Ablations backing DESIGN.md's choices:
//! * event queue: stable binary heap vs a sorted-`Vec` baseline;
//! * failure sources: O(1) aggregated Poisson vs O(log n) per-node
//!   renewal heap (the reason the Exponential fast path exists);
//! * single-run simulation throughput (failures/second of virtual
//!   platform time);
//! * parallel Monte-Carlo scaling across worker counts.

// criterion_group! expands to undocumented public items.
#![allow(missing_docs)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dck_core::{PlatformParams, Protocol};
use dck_failures::{
    AggregatedExponential, DistributionSpec, FailureSource, MtbfSpec, PerNodeRenewal,
};
use dck_sim::{estimate_waste, run_to_completion, MonteCarloConfig, RunConfig};
use dck_simcore::par::parallel_map_indexed;
use dck_simcore::{EventQueue, RngFactory, SimTime};
use std::hint::black_box;

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel/event_queue");
    let n: usize = 10_000;
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("heap_push_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::with_capacity(n);
            for i in 0..n {
                // Pseudo-random but deterministic times.
                let t = ((i * 2_654_435_761) % 1_000_003) as f64;
                q.push(SimTime::seconds(t), i);
            }
            let mut acc = 0usize;
            while let Some(e) = q.pop() {
                acc = acc.wrapping_add(e.payload);
            }
            black_box(acc)
        })
    });
    // Ablation baseline: keep a Vec sorted by insertion (what a naive
    // simulator does); same workload.
    group.bench_function("sorted_vec_baseline_10k", |b| {
        b.iter(|| {
            let mut v: Vec<(f64, usize)> = Vec::with_capacity(n);
            for i in 0..n {
                let t = ((i * 2_654_435_761) % 1_000_003) as f64;
                let pos = v
                    .binary_search_by(|probe| probe.0.partial_cmp(&t).unwrap())
                    .unwrap_or_else(|p| p);
                v.insert(pos, (t, i));
            }
            let mut acc = 0usize;
            for (_, i) in v {
                acc = acc.wrapping_add(i);
            }
            black_box(acc)
        })
    });
    group.finish();
}

fn bench_failure_sources(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel/failure_sources");
    let events: u64 = 100_000;
    group.throughput(Throughput::Elements(events));
    let spec = MtbfSpec::Platform {
        mtbf: SimTime::seconds(60.0),
        nodes: 10_368,
    };
    group.bench_function("aggregated_exponential_100k", |b| {
        b.iter(|| {
            let mut src = AggregatedExponential::new(spec, RngFactory::new(1).stream(0));
            let mut last = SimTime::ZERO;
            for _ in 0..events {
                last = src.next_failure().at;
            }
            black_box(last)
        })
    });
    group.bench_function("per_node_renewal_100k", |b| {
        b.iter(|| {
            let mut src = PerNodeRenewal::new(
                DistributionSpec::Exponential {
                    mean: spec.individual_mtbf(),
                },
                spec.nodes(),
                RngFactory::new(1).stream(0),
            );
            let mut last = SimTime::ZERO;
            for _ in 0..events {
                last = src.next_failure().at;
            }
            black_box(last)
        })
    });
    group.finish();
}

fn bench_simulation_run(c: &mut Criterion) {
    let params = PlatformParams::new(0.0, 2.0, 4.0, 10.0, 96).unwrap();
    let mut group = c.benchmark_group("kernel/simulation_run");
    group.sample_size(20);
    for (label, mtbf, work_hours) in [("m10min", 600.0, 50.0), ("m1h", 3600.0, 200.0)] {
        let cfg = RunConfig::new(Protocol::Triple, params, 1.0, mtbf);
        group.bench_with_input(BenchmarkId::from_parameter(label), &cfg, |b, cfg| {
            b.iter(|| {
                let spec = MtbfSpec::Individual {
                    mtbf: SimTime::seconds(cfg.mtbf * cfg.params.nodes as f64),
                    nodes: cfg.usable_nodes(),
                };
                let mut src = AggregatedExponential::new(spec, RngFactory::new(3).stream(0));
                black_box(run_to_completion(cfg, work_hours * 3600.0, &mut src).unwrap())
            })
        });
    }
    group.finish();
}

fn bench_montecarlo_scaling(c: &mut Criterion) {
    let params = PlatformParams::new(0.0, 2.0, 4.0, 10.0, 96).unwrap();
    let run_cfg = RunConfig::new(Protocol::DoubleNbl, params, 1.0, 1800.0);
    let mut group = c.benchmark_group("kernel/montecarlo_scaling");
    group.sample_size(10);
    for workers in [1usize, 2, 4, 8] {
        let mut mc = MonteCarloConfig::new(32, 11);
        mc.workers = workers;
        group.bench_with_input(BenchmarkId::from_parameter(workers), &mc, |b, mc| {
            b.iter(|| black_box(estimate_waste(&run_cfg, 20.0 * 3600.0, mc).unwrap()))
        });
    }
    group.finish();
}

fn bench_parallel_map(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel/parallel_map");
    group.throughput(Throughput::Elements(10_000));
    for workers in [1usize, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    black_box(parallel_map_indexed(10_000, workers, |i| {
                        (i as f64).sqrt().sin()
                    }))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_failure_sources,
    bench_simulation_run,
    bench_montecarlo_scaling,
    bench_parallel_map
);
criterion_main!(benches);
