//! E3/E4/E5 — extension experiments as bench targets.

// criterion_group! expands to undocumented public items.
#![allow(missing_docs)]

use criterion::{criterion_group, criterion_main, Criterion};
use dck_core::{
    optimal_operating_point, refined_waste, GlobalStore, HierarchicalModel, Protocol, Scenario,
};
use dck_experiments::phi_choice;
use std::hint::black_box;

fn bench_extensions(c: &mut Criterion) {
    // Print the φ* headline once.
    let report = phi_choice::run(9).unwrap();
    println!(
        "\nphi-choice: {} rows; max gain of tuning phi over the better fixed policy: {:.1}%",
        report.rows.len(),
        100.0 * report.max_gain_over_fixed()
    );

    let exa = Scenario::exa();
    c.bench_function("extensions/optimal_operating_point", |b| {
        b.iter(|| {
            black_box(optimal_operating_point(Protocol::DoubleNbl, &exa.params, 3_600.0).unwrap())
        })
    });

    let mut group = c.benchmark_group("extensions/phi_choice_sweep");
    group.sample_size(10);
    group.bench_function("9_mtbf_points", |b| {
        b.iter(|| black_box(phi_choice::run(9).unwrap()))
    });
    group.finish();

    // E5: restart-aware waste (512-point offset integration).
    let base = Scenario::base();
    c.bench_function("extensions/refined_waste", |b| {
        b.iter(|| {
            black_box(refined_waste(Protocol::DoubleNbl, &base.params, 4.0, 60.0, 120.0).unwrap())
        })
    });

    // E4: two-level optimal-K tuning.
    let store = GlobalStore::new(600.0, 600.0).unwrap();
    let hm = HierarchicalModel::new(Protocol::DoubleNbl, &base.params, 4.0, store).unwrap();
    c.bench_function("extensions/hierarchical_optimal_k", |b| {
        b.iter(|| black_box(hm.optimal(120.0, 10_000_000).unwrap()))
    });
}

criterion_group!(benches, bench_extensions);
criterion_main!(benches);
