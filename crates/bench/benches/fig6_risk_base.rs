//! F6 — success-probability ratios, Base scenario (Figure 6a–b).

// criterion_group! expands to undocumented public items.
#![allow(missing_docs)]

use criterion::{criterion_group, criterion_main, Criterion};
use dck_core::Scenario;
use dck_experiments::risk_surface::{self, Resolution, RiskPoint};
use std::hint::black_box;

fn bench_fig6(c: &mut Criterion) {
    let scenario = Scenario::base();
    let fig = risk_surface::run(&scenario, Resolution::default()).unwrap();
    // Report the harsh corner the paper highlights: M = 60 s, T = 30 d.
    let harsh = fig
        .points
        .iter()
        .min_by(|a, b| {
            let da = (a.mtbf - 60.0).abs() + (a.exploitation - 30.0 * 86400.0).abs() / 1e6;
            let db = (b.mtbf - 60.0).abs() + (b.exploitation - 30.0 * 86400.0).abs() / 1e6;
            da.partial_cmp(&db).unwrap()
        })
        .unwrap();
    println!(
        "\nFigure 6 (Base, harsh corner M=60s, T=30d): NBL/BoF = {:.4}, BoF/Triple = {:.4}, NBL/Triple = {:.4}",
        harsh.nbl_over_bof(),
        harsh.bof_over_triple(),
        harsh.nbl_over_triple()
    );
    let _ = RiskPoint::nbl_over_bof; // series accessors exercised above

    c.bench_function("fig6_risk_base/30x30_grid", |b| {
        b.iter(|| black_box(risk_surface::run(&scenario, Resolution::default()).unwrap()))
    });
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
