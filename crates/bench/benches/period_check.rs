//! V2 — closed-form vs numeric optimal period cross-check.

// criterion_group! expands to undocumented public items.
#![allow(missing_docs)]

use criterion::{criterion_group, criterion_main, Criterion};
use dck_core::{numeric_optimal_period, optimal_period, Protocol, Scenario};
use dck_experiments::period_check;
use std::hint::black_box;

fn bench_period_check(c: &mut Criterion) {
    let report = period_check::run().unwrap();
    println!(
        "\nPeriod check: {} rows; max interior closed-form vs numeric rel. err = {:.2e}",
        report.rows.len(),
        report.max_interior_rel_err()
    );

    let scenario = Scenario::base();
    let m = 7.0 * 3600.0;
    c.bench_function("period/closed_form", |b| {
        b.iter(|| black_box(optimal_period(Protocol::DoubleNbl, &scenario.params, 1.0, m).unwrap()))
    });
    c.bench_function("period/golden_section", |b| {
        b.iter(|| {
            black_box(
                numeric_optimal_period(Protocol::DoubleNbl, &scenario.params, 1.0, m).unwrap(),
            )
        })
    });
}

criterion_group!(benches, bench_period_check);
criterion_main!(benches);
