//! F9 — success-probability ratios, Exa scenario (Figure 9a–b).

// criterion_group! expands to undocumented public items.
#![allow(missing_docs)]

use criterion::{criterion_group, criterion_main, Criterion};
use dck_core::Scenario;
use dck_experiments::risk_surface::{self, Resolution};
use std::hint::black_box;

fn bench_fig9(c: &mut Criterion) {
    let scenario = Scenario::exa();
    let fig = risk_surface::run(&scenario, Resolution::default()).unwrap();
    let harsh = fig
        .points
        .iter()
        .min_by(|a, b| {
            let da = (a.mtbf - 60.0).abs() + (a.exploitation - 60.0 * 7.0 * 86400.0).abs() / 1e7;
            let db = (b.mtbf - 60.0).abs() + (b.exploitation - 60.0 * 7.0 * 86400.0).abs() / 1e7;
            da.partial_cmp(&db).unwrap()
        })
        .unwrap();
    println!(
        "\nFigure 9 (Exa, harsh corner M~60s, T~60w): NBL/BoF = {:.4}, BoF/Triple = {:.4}",
        harsh.nbl_over_bof(),
        harsh.bof_over_triple()
    );

    c.bench_function("fig9_risk_exa/30x30_grid", |b| {
        b.iter(|| black_box(risk_surface::run(&scenario, Resolution::default()).unwrap()))
    });
}

criterion_group!(benches, bench_fig9);
criterion_main!(benches);
