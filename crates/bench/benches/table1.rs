//! T1 — regenerate Table I.

// criterion_group! expands to undocumented public items.
#![allow(missing_docs)]

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    // Print the regenerated artifact once so `cargo bench` output
    // doubles as the reproduction record.
    let table = dck_experiments::table1::run();
    println!("\n{}", table.to_ascii());

    c.bench_function("table1/regenerate", |b| {
        b.iter(|| black_box(dck_experiments::table1::run()))
    });
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
