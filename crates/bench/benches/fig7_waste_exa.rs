//! F7 — waste surface on the Exa scenario (Figure 7a–c).

// criterion_group! expands to undocumented public items.
#![allow(missing_docs)]

use criterion::{criterion_group, criterion_main, Criterion};
use dck_core::Scenario;
use dck_experiments::waste_surface::{self, Resolution};
use std::hint::black_box;

fn bench_fig7(c: &mut Criterion) {
    let scenario = Scenario::exa();
    let fig = waste_surface::run(&scenario, Resolution::default()).unwrap();
    println!("\nFigure 7 (Exa): waste at optimal period");
    for s in &fig.surfaces {
        let z = fig.matrix(s);
        let last = z.last().unwrap();
        println!(
            "  {:<10} waste at M=1day: {:.5} (phi=0) .. {:.5} (phi=R)",
            s.protocol.to_string(),
            last[0],
            last[last.len() - 1],
        );
    }

    c.bench_function("fig7_waste_exa/paper_resolution", |b| {
        b.iter(|| black_box(waste_surface::run(&scenario, Resolution::default()).unwrap()))
    });
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
