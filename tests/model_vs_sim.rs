//! Cross-crate integration: the mechanistic simulator agrees with the
//! analytical model.

use dck::failures::{FailureEvent, FailureTrace};
use dck::model::{optimal_period, refined_waste, PlatformParams, Protocol, RiskModel, WasteModel};
use dck::sim::{
    estimate_success, estimate_waste, run_to_completion, MonteCarloConfig, PeriodChoice, RunConfig,
    StopReason,
};
use dck::simcore::SimTime;

fn base_params(nodes: u64) -> PlatformParams {
    PlatformParams::new(0.0, 2.0, 4.0, 10.0, nodes).unwrap()
}

/// Single deterministic failure: the outage matches the model's case
/// analysis for every phase of the period, for every protocol.
#[test]
fn deterministic_outage_matches_case_analysis() {
    let params = base_params(12);
    let period = 100.0;
    for protocol in [Protocol::DoubleNbl, Protocol::DoubleBof, Protocol::Triple] {
        let phi = 1.0;
        let model = WasteModel::new(protocol, &params, phi).unwrap();
        let resp = dck::protocols::FailureResponse::new(protocol, &params, phi, period).unwrap();
        // Failure offsets probing each phase (θ = 34).
        for off in [1.0, 10.0, 40.0, 70.0, 99.0] {
            let fail_at = 3.0 * period + off; // schedule position == time
            let trace = FailureTrace::new(
                12,
                vec![FailureEvent {
                    at: SimTime::seconds(fail_at),
                    node: 0,
                }],
            );
            let mut cfg = RunConfig::new(protocol, params, phi, 1e9);
            cfg.period = PeriodChoice::Explicit(period);
            let sched =
                dck::protocols::PeriodSchedule::new(protocol, &params, phi, period).unwrap();
            let work = sched.work_at(10.0 * period); // exactly 10 periods
            let out = run_to_completion(&cfg, work, &mut trace.replay()).unwrap();
            assert_eq!(out.reason, StopReason::WorkComplete);
            let expected_outage = resp.outage(off).total();
            assert!(
                (out.outage_time - expected_outage).abs() < 1e-9,
                "{protocol:?} off {off}: outage {} vs expected {expected_outage}",
                out.outage_time
            );
            assert!(
                (out.total_time - (10.0 * period + expected_outage)).abs() < 1e-9,
                "{protocol:?} off {off}"
            );
        }
        // The uniform average of those outages is F (checked exactly in
        // the protocols crate; spot-check consistency here).
        let f = model.failure_loss(period);
        assert!(f > 0.0);
    }
}

/// Monte-Carlo waste matches Eqs. 5/7/8/14 across a (MTBF, α, φ) grid
/// for the three evaluated protocols plus the `k = 4` / `k = 5` buddy
/// instances, each cell judged against its own simulator-reported CI95
/// half-width (not a hard-coded epsilon). The coarse spec's
/// fault-prediction cells ride along, so the predicted model is
/// cross-checked here too. A failure names the offending cell.
#[test]
fn monte_carlo_waste_matches_model() {
    let mut spec = dck_testkit::ConformanceSpec::coarse();
    // A trimmed grid keeps this tier-1 test quick; the full coarse grid
    // runs in the dedicated conformance suite.
    spec.mtbfs = vec![1_800.0, 3_600.0];
    spec.alphas = vec![0.0, 10.0];
    spec.phi_ratios = vec![0.0, 0.5];
    spec.replications = 16;
    spec.seed = 0xFEED;
    let report = dck_testkit::run_conformance(&spec).unwrap();
    assert!(
        !report.prediction_cells.is_empty(),
        "coarse spec must carry fault-prediction cells"
    );
    assert_eq!(
        report.degenerate, 0,
        "degenerate cells (too few completed replications) in a benign regime"
    );
    assert!(
        report.all_pass(),
        "{} cell(s) out of CI95 tolerance:\n{}",
        report.failed,
        report.failures().join("\n")
    );
}

/// Monte-Carlo success probability matches Eq. 11 for pairs and Eq. 16
/// for triples — and their `k`-generalization — in a regime where fatal
/// failures are observable, for **every registered protocol** (a newly
/// instantiated `k` cannot skip this check). The tolerance is one
/// Wilson-interval half-width (the simulator's own uncertainty), not a
/// hard-coded epsilon.
#[test]
fn monte_carlo_risk_matches_model() {
    let params = base_params(10_368);
    let mtbf = 60.0;
    let horizon = 86_400.0;
    for protocol in Protocol::registry() {
        // φ = 0 everywhere; DOUBLE (blocking) pins φ = θmin internally,
        // and BoF risk windows are θ-independent, so the model side at
        // θmax matches the simulated window for every instance.
        let cfg = RunConfig::new(protocol, params, 0.0, mtbf);
        let mc = MonteCarloConfig::new(150, 0xCAFE);
        let est = estimate_success(&cfg, horizon, &mc).unwrap();
        let model = RiskModel::with_theta(protocol, &params, params.theta_max())
            .unwrap()
            .success_probability(mtbf, horizon)
            .unwrap()
            .probability;
        let (lo, hi) = est.wilson95;
        let slack = (hi - lo) / 2.0;
        assert!(
            model >= lo - slack && model <= hi + slack,
            "{protocol:?} @ (MTBF={mtbf}s, alpha={}, phi/R=0): model {model} outside \
             Wilson CI [{lo}, {hi}] widened by its half-width {slack}",
            params.alpha
        );
    }
}

/// At harsh MTBFs the refined (higher-order) model tracks the
/// simulator much more closely than the paper's first-order Eq. 5:
/// the refined prediction must fall inside the Monte-Carlo CI while
/// the first-order one falls outside it, at M ∈ {60 s, 120 s}.
#[test]
fn refined_model_beats_first_order_at_harsh_mtbf() {
    let params = base_params(96);
    let phi = 4.0; // blocking point: the φ-choice optimum down here
    for mtbf in [60.0, 120.0] {
        let opt = optimal_period(Protocol::DoubleNbl, &params, phi, mtbf).unwrap();
        let refined = refined_waste(Protocol::DoubleNbl, &params, phi, opt.period, mtbf).unwrap();
        let mut cfg = RunConfig::new(Protocol::DoubleNbl, params, phi, mtbf);
        cfg.period = PeriodChoice::Explicit(opt.period);
        let mc = MonteCarloConfig::new(200, 0x5EF1);
        let est = estimate_waste(&cfg, 40.0 * mtbf, &mc).unwrap();
        let ci = est.ci95.expect("harsh-MTBF runs still complete");
        assert!(
            ci.contains_with_slack(refined.total, 3.0),
            "M={mtbf}: refined {} outside sim {} ± {}",
            refined.total,
            ci.mean,
            ci.half_width
        );
        let first_err = (opt.waste.total - ci.mean).abs();
        let refined_err = (refined.total - ci.mean).abs();
        assert!(
            refined_err < first_err,
            "M={mtbf}: refined err {refined_err} not better than first-order {first_err}"
        );
    }
}

/// The waste does not depend on platform size in the model; the
/// simulator reproduces that within noise (same platform rate, more
/// nodes just spreads the victims).
#[test]
fn waste_node_count_invariance() {
    let mtbf = 1_800.0;
    let mut estimates = Vec::new();
    for nodes in [24u64, 96] {
        let cfg = RunConfig::new(Protocol::DoubleNbl, base_params(nodes), 1.0, mtbf);
        let mc = MonteCarloConfig::new(60, 0xAB);
        let est = estimate_waste(&cfg, 20.0 * mtbf, &mc).unwrap();
        estimates.push(est.ci95.expect("moderate-MTBF runs complete"));
    }
    let diff = (estimates[0].mean - estimates[1].mean).abs();
    let tol = 3.0 * (estimates[0].half_width + estimates[1].half_width);
    assert!(
        diff < tol,
        "waste differs across node counts: {estimates:?}"
    );
}

/// Fatal-failure detection in the full simulator agrees with a direct
/// trace computation: feed a crafted trace whose fatality is known.
#[test]
fn fatal_detection_end_to_end() {
    let params = base_params(12);
    let mk = |events: &[(f64, u64)]| {
        FailureTrace::new(
            12,
            events
                .iter()
                .map(|&(t, n)| FailureEvent {
                    at: SimTime::seconds(t),
                    node: n,
                })
                .collect(),
        )
    };
    // DOUBLENBL risk window at φ=0: D + R + θmax = 48.
    let cfg = RunConfig::new(Protocol::DoubleNbl, params, 0.0, 1e9);
    let fatal = mk(&[(500.0, 2), (540.0, 3)]);
    let out = run_to_completion(&cfg, 10_000.0, &mut fatal.replay()).unwrap();
    assert_eq!(out.reason, StopReason::Fatal);

    let safe = mk(&[(500.0, 2), (549.0, 3)]);
    let out = run_to_completion(&cfg, 10_000.0, &mut safe.replay()).unwrap();
    assert_eq!(out.reason, StopReason::WorkComplete);

    // Triple tolerates the same double-failure pattern.
    let cfg = RunConfig::new(Protocol::Triple, params, 0.0, 1e9);
    let two = mk(&[(500.0, 0), (501.0, 1)]);
    let out = run_to_completion(&cfg, 10_000.0, &mut two.replay()).unwrap();
    assert_eq!(out.reason, StopReason::WorkComplete);
}
