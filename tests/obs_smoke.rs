//! End-to-end smoke tests for the observability layer: the `dck run
//! --trace` / `dck sweep --metrics` / `dck validate` pipeline through
//! the CLI entry point, and the bit-identity guarantee (metrics on or
//! off never changes sweep results).

use dck::model::{PlatformParams, Protocol};
use dck::obs;
use dck::sim::{run_sweep, SweepEngine, SweepSpec};

fn cli(raw: &[&str]) -> Result<String, String> {
    dck_cli::run(&raw.iter().map(|s| s.to_string()).collect::<Vec<_>>())
}

fn tmp(name: &str) -> (std::path::PathBuf, String) {
    let path = std::env::temp_dir().join(format!("dck-obs-{}-{name}", std::process::id()));
    let s = path.to_str().unwrap().to_string();
    (path, s)
}

#[test]
fn trace_metrics_validate_pipeline() {
    let (trace_path, trace) = tmp("run.jsonl");
    let (metrics_path, metrics) = tmp("metrics.json");
    let (sweep_path, sweep) = tmp("sweep.json");

    let out = cli(&[
        "run",
        "--protocol",
        "double-nbl",
        "--mtbf",
        "30min",
        "--work",
        "4h",
        "--seed",
        "7",
        "--trace",
        &trace,
    ])
    .unwrap();
    assert!(out.contains("timeline:"), "missing trace line:\n{out}");
    cli(&["validate", "--trace", &trace]).unwrap();

    let out = cli(&[
        "sweep",
        "--protocol",
        "double-nbl",
        "--phi-ratios",
        "0,1",
        "--mtbfs",
        "30min,2h",
        "--reps",
        "8",
        "--format",
        "json",
        "--metrics",
        &metrics,
    ])
    .unwrap_or_else(|e| panic!("sweep failed: {e}"));
    std::fs::write(&sweep_path, &out).unwrap();
    cli(&["validate", "--metrics", &metrics]).unwrap();
    cli(&["validate", "--sweep", &sweep]).unwrap();

    for p in [trace_path, metrics_path, sweep_path] {
        std::fs::remove_file(&p).ok();
    }
}

#[test]
fn metrics_never_change_sweep_results() {
    let params = PlatformParams::new(0.0, 2.0, 4.0, 10.0, 16).unwrap();
    let mut spec = SweepSpec::new(
        Protocol::DoubleNbl,
        params,
        vec![0.25, 0.75],
        vec![900.0, 3_600.0],
    );
    spec.replications = 12;
    spec.work_in_mtbfs = 5.0;
    spec.seed = 0xB17;
    spec.engine = SweepEngine::GlobalPool;

    let _guard = obs::exclusive_session();
    let was = obs::set_enabled(false);
    let dark = run_sweep(&spec).unwrap();
    obs::reset();
    obs::set_enabled(true);
    let lit = run_sweep(&spec).unwrap();
    let snap = obs::snapshot();
    obs::set_enabled(was);

    for (a, b) in dark.cells.iter().zip(&lit.cells) {
        assert_eq!(a.sim_waste.map(f64::to_bits), b.sim_waste.map(f64::to_bits));
        assert_eq!(
            a.half_width.map(f64::to_bits),
            b.half_width.map(f64::to_bits)
        );
        assert_eq!(a.replications_run, b.replications_run);
    }
    assert_eq!(snap.counter("sweep.cells"), 4);
    assert_eq!(snap.counter("sweep.replications"), 4 * 12);
}
