//! Adaptive-controller end-to-end guarantees.
//!
//! Two pins that keep the adaptive executor honest:
//!
//! 1. **Adaptation off is the static machine, bit for bit.** Every
//!    script in the golden corpus replays identically — same outcome,
//!    same timeline, exact float equality, no tolerance — through
//!    `run_adaptive_traced` with the controller disabled.
//! 2. **The censored MLE converges** at the `1/√n` rate its CI claims:
//!    across independent exponential failure streams the estimate
//!    lands within a z-scaled standard error of the true MTBF.

use dck::model::{ControllerConfig, EstimatorConfig, MtbfEstimator};
use dck::sim::{run_adaptive_traced, run_to_completion_traced, AdaptiveRunConfig};
use dck::simcore::RngFactory;
use dck_testkit::load_cases;
use rand::Rng;

#[test]
fn adaptation_off_is_bit_identical_across_the_golden_corpus() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden");
    let cases = load_cases(&dir).expect("load golden corpus");
    assert!(
        cases.len() >= 10,
        "corpus unexpectedly small: {} scripts",
        cases.len()
    );
    for case in &cases {
        let compiled = case.script.compile().expect(&case.name);
        let (expected, expected_tl) = run_to_completion_traced(
            &compiled.config,
            compiled.work,
            &mut compiled.trace.replay(),
        )
        .expect(&case.name);
        let adaptive = AdaptiveRunConfig {
            base: compiled.config,
            // A wildly wrong prior must not matter when adaptation is
            // off.
            prior_mtbf: compiled.config.mtbf * 100.0,
            controller: ControllerConfig {
                enabled: false,
                ..ControllerConfig::default()
            },
        };
        let (out, tl) = run_adaptive_traced(&adaptive, compiled.work, &mut compiled.trace.replay())
            .expect(&case.name);
        // Exact equality — the disabled adaptive path delegates to the
        // static machine, so even the last bit must agree.
        assert_eq!(out.run, expected, "outcome diverged on {}", case.name);
        assert_eq!(tl, expected_tl, "timeline diverged on {}", case.name);
        assert_eq!(out.retunes, 0, "{}", case.name);
    }
}

#[test]
fn censored_mle_converges_at_the_ci_rate() {
    let mtbf = 1800.0;
    let n = 400usize;
    // Relative standard error of the exponential-MTBF MLE is 1/√n;
    // judge each stream against 4 standard errors (P(miss) ~ 6e-5 per
    // stream) and the ensemble mean against 2 (independent streams
    // shrink it by √streams).
    let se = mtbf / (n as f64).sqrt();
    let streams = 8u64;
    let mut errors = Vec::new();
    for s in 0..streams {
        let mut rng = RngFactory::new(0xE57).component_stream("mle", s);
        let mut est = MtbfEstimator::new(EstimatorConfig::default()).unwrap();
        let mut t = 0.0;
        for _ in 0..n {
            let u: f64 = rng.gen();
            t += -(1.0 - u).ln() * mtbf;
            est.record_failure(t).unwrap();
        }
        let fit = est.estimate(t).unwrap().expect("n > 0");
        assert_eq!(fit.failures, n as u64);
        assert!(
            (fit.mtbf - mtbf).abs() < 4.0 * se,
            "stream {s}: estimate {} vs true {mtbf} (4se = {})",
            fit.mtbf,
            4.0 * se
        );
        errors.push(fit.mtbf - mtbf);
    }
    let mean_err = errors.iter().sum::<f64>() / streams as f64;
    assert!(
        mean_err.abs() < 2.0 * se / (streams as f64).sqrt(),
        "ensemble bias {mean_err} exceeds 2 pooled standard errors"
    );
}
