//! Smoke tests over the full `dck` CLI surface (via the library entry
//! point — no subprocesses needed).

fn run(raw: &[&str]) -> Result<String, String> {
    dck_cli::run(&raw.iter().map(|s| s.to_string()).collect::<Vec<_>>())
}

#[test]
fn every_command_produces_output() {
    let commands: Vec<Vec<&str>> = vec![
        vec!["scenarios"],
        vec!["help"],
        vec!["waste", "--protocol", "double-nbl", "--mtbf", "4h"],
        vec![
            "waste",
            "--protocol",
            "triple",
            "--scenario",
            "exa",
            "--phi-ratio",
            "0.1",
        ],
        vec!["period", "--mtbf", "30min"],
        vec![
            "period",
            "--scenario",
            "exa",
            "--phi-ratio",
            "1.0",
            "--mtbf",
            "1d",
        ],
        vec!["risk", "--mtbf", "2min", "--life", "1w"],
        vec![
            "compare",
            "--phi-ratio",
            "0.25",
            "--mtbf",
            "7h",
            "--life",
            "30d",
        ],
    ];
    for cmd in commands {
        let out = run(&cmd).unwrap_or_else(|e| panic!("{cmd:?} failed: {e}"));
        assert!(!out.trim().is_empty(), "{cmd:?} produced no output");
    }
}

#[test]
fn simulate_command_agrees_with_model_verdict() {
    let out = run(&[
        "simulate",
        "--protocol",
        "triple",
        "--phi-ratio",
        "0.5",
        "--mtbf",
        "20min",
        "--work",
        "8h",
        "--reps",
        "30",
        "--nodes",
        "12",
        "--seed",
        "99",
    ])
    .unwrap();
    assert!(
        out.contains("model within Monte-Carlo tolerance"),
        "unexpected verdict:\n{out}"
    );
}

#[test]
fn trace_pipeline_via_cli() {
    let path = std::env::temp_dir().join(format!("dck-smoke-{}.json", std::process::id()));
    let p = path.to_str().unwrap();
    run(&[
        "trace",
        "generate",
        "--nodes",
        "32",
        "--mtbf",
        "2min",
        "--horizon",
        "2h",
        "--seed",
        "5",
        "--out",
        p,
    ])
    .unwrap();
    let stats = run(&["trace", "stats", p]).unwrap();
    assert!(stats.contains("32 nodes"));
    std::fs::remove_file(&path).ok();
}

#[test]
fn parameter_overrides_change_results() {
    let small = run(&["period", "--mtbf", "7h", "--delta", "1s"]).unwrap();
    let large = run(&["period", "--mtbf", "7h", "--delta", "20s"]).unwrap();
    assert_ne!(small, large);
}

#[test]
fn errors_are_actionable() {
    let e = run(&["waste"]).unwrap_err();
    assert!(e.contains("--protocol"));
    let e = run(&["waste", "--protocol", "warp-drive"]).unwrap_err();
    assert!(e.contains("unknown protocol"));
    let e = run(&["period", "--mtbf", "yesterday"]).unwrap_err();
    assert!(e.contains("duration"));
    let e = run(&["compare", "--scenario", "zeta"]).unwrap_err();
    assert!(e.contains("unknown scenario"));
}
