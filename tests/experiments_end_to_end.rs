//! End-to-end experiment generation: every artifact writes, parses, and
//! carries plausible data.

use dck::experiments::{
    output::OutputDir, period_check, risk_surface, table1, waste_ratio, waste_surface,
};
use dck::model::Scenario;
use std::fs;
use std::path::PathBuf;

fn temp_out(tag: &str) -> (OutputDir, PathBuf) {
    let dir = std::env::temp_dir().join(format!("dck-e2e-{tag}-{}", std::process::id()));
    (OutputDir::create(&dir).unwrap(), dir)
}

fn csv_lines(path: PathBuf) -> Vec<String> {
    fs::read_to_string(path)
        .unwrap()
        .lines()
        .map(str::to_string)
        .collect()
}

#[test]
fn table1_writes_all_formats() {
    let (out, dir) = temp_out("t1");
    table1::run().write(&out).unwrap();
    let csv = csv_lines(dir.join("table1.csv"));
    assert_eq!(csv.len(), 3); // header + 2 scenarios
    assert!(csv[0].starts_with("scenario,"));
    let json = fs::read_to_string(dir.join("table1.json")).unwrap();
    let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
    assert_eq!(parsed["rows"].as_array().unwrap().len(), 2);
    fs::remove_dir_all(dir).unwrap();
}

#[test]
fn waste_surfaces_write_per_protocol_csvs() {
    let (out, dir) = temp_out("fig4");
    let res = waste_surface::Resolution {
        mtbf_points: 5,
        phi_points: 4,
    };
    let fig = waste_surface::run(&Scenario::base(), res).unwrap();
    fig.write(&out).unwrap();
    for proto in ["double-bof", "double-nbl", "triple"] {
        let lines = csv_lines(dir.join(format!("fig4_{proto}.csv")));
        assert_eq!(lines.len(), 1 + 5 * 4, "{proto}");
        assert_eq!(lines[0], "mtbf_s,phi_over_r,waste,period_s");
        // Every data row parses into 4 finite numbers.
        for line in &lines[1..] {
            let fields: Vec<f64> = line.split(',').map(|f| f.parse().unwrap()).collect();
            assert_eq!(fields.len(), 4);
            assert!(fields.iter().all(|x| x.is_finite()));
        }
    }
    assert!(dir.join("fig4.json").exists());
    assert!(dir.join("fig4_triple.txt").exists());
    fs::remove_dir_all(dir).unwrap();
}

#[test]
fn waste_ratio_csv_roundtrips() {
    let (out, dir) = temp_out("fig5");
    let fig = waste_ratio::run(&Scenario::base(), 9).unwrap();
    fig.write(&out).unwrap();
    let lines = csv_lines(dir.join("fig5_waste_ratio.csv"));
    assert_eq!(lines.len(), 10);
    // Endpoint sanity straight from the file.
    let last: Vec<f64> = lines[9].split(',').map(|f| f.parse().unwrap()).collect();
    assert!((last[0] - 1.0).abs() < 1e-9); // phi/R = 1
    assert!((last[4] - 1.0).abs() < 1e-9); // BoF/NBL converged
    fs::remove_dir_all(dir).unwrap();
}

#[test]
fn risk_surface_writes_previews() {
    let (out, dir) = temp_out("fig6");
    let res = risk_surface::Resolution {
        mtbf_points: 4,
        exploitation_points: 4,
    };
    let fig = risk_surface::run(&Scenario::base(), res).unwrap();
    fig.write(&out).unwrap();
    let lines = csv_lines(dir.join("fig6_risk.csv"));
    assert_eq!(lines.len(), 1 + 16);
    assert!(fs::read_to_string(dir.join("fig6a_preview.txt"))
        .unwrap()
        .contains("DOUBLENBL/DOUBLEBOF"));
    assert!(dir.join("fig6b_preview.txt").exists());
    fs::remove_dir_all(dir).unwrap();
}

#[test]
fn exa_figures_generate_too() {
    let (out, dir) = temp_out("exa");
    let fig7 = waste_surface::run(
        &Scenario::exa(),
        waste_surface::Resolution {
            mtbf_points: 4,
            phi_points: 4,
        },
    )
    .unwrap();
    assert_eq!(fig7.figure_number(), 7);
    fig7.write(&out).unwrap();
    let fig8 = waste_ratio::run(&Scenario::exa(), 5).unwrap();
    assert_eq!(fig8.figure_number(), 8);
    fig8.write(&out).unwrap();
    let fig9 = risk_surface::run(
        &Scenario::exa(),
        risk_surface::Resolution {
            mtbf_points: 3,
            exploitation_points: 3,
        },
    )
    .unwrap();
    assert_eq!(fig9.figure_number(), 9);
    fig9.write(&out).unwrap();
    for f in ["fig7_triple.csv", "fig8_waste_ratio.csv", "fig9_risk.csv"] {
        assert!(dir.join(f).exists(), "{f} missing");
    }
    fs::remove_dir_all(dir).unwrap();
}

#[test]
fn period_check_report_writes_and_validates() {
    let (out, dir) = temp_out("period");
    let report = period_check::run().unwrap();
    assert!(report.max_interior_rel_err() < 1e-3);
    report.write(&out).unwrap();
    let txt = fs::read_to_string(dir.join("period_check.txt")).unwrap();
    assert!(txt.contains("Young/Daly"));
    fs::remove_dir_all(dir).unwrap();
}

#[test]
fn json_figures_deserialize_back() {
    let fig = waste_ratio::run(&Scenario::base(), 5).unwrap();
    let json = serde_json::to_string(&fig).unwrap();
    let back: waste_ratio::WasteRatioFigure = serde_json::from_str(&json).unwrap();
    // serde_json prints the shortest round-trippable decimal, which can
    // differ from the original by one ulp; compare within tolerance.
    assert_eq!(fig.scenario, back.scenario);
    assert_eq!(fig.points.len(), back.points.len());
    for (a, b) in fig.points.iter().zip(&back.points) {
        assert!((a.phi_ratio - b.phi_ratio).abs() < 1e-12);
        assert!((a.waste_nbl - b.waste_nbl).abs() < 1e-12);
        assert!((a.triple_over_nbl - b.triple_over_nbl).abs() < 1e-12);
    }
}
