//! Cross-crate integration: the two-level (hierarchical) extension
//! end-to-end through the facade.

use dck::failures::{AggregatedExponential, MtbfSpec};
use dck::model::{GlobalStore, HierarchicalModel, PlatformParams, Protocol};
use dck::sim::hierarchical::{run_hierarchical, HierarchicalRunConfig};
use dck::sim::{run_until, PeriodChoice, RunConfig};
use dck::simcore::{RngFactory, SimTime};

fn params() -> PlatformParams {
    PlatformParams::new(0.0, 2.0, 4.0, 10.0, 96).unwrap()
}

fn source(cfg: &RunConfig, seed: u64) -> AggregatedExponential {
    let spec = MtbfSpec::Individual {
        mtbf: SimTime::seconds(cfg.mtbf * cfg.params.nodes as f64),
        nodes: cfg.usable_nodes(),
    };
    AggregatedExponential::new(spec, RngFactory::new(seed).stream(0))
}

/// On a harsh platform, plain level-1 runs die of fatal failures while
/// the two-level runs all complete — the extension's core promise.
#[test]
fn level2_converts_fatal_failures_into_completions() {
    let mtbf = 60.0;
    let phi = 4.0; // blocking point: feasible at this MTBF
    let horizon = 30.0 * 3_600.0;

    // Level 1 alone: count fatal runs over replications.
    let l1 = RunConfig::new(Protocol::DoubleNbl, params(), phi, mtbf);
    let mut fatal_l1 = 0;
    for seed in 0..20 {
        let mut src = source(&l1, seed);
        if !run_until(&l1, horizon, &mut src).unwrap().survived() {
            fatal_l1 += 1;
        }
    }
    assert!(
        fatal_l1 >= 3,
        "regime not harsh enough to be informative: {fatal_l1} fatal runs"
    );

    // Two-level: the same platform, same horizon of work, must always
    // complete (with rollbacks recorded instead of deaths).
    let store = GlobalStore::new(300.0, 300.0).unwrap();
    let hm = HierarchicalModel::new(Protocol::DoubleNbl, &params(), phi, store).unwrap();
    let k = hm.optimal(mtbf, 1_000_000).unwrap().periods_per_global;
    let cfg = HierarchicalRunConfig {
        inner: {
            let mut c = RunConfig::new(Protocol::DoubleNbl, params(), phi, mtbf);
            c.period = PeriodChoice::Optimal;
            c
        },
        store,
        periods_per_global: k,
        max_rollbacks: 100_000,
    };
    let mut total_rollbacks = 0;
    for seed in 0..20 {
        let mut src = source(&cfg.inner, 1000 + seed);
        let out = run_hierarchical(&cfg, 10.0 * 3_600.0, &mut src).unwrap();
        assert!(out.completed, "seed {seed} did not complete");
        total_rollbacks += out.fatal_rollbacks;
    }
    assert!(
        total_rollbacks > 0,
        "expected some fatal events to be absorbed as rollbacks"
    );
}

/// The empirical rollback rate matches the model's fatal rate ν.
#[test]
fn rollback_rate_matches_fatal_rate_model() {
    let mtbf = 45.0;
    let phi = 4.0;
    let store = GlobalStore::new(300.0, 300.0).unwrap();
    let hm = HierarchicalModel::new(Protocol::DoubleNbl, &params(), phi, store).unwrap();
    let nu = hm.fatal_rate(mtbf).unwrap();

    let cfg = HierarchicalRunConfig {
        inner: RunConfig::new(Protocol::DoubleNbl, params(), phi, mtbf),
        store,
        periods_per_global: 200,
        max_rollbacks: 1_000_000,
    };
    let work = 20.0 * 3_600.0;
    let mut rollbacks = 0u64;
    let mut wall = 0.0;
    for seed in 0..30 {
        let mut src = source(&cfg.inner, 7_000 + seed);
        let out = run_hierarchical(&cfg, work, &mut src).unwrap();
        assert!(out.completed);
        rollbacks += out.fatal_rollbacks;
        wall += out.total_time;
    }
    let empirical = rollbacks as f64 / wall;
    // Poisson counting noise: compare within a factor of 2 given the
    // expected count (ν·wall should be tens of events).
    let expected = nu * wall;
    assert!(
        expected > 10.0,
        "underpowered test: {expected} expected events"
    );
    assert!(
        (0.5..2.0).contains(&(empirical / nu)),
        "empirical rate {empirical} vs model {nu}"
    );
}
