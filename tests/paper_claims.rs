//! End-to-end reproduction of the paper's quantitative claims.
//!
//! Each test quotes the claim (with its section) and asserts the
//! reproduced numbers exhibit it. These are the headline results of
//! EXPERIMENTS.md.

use dck::model::{Evaluation, OverlapModel, Protocol, RiskModel, Scenario, WasteModel};

const M_7H: f64 = 7.0 * 3600.0;

/// §II: "θ(φ) = θmin + α(θmin − φ)" with "φ = 0 for θ = θmax = (1+α)θmin".
#[test]
fn overlap_model_endpoints() {
    for scenario in Scenario::all() {
        let m = OverlapModel::new(&scenario.params);
        let r = scenario.params.theta_min;
        assert_eq!(m.theta_of_phi(r).unwrap(), r);
        assert!((m.theta_of_phi(0.0).unwrap() - (1.0 + scenario.params.alpha) * r).abs() < 1e-9);
    }
}

/// §V-A: "the value of F is the same for DOUBLENBL and TRIPLE
/// (Fnbl = Ftri)".
#[test]
fn fnbl_equals_ftri() {
    for scenario in Scenario::all() {
        for ratio in [0.0, 0.3, 0.7, 1.0] {
            let phi = ratio * scenario.params.theta_min;
            let nbl = WasteModel::new(Protocol::DoubleNbl, &scenario.params, phi).unwrap();
            let tri = WasteModel::new(Protocol::Triple, &scenario.params, phi).unwrap();
            let p = nbl.min_period().max(tri.min_period()) * 3.0;
            assert_eq!(nbl.failure_loss(p), tri.failure_loss(p));
        }
    }
}

/// §III-A: "Fbof = Fnbl + R − φ" (Eq. 8 from Eq. 7).
#[test]
fn fbof_is_fnbl_plus_r_minus_phi() {
    let scenario = Scenario::base();
    for ratio in [0.0, 0.5, 1.0] {
        let phi = ratio * scenario.params.theta_min;
        let nbl = WasteModel::new(Protocol::DoubleNbl, &scenario.params, phi).unwrap();
        let bof = WasteModel::new(Protocol::DoubleBof, &scenario.params, phi).unwrap();
        let p = 500.0;
        let expected = nbl.failure_loss(p) + scenario.params.recovery() - phi;
        assert!((bof.failure_loss(p) - expected).abs() < 1e-12);
    }
}

/// §VI-A (Fig. 5): "DOUBLEBOF has always a higher waste than DOUBLENBL,
/// until the ratio of work that can be done during the checkpoint makes
/// waiting for the checkpoint transfer transparent."
#[test]
fn fig5_bof_never_beats_nbl() {
    let scenario = Scenario::base();
    for i in 0..=20 {
        let phi = scenario.params.theta_min * i as f64 / 20.0;
        let bof = Evaluation::at_optimal_period(Protocol::DoubleBof, &scenario.params, phi, M_7H)
            .unwrap()
            .waste
            .total;
        let nbl = Evaluation::at_optimal_period(Protocol::DoubleNbl, &scenario.params, phi, M_7H)
            .unwrap()
            .waste
            .total;
        assert!(bof >= nbl - 1e-12, "phi {phi}: bof {bof} < nbl {nbl}");
    }
    // Transparency at φ = R: identical.
    let phi = scenario.params.theta_min;
    let bof = Evaluation::at_optimal_period(Protocol::DoubleBof, &scenario.params, phi, M_7H)
        .unwrap()
        .waste
        .total;
    let nbl = Evaluation::at_optimal_period(Protocol::DoubleNbl, &scenario.params, phi, M_7H)
        .unwrap()
        .waste
        .total;
    assert!((bof - nbl).abs() < 1e-12);
}

/// §VI-A (Fig. 5): "Up to φ/R ≤ 0.5, TRIPLE has a much smaller waste
/// than any of the double checkpointing protocols. […] The overhead,
/// however, is limited to 15% more waste in the worst case."
#[test]
fn fig5_triple_wins_low_phi_and_bounded_loss() {
    let scenario = Scenario::base();
    // Much smaller below the crossover.
    for ratio in [0.0, 0.2, 0.4] {
        let phi = ratio * scenario.params.theta_min;
        let tri = Evaluation::at_optimal_period(Protocol::Triple, &scenario.params, phi, M_7H)
            .unwrap()
            .waste
            .total;
        let nbl = Evaluation::at_optimal_period(Protocol::DoubleNbl, &scenario.params, phi, M_7H)
            .unwrap()
            .waste
            .total;
        assert!(tri < nbl, "ratio {ratio}");
        if ratio < 0.1 {
            assert!(tri < 0.5 * nbl, "ratio {ratio}: triple {tri} vs nbl {nbl}");
        }
    }
    // Bounded worst case across the full sweep.
    let mut worst: f64 = 0.0;
    for i in 0..=40 {
        let phi = scenario.params.theta_min * i as f64 / 40.0;
        let tri = Evaluation::at_optimal_period(Protocol::Triple, &scenario.params, phi, M_7H)
            .unwrap()
            .waste
            .total;
        let nbl = Evaluation::at_optimal_period(Protocol::DoubleNbl, &scenario.params, phi, M_7H)
            .unwrap()
            .waste
            .total;
        worst = worst.max(tri / nbl);
    }
    assert!(worst > 1.0, "triple must lose near φ = R");
    assert!(worst < 1.20, "worst-case ratio {worst} (paper: ≤ ~15%)");
}

/// §VI-B (Fig. 8): "the gain of TRIPLE increases up to 25% of that of
/// DOUBLENBL when φ/R = 1/10" on the Exa scenario.
#[test]
fn fig8_exa_triple_gain_at_phi_tenth() {
    let scenario = Scenario::exa();
    let phi = 0.1 * scenario.params.theta_min;
    let tri = Evaluation::at_optimal_period(Protocol::Triple, &scenario.params, phi, M_7H)
        .unwrap()
        .waste
        .total;
    let nbl = Evaluation::at_optimal_period(Protocol::DoubleNbl, &scenario.params, phi, M_7H)
        .unwrap()
        .waste
        .total;
    let gain = 1.0 - tri / nbl;
    assert!(
        (0.15..0.40).contains(&gain),
        "gain {gain} (paper reports ~25%)"
    );
}

/// §III-B: the optimal periods have the Young/Daly √(2Mδ) shape — the
/// buddy protocols' periods scale as √M.
#[test]
fn optimal_period_scales_as_sqrt_m() {
    let scenario = Scenario::base();
    let phi = 1.0;
    for protocol in [Protocol::DoubleNbl, Protocol::DoubleBof, Protocol::Triple] {
        let p1 = Evaluation::at_optimal_period(protocol, &scenario.params, phi, M_7H)
            .unwrap()
            .period;
        let p4 = Evaluation::at_optimal_period(protocol, &scenario.params, phi, 4.0 * M_7H)
            .unwrap()
            .period;
        let ratio = p4 / p1;
        assert!((ratio - 2.0).abs() < 0.02, "{protocol:?}: ratio {ratio}");
    }
}

/// §III-C/§V-C: risk windows — NBL `D+R+θ`, BoF `D+2R`, TRIPLE
/// `D+R+2θ`, TRIPLE-BoF `D+3R` — ordered BoF < NBL < TRIPLE for
/// stretched transfers, with TRIPLE still the most reliable because its
/// fatality needs a third failure.
#[test]
fn risk_windows_and_reliability_ordering() {
    let scenario = Scenario::base();
    let theta = scenario.params.theta_max();
    let win = |p| {
        RiskModel::with_theta(p, &scenario.params, theta)
            .unwrap()
            .risk_window()
    };
    assert_eq!(win(Protocol::DoubleBof), 8.0);
    assert_eq!(win(Protocol::DoubleNbl), 48.0);
    assert_eq!(win(Protocol::Triple), 92.0);
    assert_eq!(win(Protocol::TripleBof), 12.0);

    // Despite the longest window, TRIPLE is the most reliable.
    let p = |proto: Protocol| {
        RiskModel::with_theta(proto, &scenario.params, theta)
            .unwrap()
            .success_probability(60.0, 30.0 * 86_400.0)
            .unwrap()
            .probability
    };
    let (nbl, bof, tri) = (
        p(Protocol::DoubleNbl),
        p(Protocol::DoubleBof),
        p(Protocol::Triple),
    );
    assert!(bof > nbl);
    assert!(tri > bof);
}

/// §VI-A (Fig. 6): "TRIPLE … providing risk mitigation by orders of
/// magnitude" in the harsh corner (M ≤ 60 s, long exploitation).
#[test]
fn fig6_triple_orders_of_magnitude_safer() {
    let scenario = Scenario::base();
    let theta = scenario.params.theta_max();
    let failure = |proto: Protocol| {
        1.0 - RiskModel::with_theta(proto, &scenario.params, theta)
            .unwrap()
            .success_probability(60.0, 30.0 * 86_400.0)
            .unwrap()
            .probability
    };
    let nbl_fail = failure(Protocol::DoubleNbl);
    let tri_fail = failure(Protocol::Triple);
    assert!(
        nbl_fail / tri_fail > 100.0,
        "fatal-probability improvement only {}x",
        nbl_fail / tri_fail
    );
}

/// §I: the introduction's motivating number — a million-node machine of
/// 50-year-MTBF components fails within the hour with probability > 0.86.
#[test]
fn introduction_motivating_number() {
    let p = dck::failures::mtbf::any_component_failure_probability(0.999998, 1_000_000);
    assert!(p > 0.86);
}

/// §IV: "equally memory-demanding" — verified mechanically by the
/// storage state machine.
#[test]
fn triple_is_equally_memory_demanding() {
    use dck::protocols::{GroupLayout, StorageDriver};
    let mut peaks = Vec::new();
    for protocol in [Protocol::DoubleNbl, Protocol::Triple] {
        let layout = GroupLayout::new(protocol, 12).unwrap();
        let mut d = StorageDriver::new(protocol, layout);
        for _ in 0..10 {
            d.run_period().unwrap();
        }
        peaks.push(d.peak_images_any_node());
    }
    assert_eq!(peaks[0], peaks[1]);
}
