//! # dck — in-memory buddy checkpointing: models, protocols, simulation
//!
//! A Rust reproduction of *"Revisiting the double checkpointing
//! algorithm"* (J. Dongarra, T. Hérault, Y. Robert — APDCM 2013),
//! packaged as a toolkit a resilience engineer can actually use:
//! analytical waste/risk models for the double and triple in-memory
//! checkpointing protocols, executable protocol state machines, a
//! discrete-event platform simulator with a parallel Monte-Carlo
//! harness, and the generators that regenerate every table and figure
//! of the paper's evaluation.
//!
//! ## Crate map
//!
//! | Module (re-export) | Crate | Contents |
//! |---|---|---|
//! | [`model`] | `dck-core` | overlap model θ(φ), waste (Eqs. 4–8, 13–14), optimal periods (Eqs. 9/10/15), risk (Eqs. 11/12/16), Young/Daly baselines, Table I scenarios |
//! | [`protocols`] | `dck-protocols` | period schedules, per-offset failure responses, buddy pairs/triples, risk windows, checkpoint stores |
//! | [`sim`] | `dck-sim` | single-run DES, parallel Monte-Carlo waste & success-probability estimation |
//! | [`failures`] | `dck-failures` | Exponential/Weibull/LogNormal failure processes, MTBF algebra, traces |
//! | [`simcore`] | `dck-simcore` | DES kernel: virtual time, stable event queue, RNG streams, statistics |
//! | [`experiments`] | `dck-experiments` | regeneration of Table I and Figures 4–9, plus validation experiments |
//! | [`obs`] | `dck-obs` | zero-cost-when-disabled counters/histograms and pluggable event sinks |
//!
//! ## Quickstart
//!
//! Should you pair your nodes (double) or form triples? At what period
//! should they checkpoint, and what does it cost?
//!
//! ```
//! use dck::model::{Evaluation, Protocol, Scenario};
//!
//! // The paper's Base platform: 512 MB images, δ = 2 s, R = 4 s, α = 10.
//! let scenario = Scenario::base();
//! let mtbf = 7.0 * 3600.0; // one platform failure every 7 hours
//! let phi = 0.4;           // transfer overhead: 10% of R
//!
//! let triple = Evaluation::at_optimal_period(
//!     Protocol::Triple, &scenario.params, phi, mtbf).unwrap();
//! let double = Evaluation::at_optimal_period(
//!     Protocol::DoubleNbl, &scenario.params, phi, mtbf).unwrap();
//!
//! // The paper's headline: with good overlap, TRIPLE wastes far less…
//! assert!(triple.waste.total < 0.7 * double.waste.total);
//! // …while needing three failures in one triple (within the risk
//! // window) for an unrecoverable loss, instead of two in a pair.
//! let life = 30.0 * 86_400.0;
//! let p3 = triple.success_probability(&scenario.params, life).unwrap();
//! let p2 = double.success_probability(&scenario.params, life).unwrap();
//! assert!(p3 >= p2);
//! ```
//!
//! And to check a model claim mechanistically, simulate it:
//!
//! ```
//! use dck::model::{PlatformParams, Protocol};
//! use dck::sim::{estimate_waste, MonteCarloConfig, RunConfig};
//!
//! let params = PlatformParams::new(0.0, 2.0, 4.0, 10.0, 16).unwrap();
//! let run = RunConfig::new(Protocol::DoubleNbl, params, 1.0, 1800.0);
//! let mc = MonteCarloConfig::new(10, 42);
//! let est = estimate_waste(&run, 8.0 * 3600.0, &mc).unwrap();
//! let ci = est.ci95.expect("completed runs produce an interval");
//! assert!(ci.mean > 0.0 && ci.mean < 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Analytical models (`dck-core`): the paper's contribution.
pub mod model {
    pub use dck_core::*;
}

/// Executable protocol machinery (`dck-protocols`).
pub mod protocols {
    pub use dck_protocols::*;
}

/// Platform simulator and Monte-Carlo harness (`dck-sim`).
pub mod sim {
    pub use dck_sim::*;
}

/// Failure modeling substrate (`dck-failures`).
pub mod failures {
    pub use dck_failures::*;
}

/// Discrete-event simulation kernel (`dck-simcore`).
pub mod simcore {
    pub use dck_simcore::*;
}

/// Paper-evaluation regeneration (`dck-experiments`).
pub mod experiments {
    pub use dck_experiments::*;
}

/// Observability: counters, histograms, event sinks (`dck-obs`).
pub mod obs {
    pub use dck_obs::*;
}
