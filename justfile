# Common tasks for the dck workspace (https://github.com/casey/just).

# Run everything CI runs.
ci: fmt-check clippy test doc lint

fmt:
    cargo fmt --all

fmt-check:
    cargo fmt --all --check

clippy:
    cargo clippy --workspace --all-targets -- -D warnings

test:
    cargo test --workspace

doc:
    RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps

# Workspace determinism/panic-safety lint against the justified baseline.
lint:
    cargo build --release -p dck-cli
    ./target/release/dck lint

# Regenerate the analyze.toml skeleton after intentional changes.
lint-baseline:
    cargo build --release -p dck-cli
    ./target/release/dck lint baseline

# Dump the resolved cross-crate call graph the workspace lints run on.
lint-graph:
    cargo build --release -p dck-cli
    ./target/release/dck lint --graph

# Regenerate every table/figure + validations + extensions into results/.
experiments:
    cargo run -p dck-experiments --release -- all --out results

# Quick (CI-sized) experiment pass.
experiments-fast:
    cargo run -p dck-experiments --release -- all --fast --out results

# Kill-and-resume crash-safety e2e against the release binary.
resume-kill:
    cargo test --release -p dck-cli --test resume_kill -- --nocapture

# Perf-trajectory harness: writes BENCH_reps.json / BENCH_sweep.json
# at the repo root and validates them against the report schema.
bench:
    cargo build --release -p dck-bench -p dck-cli
    ./target/release/dck-bench --out .
    ./target/release/dck validate --bench BENCH_reps.json
    ./target/release/dck validate --bench BENCH_sweep.json

# Adaptive-controller regret harness: adaptive vs misspecified-static
# vs oracle arms over shared failure streams. Writes BENCH_adapt.json
# at the repo root, enforces the acceptance gates (stationary regret
# <= 10%, drift beats static), and validates the artifact.
adapt:
    cargo build --release -p dck-cli
    ./target/release/dck adapt --out BENCH_adapt.json
    ./target/release/dck validate --bench BENCH_adapt.json

# Full model-vs-sim conformance grid (k = 2..5 + fault prediction +
# adaptation): regenerate the v3 artifact and round-trip it through
# the validator.
conformance-k:
    cargo build --release -p dck-cli
    DCK_CONFORMANCE_OUT=$(pwd)/conformance.json \
        cargo test --release -p dck-testkit --test conformance
    ./target/release/dck validate --conformance conformance.json

# Long-running waste/risk/sweep-cell service on a fixed local port.
# Send {"v":1,"method":"shutdown"} (or `just loadgen` then that) to stop.
serve:
    cargo run --release -p dck-cli --bin dck -- serve --addr 127.0.0.1:4817

# Measured load against `just serve`: writes BENCH_serve.json at the
# repo root and validates it against the serve report schema.
loadgen:
    cargo build --release -p dck-cli
    ./target/release/dck loadgen --addr 127.0.0.1:4817 \
        --threads 4 --concurrency 4 --duration 5s \
        --out BENCH_serve.json --metrics serve-metrics.json
    ./target/release/dck validate --bench BENCH_serve.json

# Criterion benches: one per paper artifact + kernel ablations.
bench-criterion:
    cargo bench --workspace

# Render the figures (requires gnuplot).
figures:
    cd results && for f in fig*.gp; do gnuplot "$f"; done

# Run all examples.
examples:
    for e in quickstart exascale_planner risk_audit protocol_tradeoff \
             failure_replay overlap_tuning two_level timeline; do \
        cargo run --release --example "$e"; done
